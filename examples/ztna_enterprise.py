#!/usr/bin/env python3
"""Enterprise security: ZTNA + operator-imposed firewall (§3.2, §6).

An enterprise combines two InterEdge deployment shapes:

* a **pass-through SN** at its boundary imposes a firewall on *all*
  traffic (third invocation mode, §3.2);
* employees reach the internal wiki through the standardized **ZTNA**
  service at the IESP's SN, with device posture shipped in fragmented ILP
  setup headers (§B.2) and mid-connection cache evictions handled by the
  service's internal connection table.

Run:  python examples/ztna_enterprise.py
"""

from repro import InterEdge, WellKnownService
from repro.core.ilp import Flags
from repro.core.service_node import ServiceNode
from repro.services import standard_registry
from repro.services.firewall import ImposedFirewall, Rule, RuleSet
from repro.services.ztna import PosturePolicy, ZTNAPolicy, make_setup_packets


def main() -> None:
    net = InterEdge(registry=standard_registry())
    net.create_edomain("biz-iesp")
    edge_sn = net.add_sn("biz-iesp", name="iesp-pop")
    dc_sn = net.add_sn("biz-iesp", name="iesp-dc")
    net.peer_all()
    net.deploy_required_services()

    # --- the enterprise boundary: a pass-through SN with an imposed FW ----
    gateway = ServiceNode(net.sim, "corp-gw", "10.50.0.1", edomain_name="biz-iesp")
    gateway.directory = net.directory
    net.directory.register(gateway.address, "biz-iesp", via=edge_sn.address)
    gateway.establish_pipe(edge_sn, latency=0.001)
    rules = RuleSet(default_allow=True)
    rules.add(Rule(allow=False, dst_prefix="203.0.113.0/24"))  # blocked SaaS
    gateway.configure_pass_through(next_hop=edge_sn.address, chain=[ImposedFirewall(rules)])

    laptop = net.add_host(gateway, name="laptop", latency=0.0005)
    wiki = net.add_host(dc_sn, name="wiki", register_name="wiki.corp")

    # --- ZTNA policy at the IESP SN --------------------------------------
    ztna = edge_sn.env.service(WellKnownService.ZTNA)
    ztna.policy = ZTNAPolicy(posture=PosturePolicy(min_os_build=22000, require_agent=True))
    ztna.policy.grant(wiki.address, "erin@corp")

    def open_ztna(identity: str, posture: dict) -> None:
        conn = laptop.connect(
            WellKnownService.ZTNA, dest_addr=wiki.address, allow_direct=False
        )
        packets = make_setup_packets(identity, posture, fragment_size=48)
        for i, tlvs in enumerate(packets):
            last = i == len(packets) - 1
            laptop.send(
                conn,
                b"GET /wiki/runbooks" if last else b"",
                extra_tlvs=dict(tlvs),
                first=(i == 0),
                extra_flags=0 if last else Flags.MORE_HEADER,
            )
        net.run(1.0)

    # A compliant employee gets through...
    open_ztna("erin@corp", {"os_build": 23100, "agent": True, "patches": ["kb1", "kb2"]})
    wiki_got = [p.data for _, p in wiki.delivered if p.data]
    print(f"wiki received from compliant laptop: {wiki_got}")
    assert wiki_got == [b"GET /wiki/runbooks"]

    # ...an out-of-date machine does not...
    open_ztna("erin@corp", {"os_build": 19042, "agent": True})
    assert len([p for _, p in wiki.delivered if p.data]) == 1
    print(f"stale-OS attempt denied (denials={ztna.denials})")

    # ...and the imposed firewall blocks the banned SaaS outright.
    conn = laptop.connect(
        WellKnownService.IP_DELIVERY, dest_addr="203.0.113.9", allow_direct=False
    )
    laptop.send(conn, b"upload")
    net.run(1.0)
    print(
        "imposed firewall drops to banned prefix:",
        gateway.terminus.stats.drops_by_decision,
    )
    assert gateway.terminus.stats.drops_by_decision == 1


if __name__ == "__main__":
    main()

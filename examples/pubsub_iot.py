#!/usr/bin/env python3
"""Interconnected pub/sub: IoT telemetry fanned out across IESPs (§6.2).

A sensor fleet publishes telemetry to a topic; dashboards subscribed via
*different* IESPs all receive it — the membership plane (SN → edomain core
→ global lookup, with watches) routes messages only where members exist.
Also demonstrates host-driven state reconstruction (§3.3): a dashboard
that restarts replays the retained backlog.

Run:  python examples/pubsub_iot.py
"""

from repro import InterEdge, WellKnownService
from repro.services import standard_registry
from repro.services.multipoint import (
    join_group,
    publish,
    register_sender,
    request_replay,
)

TOPIC = "factory/line-3/telemetry"


def main() -> None:
    net = InterEdge(registry=standard_registry())
    for name in ("metro-iesp", "rural-iesp", "cloud-iesp"):
        net.create_edomain(name)
        net.add_sn(name)
        net.add_sn(name)
    net.peer_all()
    net.deploy_required_services()

    def sn(edomain, i):
        dom = net.edomains[edomain]
        return dom.sns[dom.sn_addresses()[i]]

    sensor = net.add_host(sn("metro-iesp", 0), name="sensor-42")
    dash_local = net.add_host(sn("metro-iesp", 1), name="dash-local")
    dash_rural = net.add_host(sn("rural-iesp", 0), name="dash-rural")
    dash_cloud = net.add_host(sn("cloud-iesp", 1), name="dash-cloud")

    # The factory owns the topic and opens it to its dashboards.
    group = f"pubsub:{TOPIC}"
    net.lookup.register_group(group, sensor.keypair)
    net.lookup.post_open_group(group, sensor.keypair)

    for dash in (dash_local, dash_rural, dash_cloud):
        join_group(dash, WellKnownService.PUBSUB, TOPIC)
    register_sender(sensor, WellKnownService.PUBSUB, TOPIC)
    net.run(1.0)

    # The lookup service knows which edomains have members — and only those.
    edomains = net.lookup.group_edomains(group)
    print(f"member edomains for {TOPIC!r}: {sorted(edomains)}")

    for reading in (b"temp=71.2", b"temp=71.9", b"vibration=0.03"):
        publish(sensor, WellKnownService.PUBSUB, TOPIC, reading)
    net.run(1.0)

    for dash in (dash_local, dash_rural, dash_cloud):
        got = [p.data.decode() for _, p in dash.delivered if p.data]
        print(f"{dash.name}: {got}")
        assert len(got) == 3

    # A new dashboard appears after the fact and reconstructs state (§3.3):
    dash_new = net.add_host(sn("metro-iesp", 0), name="dash-new")
    join_group(dash_new, WellKnownService.PUBSUB, TOPIC)
    request_replay(dash_new, WellKnownService.PUBSUB, TOPIC)
    net.run(1.0)
    replayed = [p.data.decode() for _, p in dash_new.delivered if p.data]
    print(f"dash-new (replayed backlog): {replayed}")
    assert len(replayed) == 3


if __name__ == "__main__":
    main()

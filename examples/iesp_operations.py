#!/usr/bin/env python3
"""Running an IESP: monitoring, billing, neutrality, settlement-free peering.

The operational side of §5 in one scenario: an IESP serves two customers,
bills them strictly from its published rate card, passes a neutrality
audit, exchanges (unsettled) traffic with a peer edomain, and watches its
fleet through the federation monitor.

Run:  python examples/iesp_operations.py
"""

from repro import InterEdge, WellKnownService
from repro.core.monitoring import FederationMonitor
from repro.econ import (
    BillingEngine,
    NeutralityAuditor,
    RateCard,
    ServiceRate,
    VolumeTier,
)
from repro.services import standard_registry


def main() -> None:
    net = InterEdge(registry=standard_registry())
    net.create_edomain("acme-edge")
    net.create_edomain("peer-edge")
    sn1 = net.add_sn("acme-edge", name="acme-pop1")
    sn2 = net.add_sn("acme-edge", name="acme-pop2")
    peer_sn = net.add_sn("peer-edge", name="peer-pop")
    net.peer_all()
    net.deploy_required_services()

    # -- published standard rates (§5 neutrality prerequisite) ------------
    card = RateCard("acme-edge")
    card.set_rate(
        ServiceRate(
            service_id=WellKnownService.IP_DELIVERY,
            base_monthly=25.0,
            tiers=[VolumeTier(0.0, 0.50), VolumeTier(100.0, 0.25)],
        )
    )
    card.publish()
    billing = BillingEngine(card)

    # -- two customers generate cross-edomain traffic ----------------------
    startup = net.add_host(sn1, name="startup")
    bigco = net.add_host(sn2, name="bigco")
    remote = net.add_host(peer_sn, name="remote-peer")
    for customer, volume in ((startup, 20), (bigco, 60)):
        conn = customer.connect(
            WellKnownService.IP_DELIVERY, dest_addr=remote.address
        )
        for _ in range(volume):
            customer.send(conn, b"d" * 1000)
    net.run(1.0)

    # -- settlement-free peering accounting (§5) -------------------------
    traffic = net.ledger.traffic("acme-edge", "peer-edge")
    print(
        f"acme-edge -> peer-edge: {traffic.packets_sent} pkts, "
        f"{traffic.bytes_sent} B; settlement moved: "
        f"${net.ledger.interdomain_balance():.2f}"
    )

    # -- billing from the card; identical usage = identical price ---------
    inv_small = billing.bill("startup", WellKnownService.IP_DELIVERY, "us", 20.0)
    inv_large = billing.bill("bigco", WellKnownService.IP_DELIVERY, "us", 60.0)
    net.ledger.pay_iesp("startup", "acme-edge", inv_small.amount)
    net.ledger.pay_iesp("bigco", "acme-edge", inv_large.amount)
    print(
        f"invoices: startup=${inv_small.amount:.2f} "
        f"bigco=${inv_large.amount:.2f}; "
        f"acme revenue=${net.ledger.edomain_revenue('acme-edge'):.2f}"
    )

    # -- the neutrality audit ------------------------------------------------
    violations = NeutralityAuditor(card).audit(billing.invoices)
    print(f"neutrality audit violations: {len(violations)}")
    assert violations == []

    # -- fleet monitoring ---------------------------------------------------
    monitor = FederationMonitor(net)
    report = monitor.collect()
    print(
        f"fleet: {len(report.snapshots)} SNs, {report.total_packets} pkts in, "
        f"fast-path fraction {report.overall_fast_path_fraction:.0%}, "
        f"drop rate {report.drop_rate:.1%}"
    )
    for row in report.to_rows():
        print("  ", row)
    hottest = report.hottest_sns(1)[0]
    print(f"hottest SN: {hottest.name} ({hottest.packets_in} pkts)")
    assert report.total_drops == 0


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mobility: a phone call that survives a network handoff (§6.3).

The mobility lookup service (one of the paper's prototype services) keeps
a stable name pointing at the mobile's *current* (address, SN) binding.
A correspondent keeps sending to the stable name; mid-conversation the
phone walks from a metro IESP to a rural one, re-associates, and sends an
authenticated binding update — and the traffic follows, with no action
from the correspondent.

Run:  python examples/mobile_handoff.py
"""

from repro import InterEdge, WellKnownService
from repro.netsim import Link
from repro.services import standard_registry
from repro.services.mobility import connect_to_mobile, send_binding_update


def main() -> None:
    net = InterEdge(registry=standard_registry())
    net.create_edomain("metro-iesp")
    net.create_edomain("rural-iesp")
    metro_sn = net.add_sn("metro-iesp", name="metro-pop")
    rural_sn = net.add_sn("rural-iesp", name="rural-pop")
    net.peer_all()
    net.deploy_required_services()

    phone = net.add_host(metro_sn, name="phone")
    caller = net.add_host(metro_sn, name="caller")

    # The phone claims its stable name at its current SN.
    send_binding_update(phone, "phone.alice", sequence=1)
    net.run(0.5)

    conn = connect_to_mobile(caller, "phone.alice")
    caller.send(conn, b"hello from the city")
    net.run(0.5)

    # --- the handoff: new radio network, new first-hop SN -----------------
    print("phone roams: metro-iesp -> rural-iesp")
    Link(net.sim, phone, rural_sn, latency=0.002)
    rural_sn.associate_host(phone)
    send_binding_update(phone, "phone.alice", sequence=2, via=rural_sn.address)
    net.run(0.5)

    caller.send(conn, b"still there?")
    net.run(0.5)

    received = [p.data.decode() for _, p in phone.delivered if p.data]
    print(f"phone received: {received}")
    assert received == ["hello from the city", "still there?"]

    module = rural_sn.env.service(WellKnownService.MOBILITY)
    binding = module.resolve("phone.alice")
    print(
        f"binding now: {binding.stable_name} -> {binding.address} "
        f"via SN {binding.sn_address} (seq {binding.sequence})"
    )
    assert binding.sn_address == rural_sn.address

    # An attacker cannot steal the name (anchored to the first binder).
    mallory = net.add_host(rural_sn, name="mallory")
    send_binding_update(mallory, "phone.alice", sequence=3)
    net.run(0.5)
    assert module.resolve("phone.alice").address == phone.address
    print("takeover attempt rejected — name stays anchored to its owner")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CDN over the InterEdge: interconnected caching + broker-stitched coverage.

The paper's motivating economics (§5): an application provider wants CDN
service near all its users. Instead of one global ESP, a broker stitches
coverage from two regional IESPs — possible only because rates are
published and the caching bundle's semantics and configuration are
standardized (no lock-in).

The demo then shows the technical half: the same `CACHING_BUNDLE` service,
deployed from the same module, serves cache hits at whichever IESP's SN is
near each client, with origin fetches crossing edomains over ILP.

Run:  python examples/cdn_federation.py
"""

from repro import InterEdge, WellKnownService
from repro.core.ilp import TLV
from repro.econ import CoverageBroker, IESPOffer, RateCard, ServiceRate, VolumeTier
from repro.services import standard_registry
from repro.services.caching import make_response, parse_request


def publish_rates(iesp: str, base: float, per_gb: float) -> RateCard:
    card = RateCard(iesp)
    card.set_rate(
        ServiceRate(
            service_id=WellKnownService.CACHING_BUNDLE,
            base_monthly=base,
            tiers=[VolumeTier(0.0, per_gb), VolumeTier(500.0, per_gb * 0.6)],
        )
    )
    card.publish()
    return card


def main() -> None:
    # ---- economics: broker stitches coverage from published rates (§5) ----
    offers = [
        IESPOffer("pacific-edge", publish_rates("pacific-edge", 40, 0.8), {"us-west"}),
        IESPOffer("plains-edge", publish_rates("plains-edge", 30, 0.9), {"us-central"}),
        IESPOffer("globocdn", publish_rates("globocdn", 200, 1.2), {"us-west", "us-central"}),
    ]
    broker = CoverageBroker(offers)
    plan, global_price = broker.compare_with_global(
        WellKnownService.CACHING_BUNDLE,
        ["us-west", "us-central"],
        volume_gb_per_region=300.0,
        global_offer=offers[2],
    )
    print("broker plan:", plan.assignments)
    print(f"stitched monthly: ${plan.total_monthly:.2f} vs global: ${global_price:.2f}")
    assert plan.total_monthly < global_price

    # ---- the interconnected data plane -------------------------------------
    net = InterEdge(registry=standard_registry())
    net.create_edomain("pacific-edge")
    net.create_edomain("plains-edge")
    sn_west = net.add_sn("pacific-edge", name="pop-lax")
    sn_central = net.add_sn("plains-edge", name="pop-okc")
    net.peer_all()
    net.deploy_required_services()

    origin = net.add_host(sn_central, name="origin", register_name="video.example")
    viewers_west = [net.add_host(sn_west, name=f"viewer-w{i}") for i in range(3)]

    # The origin application serves GETs (the app provider's backend).
    def serve(conn_id, header, payload):
        url = parse_request(payload.data)
        if url is None:
            return
        requester = header.get_str(TLV.SRC_HOST)
        conn = origin.connect(
            WellKnownService.CACHING_BUNDLE, dest_addr=requester, allow_direct=False
        )
        conn.connection_id = conn_id
        origin._connections[conn_id] = conn
        origin.send(conn, make_response(url, b"\x00" * 900 + url.encode()), first=False)

    origin.on_service_data(WellKnownService.CACHING_BUNDLE, serve)

    # Three west-coast viewers request the same object.
    for viewer in viewers_west:
        conn = viewer.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=origin.address,
            allow_direct=False,
        )
        viewer.send(conn, b"GET /video/launch-day.m3u8")
        net.run(1.0)

    module = sn_west.env.service(WellKnownService.CACHING_BUNDLE)
    print(
        f"edge cache at pop-lax: {module.requests} requests, "
        f"{module.origin_fetches} origin fetch(es), hit rate "
        f"{module.cache.hit_rate:.0%}"
    )
    for viewer in viewers_west:
        got = [p.data for _, p in viewer.delivered if p.data.startswith(b"DATA")]
        assert got, f"{viewer.name} got no response"
    assert module.origin_fetches == 1  # one origin fetch served all three


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a two-edomain InterEdge and send traffic through it.

Demonstrates the architecture's basic moving parts (§3):

* two IESPs, each one edomain with two service nodes;
* settlement-free full-mesh peering between the edomains;
* uniform deployment of the standardized service catalog;
* a host-to-host connection invoking the IP-delivery service, with the
  first packet taking the slow path and the rest riding the decision cache.

Run:  python examples/quickstart.py
"""

from repro import InterEdge, WellKnownService
from repro.services import standard_registry


def main() -> None:
    # 1. Build the federation: the simulator, lookup service, and registry.
    net = InterEdge(registry=standard_registry())

    # 2. Two IESPs stand up edomains with SNs at their PoPs.
    net.create_edomain("coastal-iesp")
    net.create_edomain("inland-iesp")
    sn_coastal_1 = net.add_sn("coastal-iesp", name="pop-sfo")
    sn_coastal_2 = net.add_sn("coastal-iesp", name="pop-sea")
    sn_inland = net.add_sn("inland-iesp", name="pop-den")

    # 3. Interconnection: full-mesh settlement-free peering (§3.2, §5).
    pipes = net.peer_all()
    print(f"peering fabric established: {pipes} pipes")

    # 4. The governance body's catalog deploys uniformly (§3.3 WORA).
    deployed = net.deploy_required_services()
    print(f"deployed {deployed} (SN, service) pairs")
    print(f"services on pop-den: {len(sn_inland.env.service_ids())}")

    # 5. Hosts associate with first-hop SNs; addresses go in the lookup.
    alice = net.add_host(sn_coastal_1, name="alice")
    bob = net.add_host(sn_inland, name="bob", register_name="bob.example")

    # 6. Alice resolves Bob and opens a connection naming ONE service.
    resolution = net.names.resolve("bob.example")
    print(f"bob.example -> {resolution.address} via SN {resolution.primary_sn}")
    conn = alice.connect(
        WellKnownService.IP_DELIVERY,
        dest_addr=resolution.address,
        dest_sn=resolution.primary_sn,
    )

    # 7. Send. Packet 1 punts to the service module; 2..5 ride the cache.
    for i in range(5):
        alice.send(conn, f"hello interedge #{i}".encode())
    net.run(1.0)

    print(f"bob received: {[p.data.decode() for _, p in bob.delivered]}")
    stats = sn_coastal_1.terminus.stats
    print(
        f"alice's SN: {stats.punts} slow-path punt(s), "
        f"{stats.fast_path} fast-path hits "
        f"(cache hit rate {sn_coastal_1.cache.stats.hit_rate:.0%})"
    )
    assert len(bob.delivered) == 5


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Privacy suite: oDNS + private relay over third-party SNs (§4, §6.2).

The trust model in action: the user's first-hop SN belongs to a third
party (not the site, not the user's employer), yet browsing leaks nothing
it shouldn't —

* the oblivious DNS proxy (enclave) forwards the query but cannot read it,
  and the resolver answers it but cannot see who asked;
* the two-hop private relay splits who-from-where: the ingress knows the
  client but not the site, the egress knows the site but not the client.

Run:  python examples/private_browsing.py
"""

from repro import InterEdge, WellKnownService
from repro.core.crypto import random_key
from repro.core.ilp import TLV
from repro.services import standard_registry
from repro.services.odns import ODNSClient, ODNSResolver
from repro.services.private_relay import reply_via_relay, send_via_relay


def main() -> None:
    net = InterEdge(registry=standard_registry())
    net.create_edomain("home-iesp")
    net.create_edomain("transit-iesp")
    ingress_sn = net.add_sn("home-iesp", name="pop-home")
    egress_sn = net.add_sn("transit-iesp", name="pop-exit")
    resolver_sn = net.add_sn("transit-iesp", name="pop-dns")
    net.peer_all()
    net.deploy_required_services()

    user = net.add_host(ingress_sn, name="user")
    site = net.add_host(egress_sn, name="news-site")
    resolver_host = net.add_host(resolver_sn, name="recursive-resolver")

    # ---- oblivious DNS ----------------------------------------------------
    odns_key = random_key()  # user <-> resolver key (out-of-band, as in oDNS)
    resolver = ODNSResolver(
        host=resolver_host,
        zone={"news.example": site.address},
        shared_key=odns_key,
    )
    resolver.install()
    stub = ODNSClient(host=user, resolver_addr=resolver_host.address, shared_key=odns_key)
    stub.install()
    stub.query("news.example")
    net.run(1.0)
    site_addr = stub.answers["news.example"]
    print(f"resolved news.example -> {site_addr}")
    print(f"resolver saw source addresses: {resolver.observed_sources}")
    assert resolver.observed_sources == [None]  # never the user

    # ---- private relay -----------------------------------------------------
    conn = send_via_relay(
        user, ingress_sn.address, egress_sn.address, site_addr, b"GET /frontpage"
    )
    net.run(1.0)
    seen = [(h.get_str(TLV.SRC_HOST), p.data) for h, p in site.delivered if p.data]
    print(f"site saw: {seen}")
    assert seen == [(None, b"GET /frontpage")]  # no client identity

    # The site replies through the relay; only the user can correlate.
    conn_id = [h.connection_id for h, p in site.delivered if p.data][0]
    reply_via_relay(site, conn_id, egress_sn.address, b"<html>front page</html>")
    net.run(1.0)
    pages = [p.data for _, p in user.delivered if p.data.startswith(b"<html>")]
    print(f"user received: {pages}")
    assert pages == [b"<html>front page</html>"]

    # Both privacy services ran inside enclaves on the SNs (§6.2).
    assert ingress_sn.env.enclave_for(WellKnownService.ODNS) is not None
    assert ingress_sn.env.enclave_for(WellKnownService.PRIVATE_RELAY) is not None
    print("odns + relay modules attested to run in enclaves")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Last-hop QoS: a household prioritizes gaming over streaming (§6.2).

The paper's scenario verbatim: the main source of degraded service is the
user's own congested access link. The household tells its first-hop SN
(on the far side of that link) the link's bandwidth and per-stream
priorities; the SN then schedules the household's entire incoming traffic
with strict priority + WFQ, so game packets stop queueing behind video.

Run:  python examples/qos_household.py
"""

from repro import InterEdge, WellKnownService
from repro.services import QoSSpec, StreamClass, request_qos, standard_registry

ACCESS_LINK_BPS = 2_000_000  # a modest 2 Mbps access link


def main() -> None:
    net = InterEdge(registry=standard_registry())
    net.create_edomain("content-iesp")
    net.create_edomain("access-iesp")
    sn_game = net.add_sn("content-iesp", name="pop-game")
    sn_video = net.add_sn("content-iesp", name="pop-video")
    sn_home = net.add_sn("access-iesp", name="central-office")
    net.peer_all()
    net.deploy_required_services()

    game_server = net.add_host(sn_game, name="game-server")
    video_cdn = net.add_host(sn_video, name="video-cdn")
    household = net.add_host(sn_home, name="household")
    household.links[0].bandwidth_bps = ACCESS_LINK_BPS  # the bottleneck

    # Out-of-band invocation (§3.2): the resident configures last-hop QoS.
    spec = QoSSpec(
        link_bps=ACCESS_LINK_BPS,
        classes=[
            StreamClass("gaming", f"{game_server.address}/32", priority=0),
            StreamClass("movie-night", f"{video_cdn.address}/32", priority=1),
        ],
    )
    request_qos(household, spec)
    net.run(0.5)

    game_conn = game_server.connect(
        WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
    )
    video_conn = video_cdn.connect(
        WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
    )

    # Movie night saturates the link...
    for i in range(60):
        video_cdn.send(video_conn, b"V" * 1200)
    net.run(0.02)

    # ...and a game update arrives mid-stream.
    sent_at = net.sim.now
    arrival = {}
    household.rx_tap = lambda frame, link: arrival.setdefault(
        "game", net.sim.now
    ) if getattr(frame, "payload", None) and frame.payload.data.startswith(b"G") else None
    game_server.send(game_conn, b"G" * 120)
    net.run(5.0)

    game_latency_ms = (arrival["game"] - sent_at) * 1e3
    video_delivered = sum(
        1 for _, p in household.delivered if p.data.startswith(b"V")
    )
    print(f"game packet latency under congestion: {game_latency_ms:.1f} ms")
    print(f"video packets still delivered: {video_delivered}/60")
    # Without QoS this packet would wait behind ~70 KB at 2 Mbps (~290 ms).
    assert game_latency_ms < 50.0
    assert video_delivered == 60


if __name__ == "__main__":
    main()

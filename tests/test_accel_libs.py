"""Tests for accelerated library variants and the WORA swap (§3.1)."""

import pytest

from repro import WellKnownService
from repro.libs.accel import (
    AcceleratedCryptoLibrary,
    AcceleratedMediaLibrary,
    AcceleratorProfile,
    install_accelerated_libraries,
)
from repro.libs.media import MediaLibrary
from repro.services.transcode import set_rendition


class TestAcceleratedLibraries:
    def test_crypto_results_identical_to_software(self):
        accel = AcceleratedCryptoLibrary()
        key = accel.random_key()
        blob = accel.encrypt(key, b"same bits out")
        assert accel.decrypt(key, blob) == b"same bits out"

    def test_crypto_virtual_cost_scales_with_speedup(self):
        slow = AcceleratedCryptoLibrary(AcceleratorProfile("x", crypto_speedup=1.0))
        fast = AcceleratedCryptoLibrary(AcceleratorProfile("y", crypto_speedup=10.0))
        key = slow.random_key()
        data = b"z" * 10_000
        slow.encrypt(key, data)
        fast.encrypt(key, data)
        assert slow.virtual_seconds == pytest.approx(10 * fast.virtual_seconds)

    def test_media_output_identical_to_software(self):
        accel = AcceleratedMediaLibrary()
        soft = MediaLibrary()
        chunk = bytes(500)
        assert accel.transcode(chunk, "480p") == soft.transcode(chunk, "480p")
        assert accel.virtual_seconds > 0

    def test_cannot_be_slower_than_software(self):
        with pytest.raises(ValueError):
            AcceleratorProfile("broken", crypto_speedup=0.5)


class TestWORASwap:
    def test_service_unchanged_after_library_swap(self, two_edomain_net):
        """§3.1: the same module runs on accelerated SNs untouched."""
        net = two_edomain_net
        dom = net.edomains["east"]
        viewer_sn = dom.sns[dom.sn_addresses()[0]]
        # Operator installs accelerators on this SN only.
        install_accelerated_libraries(viewer_sn.env)
        assert isinstance(
            viewer_sn.env.libs.get("media"), AcceleratedMediaLibrary
        )

        # The transcode bundle module (already loaded, never modified)
        # transparently uses the new implementation.
        wdom = net.edomains["west"]
        source = net.add_host(wdom.sns[wdom.sn_addresses()[0]], name="cam")
        viewer = net.add_host(viewer_sn, name="viewer")
        set_rendition(viewer, "480p")
        net.run(0.5)
        conn = source.connect(
            WellKnownService.TRANSCODE_BUNDLE,
            dest_addr=viewer.address,
            allow_direct=False,
        )
        source.send(conn, bytes(800))
        net.run(1.0)
        got = [p.data for _, p in viewer.delivered if p.data]
        assert len(got) == 1
        profile, original, _ = MediaLibrary.describe(got[0])
        assert (profile, original) == ("480p", 800)
        # The accelerated implementation did the work.
        assert viewer_sn.env.libs.get("media").chunks_encoded == 1
        assert viewer_sn.env.libs.get("media").virtual_seconds > 0

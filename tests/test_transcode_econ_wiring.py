"""Tests for the transcode bundle and the federation economics wiring."""

import pytest

from repro import WellKnownService
from repro.econ import PeeringError
from repro.libs.media import MediaLibrary
from repro.services.transcode import set_rendition


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestTranscodeBundle:
    def _stream(self, net, profile=None):
        source = net.add_host(sn_of(net, "west", 0), name="camera")
        viewer_sn = sn_of(net, "east", 0)
        viewer = net.add_host(viewer_sn, name="viewer")
        if profile is not None:
            set_rendition(viewer, profile)
            net.run(0.5)
        conn = source.connect(
            WellKnownService.TRANSCODE_BUNDLE,
            dest_addr=viewer.address,
            allow_direct=False,
        )
        chunk = bytes(1000)
        source.send(conn, chunk)
        net.run(1.0)
        return viewer, viewer_sn, chunk

    def test_full_rate_without_profile(self, two_edomain_net):
        viewer, viewer_sn, chunk = self._stream(two_edomain_net)
        assert payloads(viewer) == [chunk]

    def test_receiver_rendition_applied_at_edge(self, two_edomain_net):
        viewer, viewer_sn, chunk = self._stream(two_edomain_net, profile="480p")
        got = payloads(viewer)
        assert len(got) == 1
        profile, original, body = MediaLibrary.describe(got[0])
        assert profile == "480p"
        assert original == len(chunk)
        assert body < len(chunk)
        module = viewer_sn.env.service(WellKnownService.TRANSCODE_BUNDLE)
        assert module.chunks_transcoded == 1

    def test_upstream_sns_do_not_transcode(self, two_edomain_net):
        """Only the receiver's first-hop SN re-encodes."""
        net = two_edomain_net
        viewer, viewer_sn, chunk = self._stream(net, profile="720p")
        source_sn = sn_of(net, "west", 0)
        module = source_sn.env.service(WellKnownService.TRANSCODE_BUNDLE)
        assert module.chunks_transcoded == 0
        assert module.chunks_passed >= 1

    def test_unknown_profile_rejected(self, two_edomain_net):
        net = two_edomain_net
        viewer = net.add_host(sn_of(net, "east", 0), name="viewer")
        set_rendition(viewer, "16k-hologram")
        net.run(0.5)
        module = sn_of(net, "east", 0).env.service(
            WellKnownService.TRANSCODE_BUNDLE
        )
        assert viewer.address not in module.profiles

    def test_profile_is_portable_config(self, two_edomain_net):
        """The rendition choice lives in standardized config (§5)."""
        net = two_edomain_net
        viewer_sn = sn_of(net, "east", 0)
        viewer = net.add_host(viewer_sn, name="viewer")
        set_rendition(viewer, "audio")
        net.run(0.5)
        assert (
            viewer_sn.env.config.get(
                WellKnownService.TRANSCODE_BUNDLE, viewer.address, "profile"
            )
            == "audio"
        )


class TestEconomicsWiring:
    def test_cross_edomain_traffic_recorded(self, two_edomain_net):
        net = two_edomain_net
        a = net.add_host(sn_of(net, "west", 1), name="a")
        b = net.add_host(sn_of(net, "east", 1), name="b")
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        for _ in range(5):
            a.send(conn, b"x" * 100)
        net.run(1.0)
        record = net.ledger.traffic("west", "east")
        assert record.packets_sent == 5
        assert record.bytes_sent > 5 * 100

    def test_intra_edomain_traffic_not_recorded(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"local")
        net.run(1.0)
        assert net.ledger.traffic("west", "west").packets_sent == 0
        assert net.ledger.traffic("west", "east").packets_sent == 0

    def test_settlement_free_invariant_holds_with_real_traffic(
        self, two_edomain_net
    ):
        net = two_edomain_net
        a = net.add_host(sn_of(net, "west", 0), name="a")
        b = net.add_host(sn_of(net, "east", 0), name="b")
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        for _ in range(50):
            a.send(conn, b"y" * 500)
        net.run(1.0)
        # Heavy asymmetry exists...
        assert net.ledger.imbalance("west", "east") > 0
        # ...and still cannot trigger settlement (§5).
        with pytest.raises(PeeringError):
            net.ledger.post_settlement("east", "west", 1.0)
        assert net.ledger.interdomain_balance() == 0.0

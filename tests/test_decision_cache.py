"""Unit tests for the decision cache (Appendix B semantics)."""

import pytest

from repro.core.decision_cache import (
    Action,
    CacheError,
    CacheKey,
    Decision,
    DecisionCache,
    EvictionPolicy,
    ForwardTarget,
)


def key(i: int) -> CacheKey:
    return CacheKey(src=f"10.0.0.{i % 250 + 1}", service_id=1, connection_id=i)


class TestDecision:
    def test_forward_requires_targets(self):
        with pytest.raises(CacheError):
            Decision(action=Action.FORWARD)

    def test_drop_cannot_have_targets(self):
        with pytest.raises(CacheError):
            Decision(action=Action.DROP, targets=(ForwardTarget("10.0.0.1"),))

    def test_multi_target_forward(self):
        decision = Decision.forward("10.0.0.1", "10.0.0.2", "10.0.0.3")
        assert len(decision.targets) == 3


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = DecisionCache(capacity=8)
        assert cache.lookup(key(1)) is None
        cache.install(key(1), Decision.forward("10.0.0.2"))
        result = cache.lookup(key(1))
        assert result is not None
        assert result.targets[0].peer == "10.0.0.2"

    def test_keys_are_exact_match(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        other = CacheKey(src=key(1).src, service_id=2, connection_id=1)
        assert cache.lookup(other) is None

    def test_reinstall_replaces(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.forward("10.0.0.2"))
        cache.install(key(1), Decision.drop())
        assert cache.lookup(key(1)).action is Action.DROP
        assert len(cache) == 1

    def test_stats(self):
        cache = DecisionCache()
        cache.lookup(key(1))
        cache.install(key(1), Decision.drop())
        cache.lookup(key(1))
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestInstallMany:
    def _snapshot(self, cache):
        return (
            cache.snapshot_entries(),
            cache.stats.installs,
            cache.stats.evictions,
            len(cache),
        )

    def test_equivalent_to_sequential_installs(self):
        pairs = [(key(i), Decision.drop()) for i in range(6)]
        pairs.append((key(2), Decision.forward("10.0.0.9")))  # replace
        seq, batch = DecisionCache(capacity=8), DecisionCache(capacity=8)
        for k, d in pairs:
            seq.install(k, d, now=1.0)
        batch.install_many(pairs, now=1.0)
        assert self._snapshot(batch) == self._snapshot(seq)

    def test_replacement_moves_to_lru_tail(self):
        cache = DecisionCache(capacity=8)
        cache.install(key(1), Decision.drop())
        cache.install(key(2), Decision.drop())
        cache.install_many([(key(1), Decision.forward("10.0.0.9"))])
        entries = cache.snapshot_entries()
        assert entries[-1][0] == key(1)
        assert cache.lookup(key(1)).targets[0].peer == "10.0.0.9"

    def test_evicts_at_capacity_like_install(self):
        seq, batch = DecisionCache(capacity=4), DecisionCache(capacity=4)
        pairs = [(key(i), Decision.drop()) for i in range(10)]
        for k, d in pairs:
            seq.install(k, d)
        batch.install_many(pairs)
        assert self._snapshot(batch) == self._snapshot(seq)

    def test_empty_batch_is_noop(self):
        cache = DecisionCache()
        cache.install_many([])
        assert cache.stats.installs == 0
        assert len(cache) == 0


class TestCapacityEviction:
    def test_capacity_bound_holds(self):
        cache = DecisionCache(capacity=16)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        assert len(cache) == 16
        assert cache.stats.evictions == 84

    def test_lru_evicts_least_recent(self):
        cache = DecisionCache(capacity=2, policy=EvictionPolicy.LRU)
        cache.install(key(1), Decision.drop())
        cache.install(key(2), Decision.drop())
        cache.lookup(key(1))  # touch 1 -> 2 is now LRU
        cache.install(key(3), Decision.drop())
        assert key(1) in cache
        assert key(2) not in cache

    def test_fifo_evicts_oldest(self):
        cache = DecisionCache(capacity=2, policy=EvictionPolicy.FIFO)
        cache.install(key(1), Decision.drop())
        cache.install(key(2), Decision.drop())
        cache.lookup(key(1))  # FIFO ignores recency
        cache.install(key(3), Decision.drop())
        assert key(1) not in cache

    def test_random_policy_respects_capacity(self):
        cache = DecisionCache(capacity=8, policy=EvictionPolicy.RANDOM)
        for i in range(50):
            cache.install(key(i), Decision.drop())
        assert len(cache) == 8

    def test_invalid_capacity(self):
        with pytest.raises(CacheError):
            DecisionCache(capacity=0)

    def test_evict_random_fraction(self):
        cache = DecisionCache(capacity=128)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        evicted = cache.evict_random_fraction(0.5)
        assert evicted == 50
        assert len(cache) == 50


class TestInvalidation:
    def test_invalidate_single(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        assert cache.invalidate(key(1)) is True
        assert cache.invalidate(key(1)) is False
        assert cache.lookup(key(1)) is None

    def test_invalidate_connection_all_sources(self):
        cache = DecisionCache()
        for src in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            cache.install(
                CacheKey(src=src, service_id=1, connection_id=77), Decision.drop()
            )
        cache.install(CacheKey(src="10.0.0.1", service_id=1, connection_id=78), Decision.drop())
        removed = cache.invalidate_connection(1, 77)
        assert removed == 3
        assert len(cache) == 1


class TestActivityAPI:
    """The §B.2 hit-count / recently-used API."""

    def test_hit_count_increments(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        assert cache.hit_count(key(1)) == 0
        cache.lookup(key(1))
        cache.lookup(key(1))
        assert cache.hit_count(key(1)) == 2

    def test_hit_count_missing_entry(self):
        assert DecisionCache().hit_count(key(9)) is None

    def test_recently_used_window(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop(), now=0.0)
        cache.lookup(key(1), now=10.0)
        assert cache.recently_used(key(1), now=12.0, window=5.0)
        assert not cache.recently_used(key(1), now=20.0, window=5.0)

    def test_recently_used_never_hit(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop(), now=0.0)
        assert not cache.recently_used(key(1), now=0.0, window=100.0)


class TestConnectionIndex:
    """The (service_id, connection_id) secondary index stays in sync with
    the table through installs, evictions, and invalidations."""

    def _assert_index_consistent(self, cache: DecisionCache) -> None:
        # Raises SanitizeError on any table/index divergence, including
        # retained empty buckets and stale key-list positions.
        cache.check_index_coherence()

    def test_index_tracks_install_and_invalidate(self):
        cache = DecisionCache(capacity=64)
        for i in range(20):
            cache.install(key(i), Decision.drop())
        self._assert_index_consistent(cache)
        for i in range(0, 20, 2):
            cache.invalidate(key(i))
        self._assert_index_consistent(cache)
        assert len(cache) == 10

    def test_index_survives_capacity_eviction(self):
        for policy in EvictionPolicy:
            cache = DecisionCache(capacity=8, policy=policy)
            for i in range(50):
                cache.install(key(i), Decision.drop())
            self._assert_index_consistent(cache)
            assert len(cache) == 8

    def test_index_survives_random_fraction_eviction(self):
        cache = DecisionCache(capacity=128)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        cache.evict_random_fraction(0.37)
        self._assert_index_consistent(cache)

    def test_invalidate_connection_uses_index(self):
        cache = DecisionCache()
        for src in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            cache.install(CacheKey(src, 5, 99), Decision.drop())
        for i in range(100):
            cache.install(key(i), Decision.drop())
        assert cache.invalidate_connection(5, 99) == 3
        assert cache.invalidate_connection(5, 99) == 0
        self._assert_index_consistent(cache)
        assert len(cache) == 100

    def test_reinstall_does_not_duplicate_index(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        cache.install(key(1), Decision.forward("10.0.0.9"))
        self._assert_index_consistent(cache)
        assert cache.invalidate_connection(1, 1) == 1
        self._assert_index_consistent(cache)
        assert len(cache) == 0


class TestLookupMany:
    """Batched multi-key queries (the sharding stage's lookup pass)."""

    def test_scalar_mode_matches_individual_lookups(self):
        batched, scalar = DecisionCache(), DecisionCache()
        for cache in (batched, scalar):
            cache.install(key(1), Decision.drop())
            cache.install(key(2), Decision.forward("10.0.0.9"))
        keys = [key(1), key(3), key(2), key(1)]
        results = batched.lookup_many(keys, now=7.0)
        expected = [scalar.lookup(k, now=7.0) for k in keys]
        assert results == expected
        assert batched.stats == scalar.stats
        assert batched.snapshot_entries() == scalar.snapshot_entries()

    def test_counts_mode_matches_lookup_run(self):
        batched, runs = DecisionCache(), DecisionCache()
        for cache in (batched, runs):
            cache.install(key(1), Decision.drop())
            cache.install(key(2), Decision.forward("10.0.0.9"))
        keys = [key(1), key(3), key(2)]
        counts = [4, 5, 2]
        results = batched.lookup_many(keys, counts, now=3.0)
        expected = [runs.lookup_run(k, c, now=3.0) for k, c in zip(keys, counts)]
        assert results == expected
        assert batched.stats == runs.stats
        assert batched.snapshot_entries() == runs.snapshot_entries()

    def test_counts_mode_miss_charges_nothing(self):
        cache = DecisionCache()
        assert cache.lookup_many([key(1), key(2)], [10, 20]) == [None, None]
        assert cache.stats.lookups == 0
        assert cache.stats.misses == 0

    def test_duplicate_keys_stack_bookkeeping(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        results = cache.lookup_many([key(1), key(1)], [3, 2], now=1.0)
        assert results[0] is results[1]
        assert cache.stats.lookups == 5
        assert cache.stats.hits == 5
        assert cache.hit_count(key(1)) == 5

    def test_lru_touch_order_follows_key_order(self):
        cache = DecisionCache(policy=EvictionPolicy.LRU)
        for i in (1, 2, 3):
            cache.install(key(i), Decision.drop())
        cache.lookup_many([key(2), key(1)], [1, 1])
        order = [row[0] for row in cache.snapshot_entries()]
        assert order == [key(3), key(2), key(1)]

    def test_empty_batch(self):
        cache = DecisionCache()
        assert cache.lookup_many([]) == []
        assert cache.lookup_many([], []) == []
        assert cache.stats.lookups == 0


class TestLookupManyIndexCoherence:
    """lookup_many keeps every secondary index coherent, sanitizer armed."""

    @pytest.fixture(autouse=True)
    def _armed(self):
        from repro import sanitize

        previous = sanitize.set_enabled(True)
        yield
        sanitize.set_enabled(previous)

    def test_batched_lookups_between_mutations(self):
        cache = DecisionCache(capacity=32)
        for i in range(40):  # drives evictions through install's armed check
            cache.install(key(i), Decision.drop())
            cache.lookup_many([key(i), key(i - 5), key(i + 1)], [2, 1, 1])
        cache.invalidate(key(39))
        cache.lookup_many([key(39), key(38)])
        cache.invalidate_connection(1, 38)
        cache.lookup_many([key(38)], [4])
        cache.check_index_coherence()

    def test_precomputed_hash_equals_fresh_key(self):
        # The cached-slot hash must behave exactly like the tuple hash it
        # memoizes: equal keys collide, probes built from fresh objects hit.
        cache = DecisionCache()
        cache.install(key(7), Decision.drop())
        fresh = CacheKey(src=key(7).src, service_id=1, connection_id=7)
        assert hash(fresh) == hash(key(7))
        assert cache.lookup_many([fresh], [1]) != [None]
        cache.check_index_coherence()

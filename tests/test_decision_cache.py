"""Unit tests for the decision cache (Appendix B semantics)."""

import pytest

from repro.core.decision_cache import (
    Action,
    CacheError,
    CacheKey,
    Decision,
    DecisionCache,
    EvictionPolicy,
    ForwardTarget,
)


def key(i: int) -> CacheKey:
    return CacheKey(src=f"10.0.0.{i % 250 + 1}", service_id=1, connection_id=i)


class TestDecision:
    def test_forward_requires_targets(self):
        with pytest.raises(CacheError):
            Decision(action=Action.FORWARD)

    def test_drop_cannot_have_targets(self):
        with pytest.raises(CacheError):
            Decision(action=Action.DROP, targets=(ForwardTarget("10.0.0.1"),))

    def test_multi_target_forward(self):
        decision = Decision.forward("10.0.0.1", "10.0.0.2", "10.0.0.3")
        assert len(decision.targets) == 3


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = DecisionCache(capacity=8)
        assert cache.lookup(key(1)) is None
        cache.install(key(1), Decision.forward("10.0.0.2"))
        result = cache.lookup(key(1))
        assert result is not None
        assert result.targets[0].peer == "10.0.0.2"

    def test_keys_are_exact_match(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        other = CacheKey(src=key(1).src, service_id=2, connection_id=1)
        assert cache.lookup(other) is None

    def test_reinstall_replaces(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.forward("10.0.0.2"))
        cache.install(key(1), Decision.drop())
        assert cache.lookup(key(1)).action is Action.DROP
        assert len(cache) == 1

    def test_stats(self):
        cache = DecisionCache()
        cache.lookup(key(1))
        cache.install(key(1), Decision.drop())
        cache.lookup(key(1))
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestCapacityEviction:
    def test_capacity_bound_holds(self):
        cache = DecisionCache(capacity=16)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        assert len(cache) == 16
        assert cache.stats.evictions == 84

    def test_lru_evicts_least_recent(self):
        cache = DecisionCache(capacity=2, policy=EvictionPolicy.LRU)
        cache.install(key(1), Decision.drop())
        cache.install(key(2), Decision.drop())
        cache.lookup(key(1))  # touch 1 -> 2 is now LRU
        cache.install(key(3), Decision.drop())
        assert key(1) in cache
        assert key(2) not in cache

    def test_fifo_evicts_oldest(self):
        cache = DecisionCache(capacity=2, policy=EvictionPolicy.FIFO)
        cache.install(key(1), Decision.drop())
        cache.install(key(2), Decision.drop())
        cache.lookup(key(1))  # FIFO ignores recency
        cache.install(key(3), Decision.drop())
        assert key(1) not in cache

    def test_random_policy_respects_capacity(self):
        cache = DecisionCache(capacity=8, policy=EvictionPolicy.RANDOM)
        for i in range(50):
            cache.install(key(i), Decision.drop())
        assert len(cache) == 8

    def test_invalid_capacity(self):
        with pytest.raises(CacheError):
            DecisionCache(capacity=0)

    def test_evict_random_fraction(self):
        cache = DecisionCache(capacity=128)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        evicted = cache.evict_random_fraction(0.5)
        assert evicted == 50
        assert len(cache) == 50


class TestInvalidation:
    def test_invalidate_single(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        assert cache.invalidate(key(1)) is True
        assert cache.invalidate(key(1)) is False
        assert cache.lookup(key(1)) is None

    def test_invalidate_connection_all_sources(self):
        cache = DecisionCache()
        for src in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            cache.install(
                CacheKey(src=src, service_id=1, connection_id=77), Decision.drop()
            )
        cache.install(CacheKey(src="10.0.0.1", service_id=1, connection_id=78), Decision.drop())
        removed = cache.invalidate_connection(1, 77)
        assert removed == 3
        assert len(cache) == 1


class TestActivityAPI:
    """The §B.2 hit-count / recently-used API."""

    def test_hit_count_increments(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        assert cache.hit_count(key(1)) == 0
        cache.lookup(key(1))
        cache.lookup(key(1))
        assert cache.hit_count(key(1)) == 2

    def test_hit_count_missing_entry(self):
        assert DecisionCache().hit_count(key(9)) is None

    def test_recently_used_window(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop(), now=0.0)
        cache.lookup(key(1), now=10.0)
        assert cache.recently_used(key(1), now=12.0, window=5.0)
        assert not cache.recently_used(key(1), now=20.0, window=5.0)

    def test_recently_used_never_hit(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop(), now=0.0)
        assert not cache.recently_used(key(1), now=0.0, window=100.0)


class TestConnectionIndex:
    """The (service_id, connection_id) secondary index stays in sync with
    the table through installs, evictions, and invalidations."""

    def _assert_index_consistent(self, cache: DecisionCache) -> None:
        # Raises SanitizeError on any table/index divergence, including
        # retained empty buckets and stale key-list positions.
        cache.check_index_coherence()

    def test_index_tracks_install_and_invalidate(self):
        cache = DecisionCache(capacity=64)
        for i in range(20):
            cache.install(key(i), Decision.drop())
        self._assert_index_consistent(cache)
        for i in range(0, 20, 2):
            cache.invalidate(key(i))
        self._assert_index_consistent(cache)
        assert len(cache) == 10

    def test_index_survives_capacity_eviction(self):
        for policy in EvictionPolicy:
            cache = DecisionCache(capacity=8, policy=policy)
            for i in range(50):
                cache.install(key(i), Decision.drop())
            self._assert_index_consistent(cache)
            assert len(cache) == 8

    def test_index_survives_random_fraction_eviction(self):
        cache = DecisionCache(capacity=128)
        for i in range(100):
            cache.install(key(i), Decision.drop())
        cache.evict_random_fraction(0.37)
        self._assert_index_consistent(cache)

    def test_invalidate_connection_uses_index(self):
        cache = DecisionCache()
        for src in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            cache.install(CacheKey(src, 5, 99), Decision.drop())
        for i in range(100):
            cache.install(key(i), Decision.drop())
        assert cache.invalidate_connection(5, 99) == 3
        assert cache.invalidate_connection(5, 99) == 0
        self._assert_index_consistent(cache)
        assert len(cache) == 100

    def test_reinstall_does_not_duplicate_index(self):
        cache = DecisionCache()
        cache.install(key(1), Decision.drop())
        cache.install(key(1), Decision.forward("10.0.0.9"))
        self._assert_index_consistent(cache)
        assert cache.invalidate_connection(1, 1) == 1
        self._assert_index_consistent(cache)
        assert len(cache) == 0

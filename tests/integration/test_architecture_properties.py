"""Integration: the §3.3 "important properties" — backwards compatibility,
resilience (failover), extensibility, and §5 portability — plus the §3.2
pass-through (operator-imposed) deployment shape.
"""

import pytest

from repro import InterEdge, WellKnownService
from repro.core.service_module import Standardization
from repro.netsim import Link
from repro.services import (
    IPDeliveryService,
    ImposedFirewall,
    NullService,
    Rule,
    RuleSet,
    standard_registry,
)


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


class TestBackwardsCompatibility:
    """§3.3: InterEdge-unaware endpoints keep working unchanged."""

    def test_raw_ip_still_flows_through_sn(self, single_sn_net):
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        legacy_a = net.add_host(sn, name="legacy-a")
        legacy_b = net.add_host(sn, name="legacy-b")
        legacy_a.send_raw_ip(legacy_b.address, b"plain-old-ip")
        net.run(1.0)
        assert [p.data for _, p in legacy_b.delivered] == [b"plain-old-ip"]
        assert sn.raw_packets_forwarded == 1
        # The service machinery never engaged.
        assert sn.terminus.stats.packets_in == 0

    def test_legacy_and_ilp_coexist(self, single_sn_net):
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        modern = net.add_host(sn, name="modern")
        legacy = net.add_host(sn, name="legacy")
        conn = modern.connect(
            WellKnownService.IP_DELIVERY, dest_addr=legacy.address, allow_direct=False
        )
        modern.send(conn, b"ilp")
        legacy.send_raw_ip(modern.address, b"raw")
        net.run(1.0)
        assert [p.data for _, p in legacy.delivered] == [b"ilp"]
        assert [p.data for _, p in modern.delivered] == [b"raw"]


class TestResilience:
    """§3.3: stateless services recover like routers; stateful ones use
    checkpoint/standby-replication."""

    def test_stateful_failover_preserves_service_state(self, two_edomain_net):
        net = two_edomain_net
        primary = sn_of(net, "west", 0)
        standby = sn_of(net, "west", 1)
        pubsub = primary.env.service(WellKnownService.PUBSUB)
        pubsub.retain("topic", b"retained-msg")
        moved = primary.failover_to(standby)
        assert moved == len(primary.env.service_ids())
        standby_pubsub = standby.env.service(WellKnownService.PUBSUB)
        assert standby_pubsub.retained("topic") == [b"retained-msg"]

    def test_host_reassociation_after_sn_failure(self, two_edomain_net):
        """Host-driven recovery: re-associate and resubscribe elsewhere."""
        net = two_edomain_net
        failed = sn_of(net, "west", 0)
        backup = sn_of(net, "west", 1)
        host = net.add_host(failed, name="mobile")
        # The SN "fails": host associates with the backup.
        Link(net.sim, host, backup, latency=0.001)
        backup.associate_host(host)
        peer = net.add_host(backup, name="peer")
        conn = host.connect(
            WellKnownService.IP_DELIVERY, dest_addr=peer.address, allow_direct=False
        )
        assert conn.via_sn == backup.address or conn.via_sn == failed.address
        # Force the backup path explicitly (the failed SN would not answer).
        conn.via_sn = backup.address
        host.send(conn, b"recovered")
        net.run(1.0)
        assert [p.data for _, p in peer.delivered] == [b"recovered"]


class TestExtensibility:
    """§3.3: a newly standardized service becomes uniformly available."""

    def test_rollout_then_invoke(self):
        net = InterEdge(registry=standard_registry())
        net.create_edomain("a")
        net.create_edomain("b")
        sn_a = net.add_sn("a")
        sn_b = net.add_sn("b")
        net.peer_all()
        net.deploy_required_services()

        class ReverseEchoService(NullService):
            """A hypothetical new standard service."""

            SERVICE_ID = 0x0F10
            NAME = "reverse-echo"

        net.registry.register(ReverseEchoService, Standardization.STANDARDIZED)
        # Testing window passes; the governance body requires it:
        net.registry.promote(0x0F10, Standardization.REQUIRED)
        net.deploy_required_services()
        assert sn_a.env.has_service(0x0F10)
        assert sn_b.env.has_service(0x0F10)
        # An aware host can invoke it immediately.
        client = net.add_host(sn_a, name="aware")
        server = net.add_host(sn_b, name="server")
        conn = client.connect(
            0x0F10, dest_addr=server.address, dest_sn=sn_b.address
        )
        client.send(conn, b"new-service")
        net.run(1.0)
        assert [p.data for _, p in server.delivered] == [b"new-service"]


class TestPortability:
    """§5: standardized config moves between IESPs without rewriting."""

    def test_config_export_import_across_iesps(self, two_edomain_net):
        net = two_edomain_net
        old_iesp_sn = sn_of(net, "west", 0)
        new_iesp_sn = sn_of(net, "east", 0)
        svc = WellKnownService.FIREWALL
        old_iesp_sn.env.config.set(svc, "customer-1", "default_allow", False)
        old_iesp_sn.env.config.set(svc, "customer-1", "blocklist", ["10.9.0.0/16"])
        snapshot = old_iesp_sn.env.config.export()
        new_iesp_sn.env.config.import_config(snapshot)
        assert (
            new_iesp_sn.env.config.get(svc, "customer-1", "default_allow") is False
        )
        assert new_iesp_sn.env.config.get(svc, "customer-1", "blocklist") == [
            "10.9.0.0/16"
        ]

    def test_config_watch_fires_on_import(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "east", 1)
        changes = []
        watcher = lambda *args: changes.append(args)  # noqa: E731
        sn.env.config.watch(watcher)
        sn.env.config.import_config({(1, "c", "k"): "v"})
        assert changes == [(1, "c", "k", "v")]
        assert sn.env.config.unwatch(watcher) is True


class TestPassThrough:
    """§3.2 third invocation mode: operator-imposed services at a
    pass-through SN on the enterprise boundary."""

    def _enterprise(self, net):
        edge_sn = sn_of(net, "west", 0)  # the IESP SN (client-invoked services)
        sim = net.sim
        from repro.core.service_node import ServiceNode

        gateway = ServiceNode(sim, "ent-gw", "10.10.0.1", edomain_name="west")
        gateway.directory = net.directory
        net.directory.register(gateway.address, "west", via=edge_sn.address)
        gateway.establish_pipe(edge_sn, latency=0.001)
        inside = net.add_host(gateway, name="inside", latency=0.0005)
        rules = RuleSet(default_allow=True)
        rules.add(Rule(allow=False, dst_prefix="203.0.113.0/24"))  # banned range
        gateway.configure_pass_through(
            next_hop=edge_sn.address, chain=[ImposedFirewall(rules)]
        )
        return edge_sn, gateway, inside

    def test_allowed_traffic_passes_through_to_next_hop(self, two_edomain_net):
        net = two_edomain_net
        edge_sn, gateway, inside = self._enterprise(net)
        outside = net.add_host(sn_of(net, "east", 0), name="outside")
        conn = inside.connect(
            WellKnownService.IP_DELIVERY, dest_addr=outside.address, allow_direct=False
        )
        inside.send(conn, b"allowed")
        net.run(1.0)
        assert [p.data for _, p in outside.delivered] == [b"allowed"]

    def test_imposed_firewall_blocks_banned_destination(self, two_edomain_net):
        net = two_edomain_net
        edge_sn, gateway, inside = self._enterprise(net)
        conn = inside.connect(
            WellKnownService.IP_DELIVERY, dest_addr="203.0.113.7", allow_direct=False
        )
        inside.send(conn, b"exfil")
        net.run(1.0)
        assert gateway.terminus.stats.drops_by_decision == 1
        assert edge_sn.terminus.stats.packets_in == 0

    def test_pass_through_caches_decision(self, two_edomain_net):
        net = two_edomain_net
        edge_sn, gateway, inside = self._enterprise(net)
        outside = net.add_host(sn_of(net, "east", 0), name="outside")
        conn = inside.connect(
            WellKnownService.IP_DELIVERY, dest_addr=outside.address, allow_direct=False
        )
        for _ in range(4):
            inside.send(conn, b"x")
        net.run(1.0)
        assert gateway.cache.stats.hits == 3
        assert len(outside.delivered) == 4

    def test_inbound_traffic_reaches_inside_host(self, two_edomain_net):
        net = two_edomain_net
        edge_sn, gateway, inside = self._enterprise(net)
        net.lookup.register_address(
            inside.address, inside.keypair, associated_sns=[gateway.address]
        )
        outside = net.add_host(sn_of(net, "east", 0), name="outside")
        conn = outside.connect(
            WellKnownService.IP_DELIVERY,
            dest_addr=inside.address,
            dest_sn=gateway.address,
            allow_direct=False,
        )
        outside.send(conn, b"inbound")
        net.run(1.0)
        assert [p.data for _, p in inside.delivered if p.data] == [b"inbound"]

"""Integration: prefix-hijack defense (§6.2 Security).

The claim: because any pair of InterEdge SNs talk over an encrypted and
authenticated tunnel, a BGP hijack that redirects the underlay cannot read
or spoof InterEdge traffic — it can at worst black-hole it. We model the
underlay with the AS graph and the InterEdge pipes with PSP contexts, and
compare plain-IP exposure with ILP exposure under the same hijack.
"""

import pytest

from repro.core.ilp import ILPHeader
from repro.core.psp import PSPContext, PSPError, pairwise_secret
from repro.netsim.ipnet import ASGraph


def hijacked_underlay():
    """A line of 7 ASes; victim prefix at AS0, hijacker at AS6."""
    graph = ASGraph()
    for i in range(7):
        graph.add_as(i)
    for i in range(6):
        graph.peer(i, i + 1)
    graph.originate(0, "198.18.0.0/24")  # the SN's real home
    graph.originate(6, "198.18.0.0/24")  # the hijack
    graph.converge()
    return graph


class TestHijackDefense:
    def test_underlay_is_captured(self):
        """Without InterEdge, ASes near the hijacker send traffic to it."""
        graph = hijacked_underlay()
        captured = graph.capture_fraction(0, 6, "198.18.0.0/24", range(7))
        assert captured == pytest.approx(2 / 5)  # AS4, AS5 are fooled

    def test_hijacker_cannot_read_ilp(self):
        """The hijacker receives the packets — and learns nothing."""
        graph = hijacked_underlay()
        # AS5's traffic to the victim SN address is routed to the hijacker.
        assert graph.resolve_origin(5, "198.18.0.1") == 6
        # That traffic is an ILP packet sealed with the pairwise key of
        # (sender SN, victim SN); the hijacker has neither.
        sender_ctx = PSPContext(pairwise_secret("198.18.5.1", "198.18.0.1"))
        header = ILPHeader(service_id=7, connection_id=1234)
        wire = sender_ctx.seal(header.encode())
        hijacker_ctx = PSPContext(pairwise_secret("198.18.6.66", "198.18.0.1"))
        with pytest.raises(PSPError):
            hijacker_ctx.open(wire)

    def test_hijacker_cannot_spoof_traffic(self):
        """Packets the hijacker fabricates fail authentication at the SN."""
        victim_ctx = PSPContext(pairwise_secret("198.18.5.1", "198.18.0.1"))
        forged = PSPContext(pairwise_secret("198.18.6.66", "198.18.5.1")).seal(
            ILPHeader(service_id=7, connection_id=1).encode()
        )
        with pytest.raises(PSPError):
            victim_ctx.open(forged)

    def test_sn_drops_hijacker_injected_packets(self, single_sn_net):
        """End to end: injected packets increment auth drops, nothing else."""
        net = single_sn_net
        dom = net.edomains["solo"]
        sn = dom.sns[dom.sn_addresses()[0]]
        victim_host = net.add_host(sn, name="victim")
        from repro.core.packet import ILPPacket, L3Header, make_payload

        # The attacker somehow delivers a frame to the SN claiming to be
        # from the host (address spoofing is what hijacks enable) but it
        # cannot produce a valid seal.
        attacker_ctx = PSPContext(pairwise_secret("6.6.6.6", sn.address))
        forged = ILPPacket(
            l3=L3Header(src=victim_host.address, dst=sn.address),
            ilp_wire=attacker_ctx.seal(
                ILPHeader(service_id=2, connection_id=9).encode()
            ),
            payload=make_payload(b"evil"),
        )
        sn.receive_frame(forged, sn.links[0])
        net.run(1.0)
        assert sn.terminus.stats.drops_auth == 1
        assert victim_host.delivered == []

    def test_recovery_after_withdraw(self):
        graph = hijacked_underlay()
        graph.withdraw(6, "198.18.0.0/24")
        graph.converge()
        assert graph.capture_fraction(0, 6, "198.18.0.0/24", range(7)) == 0.0

"""Integration: multicast fan-out happens at the edges, not the source.

The architectural point of SN-based multicast (§6.2): a publisher sends
ONE copy; replication happens progressively — once toward each member
edomain, once toward each member SN inside an edomain, once per member
host at its SN. We count packets on each pipe class to prove it.
"""

import pytest

from repro import WellKnownService
from repro.scenarios import metro_federation
from repro.services.multipoint import join_group, publish, register_sender


class TestMulticastEfficiency:
    def _world(self):
        handles = metro_federation(
            n_edomains=3, sns_per_edomain=2, hosts_per_sn=0
        )
        net = handles.net
        sns = handles.sns  # 6 SNs: [d0s0, d0s1, d1s0, d1s1, d2s0, d2s1]
        sender = net.add_host(sns[0], name="sender")
        members = []
        # 2 members per SN on four SNs across all three edomains.
        for sn in (sns[1], sns[2], sns[3], sns[4]):
            for i in range(2):
                members.append(net.add_host(sn, name=f"m-{sn.name}-{i}"))
        net.lookup.register_group("multicast:g", sender.keypair)
        net.lookup.post_open_group("multicast:g", sender.keypair)
        for member in members:
            join_group(member, WellKnownService.MULTICAST, "g")
        register_sender(sender, WellKnownService.MULTICAST, "g")
        net.run(1.0)
        return net, handles, sender, members

    def test_all_members_receive_exactly_once(self):
        net, handles, sender, members = self._world()
        publish(sender, WellKnownService.MULTICAST, "g", b"fanout")
        net.run(1.0)
        for member in members:
            got = [p.data for _, p in member.delivered if p.data == b"fanout"]
            assert got == [b"fanout"], member.name

    def test_source_sends_one_copy(self):
        net, handles, sender, members = self._world()
        link = sender.links[0]
        before = link.stats[sender].frames_sent
        publish(sender, WellKnownService.MULTICAST, "g", b"fanout")
        net.run(1.0)
        assert link.stats[sender].frames_sent - before == 1  # ONE copy up

    def test_inter_edomain_pipes_carry_one_copy_per_member_edomain(self):
        net, handles, sender, members = self._world()
        border0 = net.edomains["edomain-0"].border_sn
        # Count cross-edomain frames leaving the sender's border SN.
        counts = {}
        for link in border0.links:
            other = link.other(border0)
            edomain = net.directory.edomain_of(getattr(other, "address", ""))
            if edomain and edomain != "edomain-0":
                counts[edomain] = (link, link.stats[border0].frames_sent)
        publish(sender, WellKnownService.MULTICAST, "g", b"fanout")
        net.run(1.0)
        for edomain, (link, before) in counts.items():
            sent = link.stats[border0].frames_sent - before
            # Exactly one copy crossed to each member edomain — replication
            # to that edomain's SNs/hosts happened on the far side.
            assert sent == 1, edomain

    def test_non_member_sn_sees_nothing(self):
        net, handles, sender, members = self._world()
        idle_sn = handles.sns[5]  # d2s1: no members
        before = idle_sn.terminus.stats.packets_in
        publish(sender, WellKnownService.MULTICAST, "g", b"fanout")
        net.run(1.0)
        assert idle_sn.terminus.stats.packets_in == before

"""Integration soak: a metro federation under sustained mixed workloads.

A long-horizon health check of the whole stack: Poisson and bursty
sources drive delivery traffic across a 3-edomain federation while
pub/sub fan-out runs concurrently; the federation monitor verifies zero
drops, full delivery, and a high steady-state fast-path fraction.
"""

import pytest

from repro import WellKnownService
from repro.core.monitoring import FederationMonitor
from repro.netsim.workloads import OnOffSource, PoissonSource
from repro.scenarios import metro_federation
from repro.services.multipoint import join_group, publish, register_sender


class TestSoak:
    def test_mixed_workload_soak(self):
        handles = metro_federation(
            n_edomains=3, sns_per_edomain=2, hosts_per_sn=1
        )
        net = handles.net
        hosts = handles.hosts
        sim = net.sim

        # Point-to-point flows under Poisson + on-off load.
        pairs = [(hosts[0], hosts[3]), (hosts[1], hosts[4]), (hosts[2], hosts[5])]
        sent_counts = []
        for i, (src, dst) in enumerate(pairs):
            conn = src.connect(
                WellKnownService.IP_DELIVERY,
                dest_addr=dst.address,
                allow_direct=False,
            )
            sent = [0]

            def make_sink(src=src, conn=conn, sent=sent):
                def sink(seq, size):
                    src.send(conn, b"s" * min(size, 1000))
                    sent[0] += 1

                return sink

            if i % 2 == 0:
                PoissonSource(sim, make_sink(), rate_pps=50, seed=i).start(
                    duration=10.0
                )
            else:
                OnOffSource(
                    sim, make_sink(), rate_bps=400_000, packet_bytes=500, seed=i
                ).start(duration=10.0)
            sent_counts.append(sent)

        # Concurrent pub/sub fan-out.
        pub, subscriber = hosts[0], hosts[-1]
        net.lookup.register_group("pubsub:soak", pub.keypair)
        net.lookup.post_open_group("pubsub:soak", pub.keypair)
        join_group(subscriber, WellKnownService.PUBSUB, "soak")
        register_sender(pub, WellKnownService.PUBSUB, "soak")
        net.run(0.5)
        for i in range(20):
            publish(pub, WellKnownService.PUBSUB, "soak", f"tick-{i}".encode())

        net.run(15.0)

        # Everything sent was delivered, nothing dropped anywhere.
        monitor = FederationMonitor(net)
        report = monitor.collect()
        assert report.total_drops == 0
        for (src, dst), sent in zip(pairs, sent_counts):
            delivered = sum(
                1 for _, p in dst.delivered if p.data and p.data[0:1] == b"s"
            )
            assert delivered == sent[0]
        pubsub_got = [
            p.data for _, p in subscriber.delivered if p.data.startswith(b"tick-")
        ]
        assert len(pubsub_got) == 20
        # Steady state is overwhelmingly fast path (delivery flows cache).
        assert report.overall_fast_path_fraction > 0.75

    def test_soak_is_deterministic(self):
        """Same seeds, same virtual timeline — byte-identical outcomes."""

        def run() -> tuple[int, float]:
            handles = metro_federation(
                n_edomains=2, sns_per_edomain=1, hosts_per_sn=1
            )
            net = handles.net
            src, dst = handles.hosts
            conn = src.connect(
                WellKnownService.IP_DELIVERY,
                dest_addr=dst.address,
                allow_direct=False,
            )
            source = PoissonSource(
                net.sim,
                lambda seq, size: src.send(conn, b"d"),
                rate_pps=100,
                seed=99,
            )
            source.start(duration=5.0)
            net.run(10.0)
            return len(dst.delivered), net.sim.now

        assert run() == run()

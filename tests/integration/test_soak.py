"""Integration soak: a metro federation under sustained mixed workloads.

A long-horizon health check of the whole stack: Poisson and bursty
sources drive delivery traffic across a 3-edomain federation while
pub/sub fan-out runs concurrently; the federation monitor verifies zero
drops, full delivery, and a high steady-state fast-path fraction.
"""

import pytest

from repro import WellKnownService
from repro.core.monitoring import FederationMonitor
from repro.core.overload import BreakerState
from repro.netsim import FaultInjector, FaultPlan, link_name
from repro.netsim.workloads import OnOffSource, PoissonSource
from repro.scenarios import metro_federation
from repro.services.multipoint import join_group, publish, register_sender


class TestSoak:
    def test_mixed_workload_soak(self):
        handles = metro_federation(
            n_edomains=3, sns_per_edomain=2, hosts_per_sn=1
        )
        net = handles.net
        hosts = handles.hosts
        sim = net.sim

        # Point-to-point flows under Poisson + on-off load.
        pairs = [(hosts[0], hosts[3]), (hosts[1], hosts[4]), (hosts[2], hosts[5])]
        sent_counts = []
        for i, (src, dst) in enumerate(pairs):
            conn = src.connect(
                WellKnownService.IP_DELIVERY,
                dest_addr=dst.address,
                allow_direct=False,
            )
            sent = [0]

            def make_sink(src=src, conn=conn, sent=sent):
                def sink(seq, size):
                    src.send(conn, b"s" * min(size, 1000))
                    sent[0] += 1

                return sink

            if i % 2 == 0:
                PoissonSource(sim, make_sink(), rate_pps=50, seed=i).start(
                    duration=10.0
                )
            else:
                OnOffSource(
                    sim, make_sink(), rate_bps=400_000, packet_bytes=500, seed=i
                ).start(duration=10.0)
            sent_counts.append(sent)

        # Concurrent pub/sub fan-out.
        pub, subscriber = hosts[0], hosts[-1]
        net.lookup.register_group("pubsub:soak", pub.keypair)
        net.lookup.post_open_group("pubsub:soak", pub.keypair)
        join_group(subscriber, WellKnownService.PUBSUB, "soak")
        register_sender(pub, WellKnownService.PUBSUB, "soak")
        net.run(0.5)
        for i in range(20):
            publish(pub, WellKnownService.PUBSUB, "soak", f"tick-{i}".encode())

        net.run(15.0)

        # Everything sent was delivered, nothing dropped anywhere.
        monitor = FederationMonitor(net)
        report = monitor.collect()
        assert report.total_drops == 0
        for (src, dst), sent in zip(pairs, sent_counts):
            delivered = sum(
                1 for _, p in dst.delivered if p.data and p.data[0:1] == b"s"
            )
            assert delivered == sent[0]
        pubsub_got = [
            p.data for _, p in subscriber.delivered if p.data.startswith(b"tick-")
        ]
        assert len(pubsub_got) == 20
        # Steady state is overwhelmingly fast path (delivery flows cache).
        assert report.overall_fast_path_fraction > 0.75

    def test_soak_is_deterministic(self):
        """Same seeds, same virtual timeline — byte-identical outcomes."""

        def run() -> tuple[int, float]:
            handles = metro_federation(
                n_edomains=2, sns_per_edomain=1, hosts_per_sn=1
            )
            net = handles.net
            src, dst = handles.hosts
            conn = src.connect(
                WellKnownService.IP_DELIVERY,
                dest_addr=dst.address,
                allow_direct=False,
            )
            source = PoissonSource(
                net.sim,
                lambda seq, size: src.send(conn, b"d"),
                rate_pps=100,
                seed=99,
            )
            source.start(duration=5.0)
            net.run(10.0)
            return len(dst.delivered), net.sim.now

        assert run() == run()


def _chaos_run():
    """30 virtual seconds of a metro federation under a seeded FaultPlan.

    Crashes one border SN (restarting it later) and flaps two edomain-2
    links while a cross-edomain flow runs through the dying border.
    Returns everything a determinism comparison needs.
    """
    handles = metro_federation(n_edomains=3, sns_per_edomain=2, hosts_per_sn=1)
    net = handles.net
    coordinator = net.enable_resilience(interval=0.25)
    plan = (
        FaultPlan(seed=42)
        .crash("sn-0-0", at=5.0, restart_after=12.0)
        .link_flap(link_name("sn-2-0", "sn-2-1"), at=4.0, period=1.0, count=3)
        .link_flap(
            link_name("host-sn-2-1-0", "sn-2-1"), at=6.0, period=0.8, count=2
        )
    )
    injector = FaultInjector(net.sim, plan).bind(net)
    injector.arm()

    # hosts[1] (sn-0-1) → hosts[3] (sn-1-1): crosses the sn-0-0 border.
    src, dst = handles.hosts[1], handles.hosts[3]
    conn = src.connect(
        WellKnownService.IP_DELIVERY, dest_addr=dst.address, allow_direct=False
    )
    for i in range(20):  # phase A: healthy fabric
        net.sim.schedule_at(0.5 + i * 0.1, src.send, conn, b"pre-%d" % i)
    for i in range(40):  # phase B: after the failover SLO window
        net.sim.schedule_at(9.0 + i * 0.1, src.send, conn, b"post-%d" % i)
    net.run(30.0)

    delivered = [p.data for _, p in dst.delivered if p.data]
    return handles, injector, coordinator, delivered


class TestChaosSoak:
    def test_chaos_soak_survives_border_crash_and_flaps(self):
        handles, injector, coordinator, delivered = _chaos_run()
        net = handles.net
        sns = handles.sns

        # Exactly one failover, to sn-0-1, within the 2-second SLO.
        failovers = coordinator.failovers()
        assert len(failovers) == 1
        assert failovers[0]["alternate"] == sns[1].address
        assert failovers[0]["at"] - 5.0 <= 2.0
        assert net.edomains["edomain-0"].border_address == sns[1].address

        # Every repairable transfer completed: all of phase A (pre-crash)
        # and all of phase B (post-failover), no endpoint-visible errors.
        assert [d for d in delivered if d.startswith(b"pre-")] == [
            b"pre-%d" % i for i in range(20)
        ]
        assert [d for d in delivered if d.startswith(b"post-")] == [
            b"post-%d" % i for i in range(40)
        ]
        assert handles.hosts[1].undeliverable == 0
        assert handles.hosts[3].undeliverable == 0

        # The flaps actually happened.
        flapped = sns[4].link_to(sns[5])
        assert flapped.down_transitions == 3

        # The crashed border restarted and was seen alive again.
        assert sns[0].crashes == 1 and not sns[0].failed
        assert any(e["kind"] == "peer-recovered" for e in coordinator.log)

        # Steady state after the storm: no dead pipes, no crashed SNs,
        # and the datapath drains to idle (no wedged timers or retries).
        report = FederationMonitor(net).collect()
        assert report.crashed_sns == 0
        assert report.dead_pipes == 0
        net.disable_resilience()
        net.sim.run_until_idle()

    def test_chaos_soak_is_deterministic(self):
        """Same plan seed ⇒ identical fault trace and identical outcome."""

        def fingerprint():
            handles, injector, coordinator, delivered = _chaos_run()
            return (
                injector.trace_digest(),
                delivered,
                [(e["at"], e["kind"]) for e in coordinator.log],
                handles.net.sim.events_processed,
            )

        assert fingerprint() == fingerprint()


def _overload_chaos_run():
    """15 virtual seconds with one SN under punt_storm + service_slowdown.

    The source's SN runs IP delivery under a fail-static policy while a
    seeded FaultPlan slows the service past its slow-path deadline and
    repeatedly evicts the decision cache (a punt storm). Every evicted
    packet punts, times out, and must be served from the stale-decision
    shelf instead of dropping; the circuit breaker trips, short-circuits
    the storm, and recovers once the fault clears. Returns everything the
    assertions and the determinism fingerprint need.
    """
    from repro.core.overload import BreakerConfig, DegradeMode, ServicePolicy

    handles = metro_federation(n_edomains=3, sns_per_edomain=2, hosts_per_sn=1)
    net = handles.net
    victim = handles.sns[1]  # "sn-0-1", the source host's SN
    victim.set_service_policy(
        WellKnownService.IP_DELIVERY,
        ServicePolicy(
            deadline=2e-3,
            degrade=DegradeMode.FAIL_STATIC,
            breaker=BreakerConfig(
                min_samples=2,
                ewma_alpha=1.0,
                open_duration=0.5,
                half_open_probes=2,
                close_after=1,
            ),
        ),
    )
    plan = (
        FaultPlan(seed=7)
        .service_slowdown(
            "sn-0-1",
            WellKnownService.IP_DELIVERY,
            at=3.0,
            extra=0.05,  # far beyond the 2 ms slow-path deadline
            duration=4.0,  # auto service_recover at t=7.0
        )
        .punt_storm("sn-0-1", at=3.2, period=0.5, count=6, fraction=1.0)
    )
    injector = FaultInjector(net.sim, plan).bind(net)
    injector.arm()

    src, dst = handles.hosts[1], handles.hosts[3]
    conn = src.connect(
        WellKnownService.IP_DELIVERY, dest_addr=dst.address, allow_direct=False
    )
    for i in range(20):  # phase A: healthy — warms cache and stale shelf
        net.sim.schedule_at(0.5 + i * 0.1, src.send, conn, b"pre-%d" % i)
    for i in range(30):  # phase B: inside the fault window
        net.sim.schedule_at(3.5 + i * 0.1, src.send, conn, b"mid-%d" % i)
    for i in range(20):  # phase C: after recovery
        net.sim.schedule_at(8.0 + i * 0.1, src.send, conn, b"post-%d" % i)
    net.run(15.0)

    delivered = [p.data for _, p in dst.delivered if p.data]
    return handles, injector, victim, delivered


class TestOverloadSoak:
    def test_punt_storm_with_slowdown_degrades_to_stale_not_drops(self):
        handles, injector, victim, delivered = _overload_chaos_run()
        guard = victim.terminus.overload

        # The fault actually bit: punts missed their deadline, the storm's
        # evicted packets were served from the stale shelf, and the open
        # breaker short-circuited part of the storm.
        assert guard.stats.deadline_misses > 0
        assert guard.stats.degraded_static > 0
        assert guard.stats.short_circuits > 0
        assert guard.stats.static_misses == 0  # the shelf covered the flow

        # End-to-end goodput survived degradation: every phase delivered
        # completely and in order, including packets sent mid-fault.
        for phase, n in ((b"pre-", 20), (b"mid-", 30), (b"post-", 20)):
            assert [d for d in delivered if d.startswith(phase)] == [
                phase + b"%d" % i for i in range(n)
            ]
        assert handles.hosts[3].undeliverable == 0

        # Breaker lifecycle: tripped during the fault, recovered to CLOSED
        # within 2 sim-seconds of the fault clearing (t=7.0).
        breaker = guard.breakers[WellKnownService.IP_DELIVERY]
        assert breaker.state is BreakerState.CLOSED
        assert breaker.stats.trips >= 1
        recovered = breaker.recovered_at()
        assert recovered is not None
        assert 7.0 <= recovered <= 9.0

        # Bounded memory, federation-wide: nothing left parked, every
        # miss-queue ledger balances, every stale shelf within its cap.
        for sn in handles.sns:
            queue = sn.terminus.miss_queue
            assert queue.live == 0
            mq = queue.stats
            assert mq.offered == (
                mq.drained_fast
                + mq.replayed
                + mq.spilled
                + mq.shed
                + mq.dropped
                + queue.live
            )
            assert sn.cache.stale_count <= sn.cache.stale_capacity
        report = FederationMonitor(handles.net).collect()
        assert report.total_drops == 0

    def test_overload_soak_is_deterministic(self):
        """Same plan seed ⇒ identical degradation, breaker timeline, and
        delivery outcome — overload handling replays bit-identically."""

        def fingerprint():
            handles, injector, victim, delivered = _overload_chaos_run()
            guard = victim.terminus.overload
            breaker = guard.breakers[WellKnownService.IP_DELIVERY]
            return (
                injector.trace_digest(),
                delivered,
                (
                    guard.stats.deadline_misses,
                    guard.stats.short_circuits,
                    guard.stats.degraded_static,
                    guard.stats.static_misses,
                ),
                breaker.transitions,
                handles.net.sim.events_processed,
            )

        assert fingerprint() == fingerprint()

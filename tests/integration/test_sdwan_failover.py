"""Integration: SD-WAN path failover end to end (§5, §3.3 resilience)."""

import pytest

from repro import InterEdge, WellKnownService
from repro.services import standard_registry
from repro.services.sdwan import PathMetric


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestSDWANFailover:
    def _world(self, _unused=None):
        """West has three SNs: the branch SN plus two overlay hops, so both
        candidate paths genuinely traverse distinct intermediate SNs."""
        net = InterEdge(registry=standard_registry())
        net.create_edomain("west")
        net.create_edomain("east")
        src_sn = net.add_sn("west", name="branch-sn")
        alt_a = net.add_sn("west", name="overlay-a")
        alt_b = net.add_sn("west", name="overlay-b")
        dest_sn = net.add_sn("east", name="hq-sn")
        net.peer_all()
        net.deploy_required_services()
        client = net.add_host(src_sn, name="branch-office")
        server = net.add_host(dest_sn, name="hq")
        module = src_sn.env.service(WellKnownService.SDWAN)
        module.selector.configure_site(
            dest_sn.address,
            [
                PathMetric(via_sn=alt_a.address, latency_ms=5.0),
                PathMetric(via_sn=alt_b.address, latency_ms=40.0),
            ],
        )
        return net, client, server, module, src_sn, alt_a, alt_b, dest_sn

    def test_traffic_moves_after_path_failure(self):
        net, client, server, module, src_sn, alt_a, alt_b, dest_sn = self._world()
        conn = client.connect(
            WellKnownService.SDWAN,
            dest_addr=server.address,
            dest_sn=dest_sn.address,
            allow_direct=False,
        )
        client.send(conn, b"via-primary")
        net.run(1.0)
        assert alt_a.terminus.stats.packets_in >= 1
        before_b = alt_b.terminus.stats.packets_in

        # The primary path dies (an operator/probe signal).
        module.fail_path(dest_sn.address, alt_a.address)
        client.send(conn, b"via-backup")
        net.run(1.0)
        assert payloads(server) == [b"via-primary", b"via-backup"]
        assert alt_b.terminus.stats.packets_in > before_b
        assert module.selector.failovers == 1

    def test_cache_flushed_on_failover(self):
        """fail_path evicts fast-path state so flows re-select (App. B:
        eviction is always safe, here it is also useful)."""
        net, client, server, module, src_sn, alt_a, alt_b, dest_sn = self._world()
        conn = client.connect(
            WellKnownService.SDWAN,
            dest_addr=server.address,
            dest_sn=dest_sn.address,
            allow_direct=False,
        )
        for _ in range(3):
            client.send(conn, b"x")
        net.run(1.0)
        assert len(src_sn.cache) >= 1
        module.fail_path(dest_sn.address, alt_a.address)
        assert len(src_sn.cache) == 0

    def test_recovery_prefers_primary_again(self):
        net, client, server, module, src_sn, alt_a, alt_b, dest_sn = self._world()
        module.fail_path(dest_sn.address, alt_a.address)
        module.selector.mark_up(dest_sn.address, alt_a.address)
        src_sn.cache.evict_random_fraction(1.0)
        conn = client.connect(
            WellKnownService.SDWAN,
            dest_addr=server.address,
            dest_sn=dest_sn.address,
            allow_direct=False,
        )
        client.send(conn, b"back-on-primary")
        net.run(1.0)
        assert payloads(server) == [b"back-on-primary"]
        assert alt_a.terminus.stats.packets_in >= 1

"""Integration: the Figure 1 component picture, executed.

Figure 1 shows hosts with host stacks and per-app connections, host-to-SN
pipes, SN-to-SN pipes, and packets carrying L2 | L3 | (encrypted ILP) |
L4+data. These tests walk real packets through that exact structure and
assert each element behaves as drawn.
"""

import pytest

from repro import WellKnownService
from repro.core.ilp import ILPHeader
from repro.core.packet import ILPPacket
from repro.core.psp import PSPContext, pairwise_secret


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


class TestFigure1:
    def test_full_path_host_sn_sn_host(self, two_edomain_net):
        """client → SN → (border pipes) → SN → server (§3.2 typical path)."""
        net = two_edomain_net
        sn_c = sn_of(net, "west", 1)
        sn_s = sn_of(net, "east", 1)
        client = net.add_host(sn_c, name="client")
        server = net.add_host(sn_s, name="server")
        conn = client.connect(
            WellKnownService.IP_DELIVERY, dest_addr=server.address
        )
        client.send(conn, b"figure-1")
        net.run(1.0)
        assert [p.data for _, p in server.delivered] == [b"figure-1"]
        # The packet traversed both inner SNs and both borders.
        for sn in (sn_c, sn_of(net, "west", 0), sn_of(net, "east", 0), sn_s):
            assert sn.terminus.stats.packets_in >= 1

    def test_two_apps_one_host_distinct_connections(self, two_edomain_net):
        """Figure 1 shows App A and App B sharing one host stack."""
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="dual-app")
        peer = net.add_host(sn, name="peer")
        app_a = host.connect(
            WellKnownService.IP_DELIVERY, dest_addr=peer.address, allow_direct=False
        )
        app_b = host.connect(
            WellKnownService.CACHING_BUNDLE, dest_addr=peer.address, allow_direct=False
        )
        assert app_a.connection_id != app_b.connection_id
        host.send(app_a, b"from-app-a")
        host.send(app_b, b"from-app-b")
        net.run(1.0)
        services = sorted(h.service_id for h, p in peer.delivered if p.data)
        assert services == sorted(
            [WellKnownService.IP_DELIVERY, WellKnownService.CACHING_BUNDLE]
        )

    def test_wire_format_layers(self, two_edomain_net):
        """On the wire: plaintext L3, encrypted ILP header, opaque payload."""
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        client = net.add_host(sn, name="client")
        server = net.add_host(sn, name="server")
        captured = []
        sn.rx_tap = lambda frame, link: captured.append(frame)
        conn = client.connect(
            WellKnownService.IP_DELIVERY, dest_addr=server.address, allow_direct=False
        )
        client.send(conn, b"layered")
        net.run(1.0)
        frame = captured[0]
        assert isinstance(frame, ILPPacket)
        # L3 is readable (the underlay routes on it).
        assert frame.l3.src == client.address
        assert frame.l3.dst == sn.address
        # The ILP header is NOT readable without the pairwise key...
        with pytest.raises(Exception):
            ILPHeader.decode(frame.ilp_wire)
        # ...but decrypts with it.
        ctx = PSPContext(pairwise_secret(client.address, sn.address))
        # (fresh context, same secret — PSP is stateless per packet)
        decoded = ILPHeader.decode(ctx.open(frame.ilp_wire))
        assert decoded.connection_id == conn.connection_id
        # Application payload rides behind, untouched.
        assert frame.payload.data == b"layered"

    def test_eavesdropper_between_sns_sees_nothing(self, two_edomain_net):
        """An observer on the SN-SN pipe learns endpoints' SNs, not content
        or inner addresses (the §4 trust model)."""
        net = two_edomain_net
        border_w = sn_of(net, "west", 0)
        border_e = sn_of(net, "east", 0)
        client = net.add_host(sn_of(net, "west", 1), name="client")
        server = net.add_host(sn_of(net, "east", 1), name="server")
        wire = []
        border_e.rx_tap = lambda frame, link: wire.append(frame)
        conn = client.connect(WellKnownService.IP_DELIVERY, dest_addr=server.address)
        client.send(conn, b"payload-bytes")
        net.run(1.0)
        inter_domain = [
            f for f in wire if isinstance(f, ILPPacket) and f.l3.src == border_w.address
        ]
        assert inter_domain
        blob = inter_domain[0].ilp_wire
        # Host addresses appear nowhere in the encrypted header bytes.
        assert client.address.encode() not in blob
        assert server.address.encode() not in blob

"""Integration: Figure 2's processing pipeline, end to end on one SN.

decrypt → decision-cache query → {hit: re-encrypt+forward | miss: service
module → install → forward}, with per-destination re-encryption.
"""

import pytest

from repro import WellKnownService
from repro.core.decision_cache import CacheKey


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


class TestFigure2Pipeline:
    def test_miss_hit_sequence(self, single_sn_net):
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        for _ in range(5):
            a.send(conn, b"x")
        net.run(1.0)
        stats = sn.terminus.stats
        assert stats.punts == 1  # first packet: miss -> service
        assert stats.fast_path == 4  # rest: cache hits
        assert sn.cache.stats.hits == 4
        assert sn.cache.stats.misses == 1
        assert len(b.delivered) == 5

    def test_cache_key_is_src_service_connection(self, single_sn_net):
        """Two connections between the same hosts get distinct entries."""
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn1 = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        conn2 = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        a.send(conn1, b"1")
        a.send(conn2, b"2")
        net.run(1.0)
        keys = sn.cache.keys()
        assert len(keys) == 2
        assert {k.connection_id for k in keys} == {
            conn1.connection_id,
            conn2.connection_id,
        }
        assert all(k.src == a.address for k in keys)

    def test_hit_counters_visible_to_service(self, single_sn_net):
        """§B.2: services can ask whether a connection is still active."""
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        for _ in range(3):
            a.send(conn, b"x")
        net.run(1.0)
        key = CacheKey(a.address, WellKnownService.IP_DELIVERY, conn.connection_id)
        assert sn.cache.hit_count(key) == 2
        assert sn.cache.recently_used(key, now=net.sim.now, window=10.0)

    def test_bidirectional_uses_separate_entries(self, single_sn_net):
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn_ab = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        conn_ba = b.connect(WellKnownService.IP_DELIVERY, dest_addr=a.address, allow_direct=False)
        a.send(conn_ab, b"->")
        b.send(conn_ba, b"<-")
        net.run(1.0)
        srcs = {k.src for k in sn.cache.keys()}
        assert srcs == {a.address, b.address}

    def test_processing_latency_shape(self, single_sn_net):
        """Slow-path packets take measurably longer than fast-path ones —
        the Table 1 structure, visible in simulated time."""
        net = single_sn_net
        sn = sn_of(net, "solo", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)

        a.send(conn, b"slow")  # punts
        net.run(1.0)
        t_first = net.sim.now  # includes the punt cost; measure arrivals instead
        arrivals = []
        b.rx_tap = lambda frame, link: arrivals.append(net.sim.now)
        base = net.sim.now
        a.send(conn, b"fast")
        net.run(1.0)
        fast_latency = arrivals[0] - base
        # Expected: 2 link hops (1 ms each) + terminus latency only.
        cost = sn.cost_model
        assert fast_latency == pytest.approx(0.002 + cost.terminus_latency, rel=0.05)

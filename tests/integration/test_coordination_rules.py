"""Integration: the §5 SN-coordination guidelines, end to end.

§5's "first thorny problem": different parties pay for different SN
associations, so which SN handles what? The paper's starting guideline:

    "the client's request for content would travel to its own first-hop SN
    (dictated by the enterprise's InterEdge configuration), then to the
    first-hop SN run by the IESP hired by the application provider. The
    return path would be the reverse, with the cached content going from
    the SN paid for by the application provider to the SN paid for by the
    enterprise and then to the client itself."

This test builds exactly that: an enterprise pass-through SN (paid by the
enterprise, applies to all traffic) in front of the application
provider's caching SN (paid by the app provider), and checks both the
forward and return paths traverse the right SNs in the right order.
"""

import pytest

from repro import WellKnownService
from repro.core.ilp import TLV
from repro.core.service_node import ServiceNode
from repro.services.caching import make_response, parse_request
from repro.services.firewall import ImposedFirewall, RuleSet


@pytest.fixture
def coordination_world(two_edomain_net):
    net = two_edomain_net
    west = net.edomains["west"]
    east = net.edomains["east"]
    app_sn = west.sns[west.sn_addresses()[1]]  # the app provider's IESP SN
    origin_sn = east.sns[east.sn_addresses()[1]]

    # The enterprise's own pass-through SN, applied to ALL client traffic.
    ent_sn = ServiceNode(net.sim, "ent-sn", "10.77.0.1", edomain_name="west")
    ent_sn.directory = net.directory
    net.directory.register(ent_sn.address, "west", via=app_sn.address)
    ent_sn.establish_pipe(app_sn, latency=0.001)
    ent_sn.configure_pass_through(
        next_hop=app_sn.address, chain=[ImposedFirewall(RuleSet())]
    )

    client = net.add_host(ent_sn, name="client", latency=0.0005)
    origin = net.add_host(origin_sn, name="origin")

    def serve(conn_id, header, payload):
        url = parse_request(payload.data)
        if url is None:
            return
        requester = header.get_str(TLV.SRC_HOST)
        conn = origin.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=requester,
            dest_sn=ent_sn.address,  # the client's SN of record
            allow_direct=False,
        )
        origin.adopt_connection(conn, conn_id)
        origin.send(conn, make_response(url, b"CONTENT"), first=False)

    origin.on_service_data(WellKnownService.CACHING_BUNDLE, serve)
    net.lookup.register_address(
        client.address, client.keypair, associated_sns=[ent_sn.address]
    )
    return net, client, origin, ent_sn, app_sn


class TestCoordinationRules:
    def test_forward_path_enterprise_then_app_sn(self, coordination_world):
        net, client, origin, ent_sn, app_sn = coordination_world
        conn = client.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=origin.address,
            allow_direct=False,
        )
        client.send(conn, b"GET /page")
        net.run(1.0)
        # Enterprise SN saw it first (pass-through), then the app SN.
        assert ent_sn.terminus.stats.packets_in >= 1
        assert app_sn.terminus.stats.packets_in >= 1
        module = app_sn.env.service(WellKnownService.CACHING_BUNDLE)
        assert module.requests == 1

    def test_return_path_reverses_through_both(self, coordination_world):
        net, client, origin, ent_sn, app_sn = coordination_world
        conn = client.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=origin.address,
            allow_direct=False,
        )
        client.send(conn, b"GET /page")
        net.run(1.0)
        responses = [
            p.data for _, p in client.delivered if p.data.startswith(b"DATA")
        ]
        assert responses and b"CONTENT" in responses[0]

    def test_cache_hit_at_app_sn_never_reaches_origin(self, coordination_world):
        net, client, origin, ent_sn, app_sn = coordination_world
        module = app_sn.env.service(WellKnownService.CACHING_BUNDLE)
        for _ in range(2):
            conn = client.connect(
                WellKnownService.CACHING_BUNDLE,
                dest_addr=origin.address,
                allow_direct=False,
            )
            client.send(conn, b"GET /page")
            net.run(1.0)
        assert module.origin_fetches == 1  # second request served at the edge
        responses = [
            p.data for _, p in client.delivered if p.data.startswith(b"DATA")
        ]
        assert len(responses) == 2

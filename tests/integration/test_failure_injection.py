"""Integration: failure injection — loss, link failure, SN restart.

§3.3 resilience, exercised end to end: lossy pipes (PSP tolerates
arbitrary loss/reorder), link failures mid-connection with recovery, bulk
transfer over a lossy path with receiver-driven repair, and queue-state
survival across an SN restart via checkpoint/restore.
"""

import pytest

from repro import WellKnownService
from repro.netsim import Link
from repro.services.bulk import BulkReceiver, offer_object
from repro.services.msgqueue import produce, subscribe


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestLossTolerance:
    def test_delivery_continues_under_loss(self, two_edomain_net):
        """Loss drops packets but never wedges the datapath or crypto."""
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        # Make b's access pipe lossy (seeded for reproducibility).
        b.links[0].set_loss(0.3, seed=11)
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        for i in range(100):
            a.send(conn, f"{i}".encode())
        net.run(2.0)
        got = payloads(b)
        assert 40 < len(got) < 100  # loss happened, delivery continued
        # Whatever arrived decrypted fine (no auth failures from loss).
        assert b.undeliverable == 0

    def test_bulk_transfer_repairs_losses(self, two_edomain_net):
        """Receiver-driven re-requests complete a transfer over loss."""
        net = two_edomain_net
        publisher_sn = sn_of(net, "west", 0)
        publisher = net.add_host(publisher_sn, name="publisher")
        receiver = net.add_host(sn_of(net, "east", 0), name="receiver")
        receiver.links[0].set_loss(0.25, seed=3)
        data = bytes(range(256)) * 16  # 4 chunks
        offer_object(publisher, "big", data)
        net.run(1.0)
        fetch = BulkReceiver(
            host=receiver, object_name="big", origin_sn=publisher_sn.address
        )
        fetch.install()
        fetch.start()
        net.run(2.0)
        # Repair until complete (bounded rounds).
        for _ in range(20):
            if fetch.complete:
                break
            fetch.rerequest_missing()
            if fetch.manifest is None:
                fetch.start()
            net.run(2.0)
        assert fetch.complete
        assert fetch.data == data


class TestLinkFailure:
    def test_direct_pipe_failure_falls_back_to_border(self, two_edomain_net):
        """When an on-demand direct pipe dies, traffic re-relays (§3.2)."""
        net = two_edomain_net
        inner_w = sn_of(net, "west", 1)
        inner_e = sn_of(net, "east", 1)
        net.establish_direct(inner_w, inner_e)
        a = net.add_host(inner_w, name="a")
        b = net.add_host(inner_e, name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY,
            dest_addr=b.address,
            dest_sn=inner_e.address,
            allow_direct=False,
        )
        a.send(conn, b"via-direct")
        net.run(1.0)
        assert payloads(b) == [b"via-direct"]

        # The direct pipe fails: tear down the association + link.
        direct_link = inner_w.link_to(inner_e)
        direct_link.set_down()
        inner_w.teardown_pipe(inner_e.address)
        # Flush stale fast-path state (eviction is always safe, §B).
        inner_w.cache.evict_random_fraction(1.0)

        a.send(conn, b"after-failure")
        net.run(1.0)
        assert payloads(b) == [b"via-direct", b"after-failure"]
        # The border SN carried the rerouted packet.
        border_w = net.edomains["west"].border_sn
        assert border_w.terminus.stats.packets_in >= 1


class TestBorderFailover:
    def test_border_crash_fails_over_within_two_seconds(self, two_edomain_net):
        """Keepalive timeout detects a dead border SN and an alternate is
        promoted federation-wide; endpoints see no errors after repair."""
        net = two_edomain_net
        coordinator = net.enable_resilience(interval=0.25)
        west = net.edomains["west"]
        border = west.border_sn
        alternate = sn_of(net, "west", 1)
        a = net.add_host(alternate, name="a")  # attached off the dying border
        b = net.add_host(sn_of(net, "east", 1), name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"before")
        net.run(1.0)
        assert payloads(b) == [b"before"]

        crash_at = net.sim.now
        border.crash()
        net.run(3.0)
        failovers = coordinator.failovers()
        assert len(failovers) == 1
        assert failovers[0]["alternate"] == alternate.address
        assert failovers[0]["at"] - crash_at <= 2.0  # detection + repair SLO
        assert west.border_address == alternate.address

        # In-flight connection keeps working without endpoint changes.
        a.send(conn, b"after")
        net.run(1.0)
        assert payloads(b) == [b"before", b"after"]
        assert a.undeliverable == 0 and b.undeliverable == 0

        # Recovery: the old border rejoins as a regular SN.
        border.restart()
        net.run(3.0)
        assert any(entry["kind"] == "peer-recovered" for entry in coordinator.log)
        from repro.core.monitoring import FederationMonitor

        report = FederationMonitor(net).collect()
        assert report.dead_pipes == 0 and report.crashed_sns == 0
        net.disable_resilience()


class TestSNRestart:
    def test_queue_state_survives_restart(self, two_edomain_net):
        """Checkpoint → crash → restore: consumers keep their cursors."""
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        consumer = net.add_host(sn_of(net, "east", 0), name="consumer")
        subscribe(consumer, "orders")
        net.run(1.0)
        produce(producer, "orders", b"order-1")
        net.run(1.0)
        assert payloads(consumer) == [b"order-1"]

        from repro.services.msgqueue import queue_home

        home = net.sn_at(
            queue_home("orders", sorted(net.lookup.service_nodes("msgqueue")))
        )
        module = home.env.service(WellKnownService.MSG_QUEUE)
        home.env.checkpoint_all()
        # "Crash": wipe in-memory state, then restore from checkpoints.
        module.queues = {}
        home.env.restore_all()
        assert module.queues["orders"].log == [b"order-1"]
        assert module.queues["orders"].cursors[consumer.address] == 1

        produce(producer, "orders", b"order-2")
        net.run(1.0)
        # No duplicate of order-1; delivery resumes where it left off.
        assert payloads(consumer) == [b"order-1", b"order-2"]

    def test_pubsub_retention_fails_over_to_standby(self, two_edomain_net):
        net = two_edomain_net
        primary = sn_of(net, "west", 0)
        standby = sn_of(net, "west", 1)
        pub = net.add_host(primary, name="pub")
        from tests.conftest import open_group
        from repro.services.multipoint import publish, register_sender, request_replay, join_group

        open_group(net, pub, "audit")
        register_sender(pub, WellKnownService.PUBSUB, "audit")
        net.run(1.0)
        publish(pub, WellKnownService.PUBSUB, "audit", b"critical-event")
        net.run(1.0)
        primary.failover_to(standby)
        # A subscriber on the standby replays the retained history.
        late = net.add_host(standby, name="late")
        join_group(late, WellKnownService.PUBSUB, "audit")
        request_replay(late, WellKnownService.PUBSUB, "audit")
        net.run(1.0)
        assert payloads(late) == [b"critical-event"]

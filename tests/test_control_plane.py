"""Unit tests for the control plane: core store, lookup, membership, naming."""

import pytest

from repro.control.core_store import CoreStore
from repro.control.lookup import GlobalLookupService, LookupError_
from repro.control.membership import (
    EdomainMembershipCore,
    SNMembershipAgent,
    make_join_grant,
)
from repro.control.naming import NameService, NamingError
from repro.core.crypto import KeyPair


class TestCoreStore:
    def test_set_membership(self):
        store = CoreStore()
        assert store.add("g/members", "sn1") is True
        assert store.add("g/members", "sn1") is False
        assert store.members("g/members") == {"sn1"}
        assert store.remove("g/members", "sn1") is True
        assert store.remove("g/members", "sn1") is False

    def test_scalar_values(self):
        store = CoreStore()
        store.put("config/x", 42)
        assert store.get("config/x") == 42
        assert store.get("missing", "default") == "default"

    def test_watch_notifies(self):
        store = CoreStore()
        events = []
        store.watch("k", lambda key, op, value: events.append((op, value)))
        store.add("k", "a")
        store.remove("k", "a")
        store.put("k", 1)
        assert events == [("add", "a"), ("remove", "a"), ("set", 1)]

    def test_unwatch(self):
        store = CoreStore()
        events = []
        token = store.watch("k", lambda *args: events.append(args))
        assert store.unwatch("k", token) is True
        assert store.unwatch("k", token) is False
        store.add("k", "a")
        assert events == []

    def test_keys_prefix(self):
        store = CoreStore()
        store.add("groups/a/members", "x")
        store.add("groups/b/members", "x")
        store.put("other", 1)
        assert store.keys("groups/") == ["groups/a/members", "groups/b/members"]

    def test_wal_recovery(self):
        store = CoreStore("dom")
        store.add("g", "a")
        store.add("g", "b")
        store.remove("g", "a")
        store.put("v", 9)
        rebuilt = store.rebuild_from_wal()
        assert rebuilt.members("g") == {"b"}
        assert rebuilt.get("v") == 9


class TestLookup:
    def test_address_records(self):
        lookup = GlobalLookupService()
        owner = KeyPair.generate()
        lookup.register_address("1.2.3.4", owner, associated_sns=["10.0.0.1"])
        record = lookup.address_record("1.2.3.4")
        assert record.owner_public == owner.public
        assert record.associated_sns == ["10.0.0.1"]
        assert lookup.address_record("9.9.9.9") is None

    def test_open_group_statement_verifies(self):
        lookup = GlobalLookupService()
        owner = KeyPair.generate()
        lookup.register_group("g", owner)
        lookup.post_open_group("g", owner)
        assert lookup.open_group_statement("g") is not None
        assert lookup.open_group_statement("other") is None

    def test_post_open_group_requires_ownership(self):
        lookup = GlobalLookupService()
        owner, imposter = KeyPair.generate(), KeyPair.generate()
        lookup.register_group("g", owner)
        with pytest.raises(LookupError_):
            lookup.post_open_group("g", imposter)

    def test_validate_join_open_group(self):
        lookup = GlobalLookupService()
        owner = KeyPair.generate()
        lookup.register_group("g", owner)
        lookup.post_open_group("g", owner)
        assert lookup.validate_join("g", b"anyone", b"")

    def test_validate_join_with_grant(self):
        lookup = GlobalLookupService()
        owner, member = KeyPair.generate(), KeyPair.generate()
        lookup.register_group("g", owner)
        grant = make_join_grant(owner, "g", member.public)
        assert lookup.validate_join("g", member.public, grant)
        assert not lookup.validate_join("g", member.public, b"forged")
        assert not lookup.validate_join("g", KeyPair.generate().public, grant)

    def test_join_unknown_group_denied(self):
        assert not GlobalLookupService().validate_join("ghost", b"x", b"")

    def test_group_edomain_tracking_and_watch(self):
        lookup = GlobalLookupService()
        events = []
        watcher = lambda g, op, e: events.append((op, e))  # noqa: E731
        lookup.watch_group("g", watcher)
        assert lookup.add_group_edomain("g", "west") is True
        assert lookup.add_group_edomain("g", "west") is False
        assert lookup.group_edomains("g") == {"west"}
        lookup.remove_group_edomain("g", "west")
        assert events == [("add", "west"), ("remove", "west")]
        # Teardown: an unwatched callback sees no further updates.
        assert lookup.unwatch_group("g", watcher) is True
        assert lookup.unwatch_group("g", watcher) is False
        lookup.add_group_edomain("g", "east")
        assert events == [("add", "west"), ("remove", "west")]

    def test_service_directory(self):
        lookup = GlobalLookupService()
        lookup.register_service_node("msgqueue", "10.0.0.1")
        lookup.register_service_node("msgqueue", "10.0.0.2")
        assert lookup.service_nodes("msgqueue") == {"10.0.0.1", "10.0.0.2"}
        lookup.deregister_service_node("msgqueue", "10.0.0.1")
        assert lookup.service_nodes("msgqueue") == {"10.0.0.2"}


def _world():
    """Two edomains, two SNs each, open group 'g'."""
    lookup = GlobalLookupService()
    owner = KeyPair.generate()
    lookup.register_group("g", owner)
    lookup.post_open_group("g", owner)
    cores = {
        name: EdomainMembershipCore(name, CoreStore(name), lookup)
        for name in ("west", "east")
    }
    agents = {
        "w0": SNMembershipAgent("10.0.0.1", cores["west"], lookup),
        "w1": SNMembershipAgent("10.0.0.2", cores["west"], lookup),
        "e0": SNMembershipAgent("10.0.1.1", cores["east"], lookup),
    }
    for host in ("192.168.0.1", "192.168.0.2", "192.168.1.1"):
        lookup.register_address(host, KeyPair.generate())
    return lookup, cores, agents


class TestMembershipProtocol:
    def test_join_propagates_sn_core_lookup(self):
        lookup, cores, agents = _world()
        assert agents["w0"].join("g", "192.168.0.1")
        # SN knows its host's membership (§6.2 knowledge requirements).
        assert agents["w0"].is_member("g", "192.168.0.1")
        assert agents["w0"].host_groups("192.168.0.1") == {"g"}
        # Core knows which SNs have members.
        assert cores["west"].member_sns("g") == {"10.0.0.1"}
        # Lookup knows which edomains have members.
        assert lookup.group_edomains("g") == {"west"}

    def test_second_join_same_sn_no_duplicate_propagation(self):
        lookup, cores, agents = _world()
        agents["w0"].join("g", "192.168.0.1")
        updates_before = lookup.updates
        agents["w0"].join("g", "192.168.0.2")
        assert lookup.updates == updates_before  # edomain already registered

    def test_leave_unwinds_state(self):
        lookup, cores, agents = _world()
        agents["w0"].join("g", "192.168.0.1")
        assert agents["w0"].leave("g", "192.168.0.1")
        assert cores["west"].member_sns("g") == set()
        assert lookup.group_edomains("g") == set()

    def test_leave_not_member(self):
        _, _, agents = _world()
        assert agents["w0"].leave("g", "192.168.0.1") is False

    def test_unauthorized_join_rejected(self):
        lookup, cores, agents = _world()
        owner = KeyPair.generate()
        lookup.register_group("closed", owner)  # not open, no grant
        assert not agents["w0"].join("closed", "192.168.0.1")
        assert agents["w0"].joins_rejected == 1

    def test_grant_join_closed_group(self):
        lookup, cores, agents = _world()
        owner = KeyPair.generate()
        lookup.register_group("closed", owner)
        member_key = lookup.address_record("192.168.0.1").owner_public
        grant = make_join_grant(owner, "closed", member_key)
        assert agents["w0"].join("closed", "192.168.0.1", grant)

    def test_sender_view_tracks_member_sns_live(self):
        lookup, cores, agents = _world()
        agents["w1"].join("g", "192.168.0.2")
        view = agents["w0"].register_sender("g", "192.168.0.1")
        assert view.local_member_sns == {"10.0.0.2"}
        # A later join updates the watching sender's view.
        agents["w0"].join("g", "192.168.0.1")
        assert agents["w0"].member_sns_in_edomain("g") == {"10.0.0.1", "10.0.0.2"}

    def test_sender_learns_remote_edomains_live(self):
        lookup, cores, agents = _world()
        agents["w0"].register_sender("g", "192.168.0.1")
        assert agents["w0"].member_edomains("g") == set()
        agents["e0"].join("g", "192.168.1.1")
        assert agents["w0"].member_edomains("g") == {"east"}
        agents["e0"].leave("g", "192.168.1.1")
        assert agents["w0"].member_edomains("g") == set()

    def test_own_edomain_excluded_from_remote_view(self):
        lookup, cores, agents = _world()
        agents["w1"].join("g", "192.168.0.2")
        agents["w0"].register_sender("g", "192.168.0.1")
        assert agents["w0"].member_edomains("g") == set()

    def test_sender_registration_required_flag(self):
        _, _, agents = _world()
        assert not agents["w0"].is_sender("g", "192.168.0.1")
        agents["w0"].register_sender("g", "192.168.0.1")
        assert agents["w0"].is_sender("g", "192.168.0.1")
        agents["w0"].unregister_sender("g", "192.168.0.1")
        assert not agents["w0"].is_sender("g", "192.168.0.1")

    def test_state_sizes_reported(self):
        lookup, cores, agents = _world()
        agents["w0"].join("g", "192.168.0.1")
        agents["w0"].register_sender("g", "192.168.0.1")
        assert agents["w0"].state_size()["groups_with_local_members"] == 1
        assert cores["west"].state_size()["member_entries"] == 1
        assert lookup.state_size()["group_edomain_entries"] == 1


class TestNaming:
    def test_resolve_registered_name(self):
        lookup = GlobalLookupService()
        owner = KeyPair.generate()
        lookup.register_address("1.2.3.4", owner, associated_sns=["10.0.0.1"])
        names = NameService(lookup)
        names.register_name("origin.example", "1.2.3.4")
        res = names.resolve("origin.example")
        assert res.address == "1.2.3.4"
        assert res.primary_sn == "10.0.0.1"

    def test_resolve_raw_address(self):
        lookup = GlobalLookupService()
        lookup.register_address("1.2.3.4", KeyPair.generate(), associated_sns=["10.0.0.1"])
        names = NameService(lookup)
        assert names.resolve("1.2.3.4").address == "1.2.3.4"

    def test_unknown_name_raises(self):
        names = NameService(GlobalLookupService())
        with pytest.raises(NamingError):
            names.resolve("nope")

    def test_no_record_raises(self):
        names = NameService(GlobalLookupService())
        names.register_name("x", "9.9.9.9")
        with pytest.raises(NamingError):
            names.resolve("x")

    def test_no_associated_sn(self):
        lookup = GlobalLookupService()
        lookup.register_address("1.2.3.4", KeyPair.generate())
        names = NameService(lookup)
        res = names.resolve("1.2.3.4")
        with pytest.raises(NamingError):
            _ = res.primary_sn

    def test_deregister(self):
        lookup = GlobalLookupService()
        lookup.register_address("1.2.3.4", KeyPair.generate(), associated_sns=["s"])
        names = NameService(lookup)
        names.register_name("x", "1.2.3.4")
        assert names.deregister_name("x") is True
        assert names.deregister_name("x") is False

"""Unit: the deterministic fault-injection harness and failure detector.

Covers the three resilience primitives in isolation:

* :class:`FaultPlan` — same seed ⇒ identical event schedules; validation.
* :class:`FaultInjector` — replay over a tiny topology is bit-deterministic
  (identical traces/digests) and drives the per-link drop counters
  (``frames_dropped_down`` / ``frames_dropped_loss``).
* :class:`FailureDetector` — the up → suspect → dead → recovered walk.
"""

import pytest

from repro.core.resilience import FailureDetector, PeerState, ResilienceError
from repro.netsim import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    Link,
    SinkNode,
    Simulator,
    link_name,
)


def make_plan(seed):
    return (
        FaultPlan(seed=seed)
        .link_flap("a<->b", at=1.0, period=0.5, count=3, jitter=0.1)
        .loss_ramp("a<->b", at=3.0, peak=0.4, duration=1.0)
        .crash("b", at=5.0, restart_after=1.0)
        .partition(["a"], ["b"], at=7.0, duration=0.5)
    )


class TestFaultPlan:
    def test_same_seed_same_events(self):
        assert make_plan(7) == make_plan(7)
        assert make_plan(7).events == make_plan(7).events

    def test_different_seed_different_jitter(self):
        # Jittered flap times are drawn from the seed, so they must differ.
        assert make_plan(7) != make_plan(8)

    def test_link_name_is_canonical(self):
        assert link_name("sn-b", "sn-a") == link_name("sn-a", "sn-b")
        assert link_name("x", "y") == "x<->y"

    def test_sorted_events_breaks_ties_by_insertion(self):
        plan = (
            FaultPlan()
            .add(1.0, "link_down", "l1")
            .add(0.5, "link_down", "l2")
            .add(1.0, "link_up", "l1")
        )
        ordered = plan.sorted_events()
        assert [e.target for e in ordered] == ["l2", "l1", "l1"]
        assert [e.kind for e in ordered] == ["link_down", "link_down", "link_up"]

    def test_durations_expand_to_paired_events(self):
        plan = FaultPlan().link_down("l", at=1.0, duration=2.0)
        assert plan.events == [
            FaultEvent(1.0, "link_down", "l"),
            FaultEvent(3.0, "link_up", "l"),
        ]
        plan = FaultPlan().crash("n", at=1.0, restart_after=0.5)
        assert [e.kind for e in plan.events] == ["crash", "restart"]

    def test_set_loss_with_seed_reseeds_first(self):
        plan = FaultPlan().set_loss("l", at=0.0, rate=0.2, seed=9)
        assert [e.kind for e in plan.events] == ["reseed", "loss_rate"]

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultPlan().add(-0.1, "link_down", "l")
        with pytest.raises(FaultError):
            FaultPlan().add(0.0, "meteor_strike", "l")
        with pytest.raises(FaultError):
            FaultPlan().link_flap("l", at=0.0, period=0.0, count=1)
        with pytest.raises(FaultError):
            FaultPlan().link_flap("l", at=0.0, period=1.0, count=1, duty=1.0)
        with pytest.raises(FaultError):
            FaultPlan().loss_ramp("l", at=0.0, peak=1.5, duration=1.0)
        with pytest.raises(FaultError):
            FaultPlan().delay_spike("l", at=0.0, extra=0.0, duration=1.0)


class _Topo:
    """Two sinks joined by one link, with a scheduled frame pump."""

    def __init__(self):
        self.sim = Simulator()
        self.a = SinkNode(self.sim, "a")
        self.b = SinkNode(self.sim, "b")
        self.link = Link(self.sim, self.a, self.b, latency=0.001)

    def pump(self, times):
        for t in times:
            self.sim.schedule_at(t, self.a.send_frame, b"x" * 64, self.b)


class TestFaultInjectorReplay:
    def test_flap_and_loss_drive_drop_counters(self):
        topo = _Topo()
        plan = (
            FaultPlan(seed=1)
            .link_flap("a<->b", at=1.0, period=1.0, count=2)  # down [1,1.5),[2,2.5)
            .set_loss("a<->b", at=3.0, rate=1.0, seed=4)
        )
        injector = FaultInjector(topo.sim, plan)
        injector.register_link("a<->b", topo.link)
        injector.arm()
        # Two frames into down windows, one into an up window, two into
        # certain loss.
        topo.pump([1.25, 1.75, 2.25, 3.1, 3.2])
        topo.sim.run(until=5.0)
        stats = topo.link.stats[topo.a]
        assert stats.frames_dropped_down == 2
        assert stats.frames_dropped_loss == 2
        assert stats.frames_delivered == 1
        assert topo.link.down_transitions == 2
        assert topo.link.up

    def test_replay_is_bit_deterministic(self):
        def run():
            topo = _Topo()
            plan = make_plan(7)
            injector = FaultInjector(topo.sim, plan)
            injector.register_link("a<->b", topo.link)
            injector.register_node("b", topo.b)
            injector.arm()
            topo.pump([t * 0.25 for t in range(40)])
            topo.sim.run(until=10.0)
            stats = topo.link.stats[topo.a]
            return injector.trace_digest(), (
                stats.frames_delivered,
                stats.frames_dropped_down,
                stats.frames_dropped_loss,
            )

        digest_1, counters_1 = run()
        digest_2, counters_2 = run()
        assert digest_1 == digest_2
        assert counters_1 == counters_2
        # The trace is the plan, replayed in order.
        topo = _Topo()
        injector = FaultInjector(topo.sim, make_plan(7))
        injector.register_link("a<->b", topo.link)
        injector.register_node("b", topo.b)
        injector.arm()
        topo.sim.run(until=10.0)
        assert [(k, t) for _, k, t, _ in injector.trace] == [
            (e.kind, e.target) for e in make_plan(7).sorted_events()
        ]

    def test_crash_and_restart_toggle_node_and_links(self):
        topo = _Topo()
        plan = FaultPlan().crash("b", at=1.0, restart_after=1.0)
        injector = FaultInjector(topo.sim, plan)
        injector.register_node("b", topo.b)
        injector.arm()
        topo.sim.run(until=1.5)
        assert topo.b.failed and not topo.link.up
        topo.sim.run(until=2.5)
        assert not topo.b.failed and topo.link.up

    def test_partition_downs_only_straddling_links(self):
        sim = Simulator()
        a, b, c = (SinkNode(sim, n) for n in "abc")
        ab = Link(sim, a, b)
        bc = Link(sim, b, c)
        plan = FaultPlan().partition(["a"], ["b", "c"], at=1.0, duration=1.0)
        injector = FaultInjector(sim, plan)
        injector.register_link(link_name(a, b), ab)
        injector.register_link(link_name(b, c), bc)
        injector.arm()
        sim.run(until=1.5)
        assert not ab.up and bc.up
        sim.run(until=2.5)
        assert ab.up and bc.up

    def test_delay_spike_raises_then_restores_latency(self):
        topo = _Topo()
        base = topo.link.latency
        plan = FaultPlan().delay_spike("a<->b", at=1.0, extra=0.2, duration=1.0)
        injector = FaultInjector(topo.sim, plan)
        injector.register_link("a<->b", topo.link)
        injector.arm()
        topo.sim.run(until=1.5)
        assert topo.link.latency == pytest.approx(base + 0.2)
        topo.sim.run(until=2.5)
        assert topo.link.latency == pytest.approx(base)

    def test_unknown_target_raises(self):
        topo = _Topo()
        injector = FaultInjector(topo.sim, FaultPlan().link_down("ghost", at=0.5))
        injector.arm()
        with pytest.raises(FaultError):
            topo.sim.run(until=1.0)

    def test_double_arm_rejected(self):
        topo = _Topo()
        injector = FaultInjector(topo.sim, FaultPlan())
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()


class TestFailureDetector:
    def test_full_lifecycle_up_suspect_dead_recovered(self):
        fd = FailureDetector(expected_interval=1.0)
        for t in (0.0, 1.0, 2.0):
            fd.heard(t)
        assert fd.evaluate(3.0) is PeerState.UP
        # Silence grows: suspect at 3× the mean interval, dead at 6×.
        assert fd.evaluate(5.5) is PeerState.SUSPECT
        assert fd.evaluate(9.0) is PeerState.DEAD
        assert fd.phi(9.0) >= fd.dead_multiple
        # Hearing the peer again snaps back to UP and counts the recovery.
        assert fd.heard(9.5) is PeerState.DEAD
        assert fd.state is PeerState.UP
        assert fd.recoveries == 1
        assert [state for _, state in fd.transitions] == [
            PeerState.SUSPECT,
            PeerState.DEAD,
            PeerState.UP,
        ]

    def test_evaluate_never_deescalates(self):
        fd = FailureDetector(expected_interval=1.0)
        fd.heard(0.0)
        assert fd.evaluate(4.0) is PeerState.SUSPECT
        # A later evaluate with (impossibly) lower phi cannot walk back.
        assert fd.evaluate(4.0) is PeerState.SUSPECT

    def test_outage_samples_are_clamped(self):
        fd = FailureDetector(expected_interval=1.0)
        fd.heard(0.0)
        fd.heard(100.0)  # one huge gap must not blunt the next detection
        assert fd.mean_interval <= 4.0
        fd.heard(101.0)
        assert fd.evaluate(101.0 + 6.5 * fd.mean_interval) is PeerState.DEAD

    def test_mean_is_floored_against_bursts(self):
        fd = FailureDetector(expected_interval=1.0)
        for t in (0.0, 0.01, 0.02, 0.03, 0.04):
            fd.heard(t)
        assert fd.mean_interval >= 0.5

    def test_reset_restores_fresh_up_state(self):
        fd = FailureDetector(expected_interval=1.0)
        fd.heard(0.0)
        fd.evaluate(10.0)
        assert fd.state is PeerState.DEAD
        fd.reset(10.0)
        assert fd.state is PeerState.UP
        assert fd.mean_interval == 1.0
        assert fd.phi(10.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            FailureDetector(expected_interval=0.0)
        with pytest.raises(ResilienceError):
            FailureDetector(expected_interval=1.0, suspect_multiple=6.0, dead_multiple=3.0)

"""Tests for specialty services: msgqueue, bulk, time-ordered, attestation, QoS."""

import pytest

from repro import WellKnownService
from repro.core.attestation import AttestationVerifier
from repro.core.ilp import TLV
from repro.services.attest import AttestationClient
from repro.services.bulk import BulkReceiver, offer_object
from repro.services.msgqueue import OP_DELIVER, ack, produce, queue_home, subscribe
from repro.services.qos import QoSSpec, StreamClass, clear_qos, request_qos
from repro.services.timesync import GPSClock


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestQueueHome:
    def test_rendezvous_deterministic(self):
        sns = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        assert queue_home("orders", sns) == queue_home("orders", list(reversed(sns)))

    def test_distributes_queues(self):
        sns = [f"10.0.0.{i}" for i in range(1, 11)]
        homes = {queue_home(f"q{i}", sns) for i in range(100)}
        assert len(homes) > 3  # spread across several SNs

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            queue_home("q", [])


class TestMessageQueue:
    def test_produce_subscribe_deliver(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        consumer = net.add_host(sn_of(net, "east", 0), name="consumer")
        subscribe(consumer, "orders")
        net.run(1.0)
        produce(producer, "orders", b"order-1")
        produce(producer, "orders", b"order-2")
        net.run(1.0)
        assert payloads(consumer) == [b"order-1", b"order-2"]

    def test_subscriber_catches_up_on_backlog(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 1), name="producer")
        produce(producer, "logs", b"old-1")
        produce(producer, "logs", b"old-2")
        net.run(1.0)
        late = net.add_host(sn_of(net, "east", 1), name="late")
        subscribe(late, "logs")
        net.run(1.0)
        assert payloads(late) == [b"old-1", b"old-2"]

    def test_offsets_carried_in_deliveries(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        consumer = net.add_host(sn_of(net, "west", 0), name="consumer")
        subscribe(consumer, "q")
        net.run(1.0)
        for i in range(3):
            produce(producer, "q", f"m{i}".encode())
        net.run(1.0)
        offsets = [
            h.get_u64(TLV.SEQUENCE)
            for h, p in consumer.delivered
            if h.tlvs.get(TLV.SERVICE_OPTS) == OP_DELIVER
        ]
        assert offsets == [0, 1, 2]

    def test_ack_clears_unacked_and_redelivery(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        consumer = net.add_host(sn_of(net, "east", 0), name="consumer")
        subscribe(consumer, "jobs")
        net.run(1.0)
        produce(producer, "jobs", b"job-0")
        produce(producer, "jobs", b"job-1")
        net.run(1.0)
        # Find the home SN and its module.
        home_addr = queue_home("jobs", sorted(net.lookup.service_nodes("msgqueue")))
        module = net.sn_at(home_addr).env.service(WellKnownService.MSG_QUEUE)
        assert module.queues["jobs"].unacked[consumer.address] == {0, 1}
        ack(consumer, "jobs", 0)
        net.run(1.0)
        assert module.queues["jobs"].unacked[consumer.address] == {1}
        # Redelivery resends only the unacked message.
        count = module.redeliver_unacked("jobs")
        net.run(1.0)
        assert count == 1
        assert payloads(consumer).count(b"job-1") == 2

    def test_multiple_consumers_independent_cursors(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        c1 = net.add_host(sn_of(net, "west", 1), name="c1")
        c2 = net.add_host(sn_of(net, "east", 0), name="c2")
        subscribe(c1, "fan")
        net.run(1.0)
        produce(producer, "fan", b"first")
        net.run(1.0)
        subscribe(c2, "fan")  # late subscriber still gets backlog
        net.run(1.0)
        produce(producer, "fan", b"second")
        net.run(1.0)
        assert payloads(c1) == [b"first", b"second"]
        assert payloads(c2) == [b"first", b"second"]

    def test_checkpoint_restore(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        produce(producer, "persist", b"msg")
        net.run(1.0)
        home_addr = queue_home(
            "persist", sorted(net.lookup.service_nodes("msgqueue"))
        )
        module = net.sn_at(home_addr).env.service(WellKnownService.MSG_QUEUE)
        state = module.checkpoint()
        fresh = type(module)()
        fresh.restore(state)
        assert fresh.queues["persist"].log == [b"msg"]


class TestBulkDelivery:
    def test_offer_fetch_complete(self, two_edomain_net):
        net = two_edomain_net
        publisher_sn = sn_of(net, "west", 0)
        publisher = net.add_host(publisher_sn, name="publisher")
        receiver = net.add_host(sn_of(net, "east", 0), name="receiver")
        data = bytes(range(256)) * 20  # 5120 B -> 5 chunks @ 1024
        offer_object(publisher, "dataset-1", data)
        net.run(1.0)
        fetch = BulkReceiver(
            host=receiver, object_name="dataset-1", origin_sn=publisher_sn.address
        )
        fetch.install()
        fetch.start()
        net.run(2.0)
        assert fetch.complete
        assert fetch.data == data
        assert fetch.manifest.n_chunks == 5

    def test_second_receiver_hits_edge_chunk_store(self, two_edomain_net):
        net = two_edomain_net
        publisher_sn = sn_of(net, "west", 0)
        receiver_sn = sn_of(net, "east", 0)
        publisher = net.add_host(publisher_sn, name="publisher")
        r1 = net.add_host(receiver_sn, name="r1")
        r2 = net.add_host(receiver_sn, name="r2")
        data = b"z" * 3000
        offer_object(publisher, "obj", data)
        net.run(1.0)
        for receiver in (r1, r2):
            fetch = BulkReceiver(
                host=receiver, object_name="obj", origin_sn=publisher_sn.address
            )
            fetch.install()
            fetch.start()
            net.run(2.0)
            assert fetch.complete
        # The receivers' local SN cached chunks in transit: its module
        # served the second fetch without chunk misses.
        edge_module = receiver_sn.env.service(WellKnownService.BULK_DELIVERY)
        assert edge_module.chunk_hits >= 3

    def test_rerequest_missing_chunks(self, two_edomain_net):
        net = two_edomain_net
        publisher_sn = sn_of(net, "west", 0)
        publisher = net.add_host(publisher_sn, name="publisher")
        receiver = net.add_host(sn_of(net, "east", 0), name="receiver")
        data = b"q" * 2500
        offer_object(publisher, "lossy", data)
        net.run(1.0)
        fetch = BulkReceiver(
            host=receiver, object_name="lossy", origin_sn=publisher_sn.address
        )
        fetch.install()
        fetch.start()
        net.run(2.0)
        # Simulate losing a chunk after the fact, then re-request.
        fetch.complete = False
        fetch.data = None
        del fetch.chunks[1]
        assert fetch.missing_chunks() == [1]
        assert fetch.rerequest_missing() == 1
        net.run(2.0)
        assert fetch.complete
        assert fetch.data == data

    def test_offer_only_from_local_publisher(self, two_edomain_net):
        net = two_edomain_net
        remote_sn = sn_of(net, "east", 0)
        publisher = net.add_host(sn_of(net, "west", 0), name="publisher")
        # Craft an offer aimed at a *remote* SN's module: it must refuse.
        conn = publisher.connect(
            WellKnownService.BULK_DELIVERY,
            dest_sn=remote_sn.address,
            dest_addr=remote_sn.address,
            allow_direct=False,
        )
        publisher.send(
            conn,
            b"data",
            extra_tlvs={TLV.TOPIC: b"evil", TLV.SERVICE_OPTS: b"offer"},
        )
        net.run(1.0)
        remote_module = remote_sn.env.service(WellKnownService.BULK_DELIVERY)
        assert "evil" not in remote_module.manifests


class TestTimeOrdered:
    def test_release_in_stamp_order(self, two_edomain_net):
        net = two_edomain_net
        sn_a = sn_of(net, "west", 0)
        sn_b = sn_of(net, "west", 1)
        dest_sn = sn_of(net, "east", 0)
        sender_a = net.add_host(sn_a, name="sa")
        sender_b = net.add_host(sn_b, name="sb")
        dest = net.add_host(dest_sn, name="dest")
        # Give the two sender SNs different (bounded) clock offsets.
        sn_a.env.service(WellKnownService.TIME_ORDERED).clock = GPSClock(offset=20e-6)
        sn_b.env.service(WellKnownService.TIME_ORDERED).clock = GPSClock(offset=-20e-6)

        conn_a = sender_a.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        conn_b = sender_b.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        # B sends first (true time), A slightly later.
        sender_b.send(conn_b, b"first")
        net.run(0.003)
        sender_a.send(conn_a, b"second")
        net.run(2.0)
        assert payloads(dest) == [b"first", b"second"]

    def test_reordering_corrected_by_buffer(self, two_edomain_net):
        """A message stamped earlier but arriving later is still delivered
        in stamp order, as long as it arrives within the release delay."""
        net = two_edomain_net
        dest_sn = sn_of(net, "east", 0)
        module = dest_sn.env.service(WellKnownService.TIME_ORDERED)
        module.release_delay = 0.1

        sn_near = sn_of(net, "east", 1)  # short path to dest_sn
        sn_far = sn_of(net, "west", 1)  # long path (through border)
        near = net.add_host(sn_near, name="near")
        far = net.add_host(sn_far, name="far")
        dest = net.add_host(dest_sn, name="dest")

        conn_far = far.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        conn_near = near.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        far.send(conn_far, b"stamped-early")  # long path: arrives later
        net.run(0.001)
        near.send(conn_near, b"stamped-late")  # short path: arrives first
        net.run(5.0)
        assert payloads(dest) == [b"stamped-early", b"stamped-late"]

    def test_clock_offset_bound_enforced(self):
        with pytest.raises(ValueError):
            GPSClock(error_bound=10e-6, offset=20e-6)

    def test_pending_counts(self, two_edomain_net):
        net = two_edomain_net
        dest_sn = sn_of(net, "east", 0)
        module = dest_sn.env.service(WellKnownService.TIME_ORDERED)
        module.release_delay = 10.0  # long buffer
        sender = net.add_host(sn_of(net, "west", 0), name="s")
        dest = net.add_host(dest_sn, name="d")
        conn = sender.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        sender.send(conn, b"held")
        net.run(1.0)
        assert module.pending(dest.address) == 1
        assert payloads(dest) == []
        net.run(15.0)
        assert payloads(dest) == [b"held"]


class TestAttestationService:
    def test_quote_verifies(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="client")
        net.lookup.registry.register(sn.env.tpm.keypair)
        client = AttestationClient(
            host=host, verifier=AttestationVerifier(net.lookup.registry)
        )
        client.install()
        client.challenge(b"fresh-nonce-123")
        net.run(1.0)
        assert client.results == [True]

    def test_stale_nonce_rejected(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="client")
        net.lookup.registry.register(sn.env.tpm.keypair)
        client = AttestationClient(
            host=host, verifier=AttestationVerifier(net.lookup.registry)
        )
        client.install()
        client.challenge(b"nonce-A")
        client.challenge_nonce = b"nonce-B"  # verifier expects something else
        net.run(1.0)
        assert client.results == [False]

    def test_unregistered_sn_fails_verification(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="client")
        client = AttestationClient(
            host=host, verifier=AttestationVerifier(net.lookup.registry)
        )
        client.install()
        client.challenge(b"n")
        net.run(1.0)
        assert client.results == [False]


class TestLastHopQoS:
    def _congested_world(self, net):
        """Two senders flood one receiver behind a shaped access link."""
        recv_sn = sn_of(net, "east", 0)
        gamer_src = net.add_host(sn_of(net, "west", 0), name="game-server")
        bulk_src = net.add_host(sn_of(net, "west", 1), name="cdn")
        receiver = net.add_host(recv_sn, name="household")
        return recv_sn, gamer_src, bulk_src, receiver

    def test_configure_installs_shaper(self, two_edomain_net):
        net = two_edomain_net
        recv_sn, gamer_src, _, receiver = self._congested_world(net)
        spec = QoSSpec(
            link_bps=8_000_000,
            classes=[
                StreamClass("gaming", f"{gamer_src.address}/32", priority=0),
            ],
        )
        request_qos(receiver, spec)
        net.run(1.0)
        module = recv_sn.env.service(WellKnownService.LAST_HOP_QOS)
        assert module.shaper_for(receiver.address) is not None
        clear_qos(receiver)
        net.run(1.0)
        assert module.shaper_for(receiver.address) is None

    def test_priority_traffic_wins_under_congestion(self, two_edomain_net):
        net = two_edomain_net
        recv_sn, gamer_src, bulk_src, receiver = self._congested_world(net)
        spec = QoSSpec(
            link_bps=1_000_000,  # 1 Mbps access link
            classes=[
                StreamClass("gaming", f"{gamer_src.address}/32", priority=0),
                StreamClass("streaming", f"{bulk_src.address}/32", priority=1),
            ],
        )
        request_qos(receiver, spec)
        net.run(1.0)
        game_conn = gamer_src.connect(
            WellKnownService.IP_DELIVERY, dest_addr=receiver.address, allow_direct=False
        )
        bulk_conn = bulk_src.connect(
            WellKnownService.IP_DELIVERY, dest_addr=receiver.address, allow_direct=False
        )
        # Flood with bulk, trickle gaming.
        for _ in range(40):
            bulk_src.send(bulk_conn, b"B" * 1000)
        for _ in range(5):
            gamer_src.send(game_conn, b"G" * 100)
        net.run(0.2)  # not enough time to drain everything at 1 Mbps
        got = payloads(receiver)
        gaming_got = sum(1 for d in got if d.startswith(b"G"))
        assert gaming_got == 5  # all gaming packets beat the backlog
        assert sum(1 for d in got if d.startswith(b"B")) < 40

    def test_weights_respected_within_priority(self, two_edomain_net):
        net = two_edomain_net
        recv_sn, src_a, src_b, receiver = self._congested_world(net)
        spec = QoSSpec(
            link_bps=800_000,
            classes=[
                StreamClass("a", f"{src_a.address}/32", priority=1, weight=3.0),
                StreamClass("b", f"{src_b.address}/32", priority=1, weight=1.0),
            ],
        )
        request_qos(receiver, spec)
        net.run(1.0)
        conn_a = src_a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=receiver.address, allow_direct=False
        )
        conn_b = src_b.connect(
            WellKnownService.IP_DELIVERY, dest_addr=receiver.address, allow_direct=False
        )
        for _ in range(100):
            src_a.send(conn_a, b"A" * 500)
            src_b.send(conn_b, b"B" * 500)
        net.run(0.25)  # drain roughly a quarter of the backlog
        shaper = recv_sn.env.service(
            WellKnownService.LAST_HOP_QOS
        ).shaper_for(receiver.address)
        served_a = shaper.bytes_delivered("a")
        served_b = shaper.bytes_delivered("b")
        assert served_a / max(1, served_b) == pytest.approx(3.0, rel=0.35)

"""Analysis-runtime budget: the whole-tree cold run must stay fast.

CI runs the full analysis (all per-module rules plus the whole-program
graph pass) in the lint job on every push; if it creeps past a few
seconds it will get skipped or resented. The budget is deliberately
generous — an order of magnitude above the current cost — so it only
trips on real regressions (accidentally quadratic resolution, cache
stampedes), not on CI jitter.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall-clock ceiling for one cold whole-tree run, in seconds.
COLD_RUN_BUDGET = 10.0


def test_cold_whole_tree_run_within_budget():
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
    start = time.perf_counter()
    analyze_paths(paths, root=REPO_ROOT)  # no cache: a true cold run
    elapsed = time.perf_counter() - start
    assert elapsed < COLD_RUN_BUDGET, (
        f"cold whole-tree analysis took {elapsed:.2f}s "
        f"(budget {COLD_RUN_BUDGET}s); profile the graph pass before "
        "raising the budget"
    )

"""Unit tests for the pipe-terminus fast/slow path (Figure 2)."""

from typing import Any

import pytest

from repro import sanitize
from repro.core.decision_cache import Action, CacheKey, Decision, DecisionCache, ForwardTarget
from repro.core.execution_env import ExecutionEnvironment
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.core.ipc import InvocationMode
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.pipe_terminus import PipeTerminus
from repro.core.psp import PSPContext, PeerKeyStore, pairwise_secret
from repro.core.service_module import Emit, ServiceModule, Verdict
from repro.netsim import Simulator
from repro.core.service_node import ServiceNode

SN_ADDR = "10.0.0.1"
PEER_A = "10.0.0.2"
PEER_B = "10.0.0.3"


class _RecordingService(ServiceModule):
    SERVICE_ID = 42
    NAME = "recording"

    def __init__(self, verdict_fn=None) -> None:
        super().__init__()
        self.seen: list[ILPHeader] = []
        self.control_seen: list[ILPHeader] = []
        self.verdict_fn = verdict_fn or (lambda h, p: Verdict.drop())

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        self.seen.append(header)
        return self.verdict_fn(header, packet)

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        self.control_seen.append(header)
        return Verdict.drop()


class _Fixture:
    def __init__(self, service=None):
        self.sim = Simulator()
        # A real ServiceNode supplies env wiring; we drive its terminus directly.
        self.node = ServiceNode(self.sim, "sn", SN_ADDR)
        self.terminus = self.node.terminus
        self.sent: list[tuple[str, ILPPacket]] = []
        self.terminus.set_transmit(
            lambda peer, pkt: (self.sent.append((peer, pkt)), True)[1]
        )
        self.peers = {}
        for peer in (PEER_A, PEER_B):
            secret = pairwise_secret(SN_ADDR, peer)
            self.node.keystore.establish(peer, secret)
            self.peers[peer] = PSPContext(secret)
        self.service = service or _RecordingService()
        self.node.env.load(self.service)

    def packet(self, peer=PEER_A, service_id=42, conn=7, flags=0, tlvs=None, data=b"d"):
        header = ILPHeader(service_id=service_id, connection_id=conn, flags=flags)
        if tlvs:
            header.tlvs.update(tlvs)
        wire = self.peers[peer].seal(header.encode())
        return ILPPacket(
            l3=L3Header(src=peer, dst=SN_ADDR),
            ilp_wire=wire,
            payload=make_payload(data),
        )


class TestIngressValidation:
    def test_unknown_peer_dropped(self):
        fx = _Fixture()
        pkt = fx.packet()
        pkt.l3 = L3Header(src="9.9.9.9", dst=SN_ADDR)
        fx.terminus.receive(pkt)
        assert fx.terminus.stats.drops_no_peer == 1
        assert fx.service.seen == []

    def test_bad_auth_dropped(self):
        fx = _Fixture()
        pkt = fx.packet()
        pkt.ilp_wire = pkt.ilp_wire[:-1] + bytes([pkt.ilp_wire[-1] ^ 1])
        fx.terminus.receive(pkt)
        assert fx.terminus.stats.drops_auth == 1

    def test_malformed_header_dropped(self):
        fx = _Fixture()
        ctx = fx.peers[PEER_A]
        pkt = ILPPacket(
            l3=L3Header(src=PEER_A, dst=SN_ADDR),
            ilp_wire=ctx.seal(b"\x01\x02"),  # too short for an ILP header
            payload=make_payload(b""),
        )
        fx.terminus.receive(pkt)
        assert fx.terminus.stats.drops_malformed == 1

    def test_unknown_service_dropped(self):
        fx = _Fixture()
        fx.terminus.receive(fx.packet(service_id=999))
        assert fx.terminus.stats.drops_no_service == 1


class TestSlowPath:
    def test_miss_punts_to_service(self):
        fx = _Fixture()
        fx.terminus.receive(fx.packet())
        assert len(fx.service.seen) == 1
        assert fx.terminus.stats.punts == 1

    def test_control_always_punts_to_control_handler(self):
        fx = _Fixture()
        # Install a cache entry that would match if this were a data packet.
        key = CacheKey(PEER_A, 42, 7)
        fx.terminus.cache.install(key, Decision.forward(PEER_B))
        fx.terminus.receive(fx.packet(flags=Flags.CONTROL))
        assert len(fx.service.control_seen) == 1
        assert fx.sent == []

    def test_verdict_installs_and_emits(self):
        def verdict(header, packet):
            v = Verdict.forward(PEER_B, header, packet.payload)
            v.installs.append(
                (CacheKey(PEER_A, 42, header.connection_id), Decision.forward(PEER_B))
            )
            return v

        fx = _Fixture(_RecordingService(verdict))
        fx.terminus.receive(fx.packet())
        assert len(fx.sent) == 1
        assert fx.sent[0][0] == PEER_B
        # Second packet: fast path, service not consulted again.
        fx.terminus.receive(fx.packet())
        assert len(fx.service.seen) == 1
        assert fx.terminus.stats.fast_path == 1


class TestFastPath:
    def test_hit_forwards_without_service(self):
        fx = _Fixture()
        fx.terminus.cache.install(CacheKey(PEER_A, 42, 7), Decision.forward(PEER_B))
        fx.terminus.receive(fx.packet())
        assert fx.service.seen == []
        assert len(fx.sent) == 1

    def test_multi_destination_fanout(self):
        """Figure 2: a decision can specify multiple destinations."""
        fx = _Fixture()
        fx.terminus.cache.install(
            CacheKey(PEER_A, 42, 7), Decision.forward(PEER_A, PEER_B)
        )
        fx.terminus.receive(fx.packet())
        assert sorted(peer for peer, _ in fx.sent) == [PEER_A, PEER_B]

    def test_drop_decision(self):
        fx = _Fixture()
        fx.terminus.cache.install(CacheKey(PEER_A, 42, 7), Decision.drop())
        fx.terminus.receive(fx.packet())
        assert fx.sent == []
        assert fx.terminus.stats.drops_by_decision == 1

    def test_tlv_rewrite_on_fast_path(self):
        fx = _Fixture()
        target = ForwardTarget(
            PEER_B, tlv_updates=((TLV.DEST_SN, b"10.0.9.9"),)
        )
        fx.terminus.cache.install(
            CacheKey(PEER_A, 42, 7),
            Decision(action=Action.FORWARD, targets=(target,)),
        )
        fx.terminus.receive(fx.packet())
        peer, out = fx.sent[0]
        opened = fx.peers[PEER_B].open(out.ilp_wire)
        decoded = ILPHeader.decode(opened)
        assert decoded.get_str(TLV.DEST_SN) == "10.0.9.9"

    def test_output_resealed_per_peer(self):
        """Egress headers must decrypt with the *destination's* context."""
        fx = _Fixture()
        fx.terminus.cache.install(CacheKey(PEER_A, 42, 7), Decision.forward(PEER_B))
        fx.terminus.receive(fx.packet())
        _, out = fx.sent[0]
        assert out.l3.src == SN_ADDR
        assert out.l3.dst == PEER_B
        decoded = ILPHeader.decode(fx.peers[PEER_B].open(out.ilp_wire))
        assert decoded.connection_id == 7
        # The sender's context must NOT decrypt it (fresh encryption).
        with pytest.raises(Exception):
            fx.peers[PEER_A].open(out.ilp_wire)

    def test_send_to_unknown_peer_fails(self):
        fx = _Fixture()
        header = ILPHeader(service_id=42, connection_id=1)
        assert not fx.terminus.send("9.9.9.9", header, make_payload(b""))
        assert fx.terminus.stats.drops_no_peer == 1


class TestEvictionCorrectness:
    def test_eviction_mid_connection_recomputes(self):
        """Appendix B: evicting an active connection's entry must not break it."""
        def verdict(header, packet):
            v = Verdict.forward(PEER_B, header, packet.payload)
            v.installs.append(
                (CacheKey(PEER_A, 42, header.connection_id), Decision.forward(PEER_B))
            )
            return v

        fx = _Fixture(_RecordingService(verdict))
        fx.terminus.receive(fx.packet())
        fx.terminus.cache.evict_random_fraction(1.0)
        fx.terminus.receive(fx.packet())
        assert len(fx.sent) == 2  # both packets forwarded
        assert len(fx.service.seen) == 2  # service recomputed after eviction


class TestBatchIngress:
    """receive_batch: amortized clock/stats/delay bookkeeping, same semantics."""

    def _install_forward(self, fx, conn=7):
        fx.terminus.cache.install(CacheKey(PEER_A, 42, conn), Decision.forward(PEER_B))

    def test_batch_equals_per_packet_receive(self):
        fx_one = _Fixture()
        fx_batch = _Fixture()
        for fx in (fx_one, fx_batch):
            self._install_forward(fx)
        packets_one = [fx_one.packet() for _ in range(10)]
        packets_batch = [fx_batch.packet() for _ in range(10)]

        for pkt in packets_one:
            fx_one.terminus.receive(pkt)
        assert fx_batch.terminus.receive_batch(packets_batch) == 10

        assert len(fx_batch.sent) == len(fx_one.sent) == 10
        for (peer_a, out_a), (peer_b, out_b) in zip(fx_one.sent, fx_batch.sent):
            assert peer_a == peer_b == PEER_B
            assert out_a.payload.data == out_b.payload.data
        s1, s2 = fx_one.terminus.stats, fx_batch.terminus.stats
        assert (s1.packets_in, s1.fast_path, s1.packets_out) == (
            s2.packets_in,
            s2.fast_path,
            s2.packets_out,
        ) == (10, 10, 10)

    def test_batch_mixes_fast_and_slow_paths(self):
        fx = _Fixture()
        self._install_forward(fx, conn=7)
        batch = [
            fx.packet(conn=7),        # fast path
            fx.packet(conn=8),        # miss -> punt (service drops)
            fx.packet(flags=Flags.CONTROL),  # control -> punt
            fx.packet(conn=7),        # fast path again
        ]
        assert fx.terminus.receive_batch(batch) == 4
        stats = fx.terminus.stats
        assert stats.packets_in == 4
        assert stats.fast_path == 2
        assert stats.punts == 2
        assert len(fx.sent) == 2

    def test_batch_charges_terminus_delay_once(self):
        fx = _Fixture()
        self._install_forward(fx)
        fx.terminus.receive_batch([fx.packet() for _ in range(5)])
        assert fx.terminus.pending_delay == fx.terminus.cost_model.terminus_latency

    def test_empty_batch(self):
        fx = _Fixture()
        assert fx.terminus.receive_batch([]) == 0
        assert fx.terminus.stats.packets_in == 0


def _installing_verdict(header, packet):
    verdict = Verdict.forward(PEER_B, header, packet.payload)
    verdict.installs.append(
        (
            CacheKey(packet.l3.src, 42, header.connection_id),
            Decision.forward(PEER_B),
        )
    )
    return verdict


class TestMissCoalescing:
    """Cold groups punt once per flow and drain off the fresh install."""

    FLOWS = 8
    DEPTH = 6

    def _cold_storm(self, fx):
        """Interleaved all-miss burst: FLOWS flows, DEPTH packets each."""
        return [
            fx.packet(conn=flow)
            for _ in range(self.DEPTH)
            for flow in range(self.FLOWS)
        ]

    def test_installing_service_punts_once_per_flow(self):
        fx = _Fixture(_RecordingService(_installing_verdict))
        fx.terminus.receive_batch(self._cold_storm(fx))
        stats = fx.terminus.stats
        assert stats.punts == self.FLOWS
        assert len(fx.service.seen) == self.FLOWS
        # Every packet still egresses: one verdict emit per lead, the
        # followers through the installed decision.
        assert len(fx.sent) == self.FLOWS * self.DEPTH
        assert stats.fast_path == self.FLOWS * (self.DEPTH - 1)

    def test_leads_cross_boundary_in_one_batch(self):
        fx = _Fixture(_RecordingService(_installing_verdict))
        fx.terminus.receive_batch(self._cold_storm(fx))
        ch = fx.terminus.channel.stats
        assert ch.invocations == self.FLOWS
        assert ch.batches == 1
        assert ch.max_batch == self.FLOWS
        shard = fx.terminus.shard_stats
        assert shard.cold_spans == 1
        assert shard.cold_groups == self.FLOWS

    def test_miss_queue_ledger_balances(self):
        fx = _Fixture(_RecordingService(_installing_verdict))
        fx.terminus.receive_batch(self._cold_storm(fx))
        queue = fx.terminus.miss_queue
        assert queue.live == 0
        expected_parked = self.FLOWS * (self.DEPTH - 1)
        assert queue.stats.parked == expected_parked
        assert queue.stats.drained_fast == expected_parked
        assert queue.stats.replayed == queue.stats.dropped == 0

    def test_non_installing_service_replays_per_packet(self):
        fx = _Fixture()  # default verdict: drop, no install
        fx.terminus.receive_batch(self._cold_storm(fx))
        # Followers find no install and re-punt individually, exactly
        # like the per-packet slow path.
        assert fx.terminus.stats.punts == self.FLOWS * self.DEPTH
        assert len(fx.service.seen) == self.FLOWS * self.DEPTH
        queue = fx.terminus.miss_queue
        assert queue.live == 0
        assert queue.stats.replayed == queue.stats.parked

    def test_overflow_spills_to_per_packet_processing(self):
        fx = _Fixture(_RecordingService(_installing_verdict))
        fx.terminus.miss_queue.limit = 2
        fx.terminus.receive_batch(self._cold_storm(fx))
        queue = fx.terminus.miss_queue
        assert queue.stats.spilled == self.FLOWS * (self.DEPTH - 1 - 2)
        assert queue.stats.parked == self.FLOWS * 2
        # Spilled packets hit the install via the scalar path: nothing lost.
        assert len(fx.sent) == self.FLOWS * self.DEPTH
        assert fx.terminus.stats.punts == self.FLOWS

    def test_barriers_flush_spans_and_punt_individually(self):
        fx = _Fixture(_RecordingService(_installing_verdict))
        batch = [
            fx.packet(conn=1),
            fx.packet(conn=2),
            fx.packet(conn=1, flags=Flags.CONTROL),
            fx.packet(conn=1),
            fx.packet(conn=2),
        ]
        fx.terminus.receive_batch(batch)
        # The barrier splits the burst into two segments: conns 1 and 2
        # punt cold in the first, hit their installs in the second.
        assert len(fx.service.control_seen) == 1
        assert fx.terminus.stats.punts == 3  # 2 cold leads + the control
        assert fx.terminus.stats.fast_path == 2
        assert fx.terminus.miss_queue.live == 0

    def test_crash_discards_parked_packets_as_dropped(self):
        fx = _Fixture()
        queue = fx.terminus.miss_queue
        queue.park((PEER_A, b"flow"), [fx.packet(), fx.packet()])
        assert queue.live == 2
        fx.node.crash()
        assert queue.live == 0
        assert queue.stats.dropped == 2
        # Ledger still balances after the wipe.
        st = queue.stats
        assert st.parked == st.drained_fast + st.replayed + st.dropped

    def test_miss_queue_drain_preserves_arrival_order(self):
        fx = _Fixture()
        queue = fx.terminus.miss_queue
        first, second = fx.packet(data=b"1"), fx.packet(data=b"2")
        queue.park((PEER_A, b"flow"), [first])
        queue.park((PEER_A, b"flow"), [second])
        drained = queue.drain((PEER_A, b"flow"), fast=True)
        assert [p.payload.data for p in drained] == [b"1", b"2"]
        assert queue.drain((PEER_A, b"flow"), fast=True) == []


class TestPreEncodedSend:
    def test_send_with_precomputed_encoding(self):
        fx = _Fixture()
        header = ILPHeader(service_id=42, connection_id=7)
        header.set_str(TLV.SRC_HOST, "192.168.0.5")
        encoded = header.encode()
        assert fx.terminus.send(PEER_B, header, make_payload(b"d"), encoded=encoded)
        peer, out = fx.sent[0]
        assert peer == PEER_B
        # The receiver opens to exactly the provided encoding.
        rx = PSPContext(pairwise_secret(SN_ADDR, PEER_B))
        assert rx.open(out.ilp_wire) == encoded

    def test_qos_src_is_a_declared_field(self):
        fx = _Fixture()
        header = ILPHeader(service_id=42, connection_id=7)
        header.set_str(TLV.SRC_HOST, "192.168.0.5")
        fx.terminus.send(PEER_B, header, make_payload(b"d"))
        _, out = fx.sent[0]
        assert out.qos_src == "192.168.0.5"
        # And defaults to None on freshly built packets.
        assert fx.packet().qos_src is None

    def test_fanout_encodes_once(self):
        fx = _Fixture()
        encode_calls = 0
        header = ILPHeader(service_id=42, connection_id=7)
        original_encode = ILPHeader.encode

        fx.terminus.cache.install(
            CacheKey(PEER_A, 42, 7),
            Decision(
                action=Action.FORWARD,
                targets=(ForwardTarget(PEER_A), ForwardTarget(PEER_B)),
            ),
        )
        pkt = fx.packet()

        def counting_encode(self):
            nonlocal encode_calls
            encode_calls += 1
            return original_encode(self)

        # The sanitizer's scratch re-encode would inflate the count; this
        # test measures the production fast path, so pin it off.
        was_sanitizing = sanitize.set_enabled(False)
        ILPHeader.encode = counting_encode
        try:
            fx.terminus.receive(pkt)
        finally:
            ILPHeader.encode = original_encode
            sanitize.set_enabled(was_sanitizing)
        assert [p for p, _ in fx.sent] == [PEER_A, PEER_B]
        # apply_decision encodes once; send() reuses the provided bytes.
        assert encode_calls == 1

"""Tests for the §2.2 innovation path: experimental → standardized →
required, plus host reassociation."""

import pytest

from repro import InterEdge, WellKnownService
from repro.core.service_module import Standardization
from repro.services import NullService, standard_registry


class _GeoHashService(NullService):
    """A hypothetical novel service one IESP invents."""

    SERVICE_ID = 0x0E01
    NAME = "geohash"


def _fed():
    net = InterEdge(registry=standard_registry())
    net.create_edomain("innovator")
    net.create_edomain("incumbent")
    sn_i = net.add_sn("innovator")
    sn_c = net.add_sn("incumbent")
    net.peer_all()
    net.deploy_required_services()
    return net, sn_i, sn_c


class TestExperimentalServices:
    def test_experimental_deploys_only_in_offering_edomain(self):
        net, sn_i, sn_c = _fed()
        count = net.deploy_experimental(_GeoHashService, "innovator")
        assert count == 1
        assert sn_i.env.has_service(_GeoHashService.SERVICE_ID)
        assert not sn_c.env.has_service(_GeoHashService.SERVICE_ID)
        assert (
            net.registry.status(_GeoHashService.SERVICE_ID)
            is Standardization.EXPERIMENTAL
        )

    def test_experimental_not_in_uniform_service_model(self):
        net, sn_i, sn_c = _fed()
        net.deploy_experimental(_GeoHashService, "innovator")
        assert _GeoHashService not in net.registry.required_services()
        # deploy_required_services must NOT spread it.
        net.deploy_required_services()
        assert not sn_c.env.has_service(_GeoHashService.SERVICE_ID)

    def test_innovator_customers_can_use_it(self):
        net, sn_i, sn_c = _fed()
        net.deploy_experimental(_GeoHashService, "innovator")
        early_adopter = net.add_host(sn_i, name="early")
        peer = net.add_host(sn_i, name="peer")
        conn = early_adopter.connect(
            _GeoHashService.SERVICE_ID, dest_addr=peer.address, allow_direct=False
        )
        early_adopter.send(conn, b"novel!")
        net.run(1.0)
        assert [p.data for _, p in peer.delivered] == [b"novel!"]

    def test_standardization_spreads_it_everywhere(self):
        """The §2.2 happy path: traction → standard → universal."""
        net, sn_i, sn_c = _fed()
        net.deploy_experimental(_GeoHashService, "innovator")
        net.registry.promote(_GeoHashService.SERVICE_ID, Standardization.REQUIRED)
        net.deploy_required_services()
        assert sn_c.env.has_service(_GeoHashService.SERVICE_ID)
        # A host in the *other* IESP now uses it without lock-in.
        a = net.add_host(sn_c, name="late")
        b = net.add_host(sn_i, name="remote")
        conn = a.connect(
            _GeoHashService.SERVICE_ID,
            dest_addr=b.address,
            dest_sn=sn_i.address,
            allow_direct=False,
        )
        a.send(conn, b"now-standard")
        net.run(1.0)
        assert [p.data for _, p in b.delivered] == [b"now-standard"]


class TestReassociation:
    def test_make_before_break(self):
        net, sn_i, sn_c = _fed()
        host = net.add_host(sn_i, name="mobile")
        host.reassociate(sn_c)
        # New SN is primary; old association survives.
        assert host.first_hop_addresses[0] == sn_c.address
        assert sn_i.address in host.first_hop_addresses
        peer = net.add_host(sn_c, name="peer")
        conn = host.connect(
            WellKnownService.IP_DELIVERY, dest_addr=peer.address, allow_direct=False
        )
        assert conn.via_sn == sn_c.address
        host.send(conn, b"through-new-sn")
        net.run(1.0)
        assert [p.data for _, p in peer.delivered] == [b"through-new-sn"]

    def test_drop_old_removes_prior_hops(self):
        net, sn_i, sn_c = _fed()
        host = net.add_host(sn_i, name="mobile")
        host.reassociate(sn_c, drop_old=True)
        assert host.first_hop_addresses == [sn_c.address]

    def test_reassociate_idempotent(self):
        net, sn_i, sn_c = _fed()
        host = net.add_host(sn_i, name="mobile")
        host.reassociate(sn_c)
        host.reassociate(sn_c)
        assert host.first_hop_addresses.count(sn_c.address) == 1

"""Fixture tests for the interprocedural rules: EVT001, DET003, LEDGER001.

Mirrors the conventions of ``tests/test_analysis_rules.py``: every rule
gets failing fixtures (the rule fires, with the right message), clean
fixtures (the rule stays quiet), and waiver coverage. EVT001
additionally proves the call chain in the finding message, and the
analysis package is required to pass its own rules (self-analysis).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_file, analyze_paths
from repro.analysis.rules import rule_det003, rule_evt001, rule_ledger001

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestEVT001:
    def test_blocking_call_in_callback_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    time.sleep(0.1)
            """,
        )
        findings = analyze_file(path, rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        assert "time.sleep() is a blocking primitive" in findings[0].message
        assert "mod.Worker.tick" in findings[0].message

    def test_transitive_reach_reports_full_chain(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def post(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.post(1.0, self.tick)

                def tick(self):
                    self.step()

                def step(self):
                    self.slow()

                def slow(self):
                    time.sleep(0.1)
            """,
        )
        findings = analyze_file(path, rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        message = findings[0].message
        assert (
            "call chain: mod.Worker.tick -> mod.Worker.step -> mod.Worker.slow"
            in message
        )
        assert "registered at" in message

    def test_wall_clock_read_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    return time.monotonic()
            """,
        )
        findings = analyze_file(path, rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        assert "wall-clock" in findings[0].message

    def test_unreachable_blocking_call_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    pass

                def offline_tool(self):
                    # Never reachable from the callback: fine.
                    time.sleep(1.0)
            """,
        )
        assert analyze_file(path, rules=[rule_evt001]) == []

    def test_untyped_receiver_still_roots_the_callback(self, tmp_path):
        # Registration APIs match by name even when the receiver's type is
        # unknown, so callback roots are over- not under-approximated.
        path = _write(
            tmp_path,
            "mod.py",
            """
            import subprocess

            class Agent:
                def attach(self, store):
                    store.watch_prefix("resilience/", self.on_update)

                def on_update(self, key, op, value):
                    subprocess.run(["true"])
            """,
        )
        findings = analyze_file(path, rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        assert "subprocess.run()" in findings[0].message

    def test_timer_constructor_roots_the_callback(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Timer:
                def __init__(self, delay, callback):
                    pass

            class Daemon:
                def arm(self):
                    Timer(0.5, self.fire)

                def fire(self):
                    time.sleep(0.5)
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_evt001])) == ["EVT001"]

    def test_nested_closure_callback_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Monitor:
                def start(self, eng: Engine):
                    def tick():
                        self.poll()
                    eng.schedule(1.0, tick)

                def poll(self):
                    time.sleep(0.1)
            """,
        )
        findings = analyze_file(path, rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        assert "mod.Monitor.start.<locals>.tick" in findings[0].message

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    # repro: allow(EVT001) wall-clock probe for a demo tool
                    time.sleep(0.1)
            """,
        )
        assert analyze_file(path, rules=[rule_evt001]) == []

    def test_test_modules_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "test_mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            def test_thing(eng: Engine):
                eng.schedule(1.0, lambda: time.sleep(0.1))
            """,
        )
        assert analyze_file(path, rules=[rule_evt001]) == []


class TestDET003:
    def test_entropy_seed_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os
            import random

            class Node:
                def __init__(self):
                    self.rng = random.Random(os.urandom(8))
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003"]
        assert "derives from os.urandom()" in findings[0].message

    def test_builtin_hash_and_id_seeds_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random

            def make(node):
                a = random.Random(hash(node))
                b = random.Random(id(node))
                return a, b
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003", "DET003"]

    def test_wall_clock_seed_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random
            import time

            def make():
                return random.Random(time.time_ns())
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003"]
        assert "wall clock" in findings[0].message

    def test_seed_through_assignment_chain_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os
            import random

            def make():
                raw = os.urandom(4)
                seed = int.from_bytes(raw, "big")
                return random.Random(seed)
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003"]

    def test_set_iteration_seed_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Links:
                def reshuffle(self, peers):
                    for peer in set(peers):
                        self.link(peer).reseed(peer)

                def link(self, peer):
                    return None
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003"]
        assert "iterates a set/dict" in findings[0].message

    def test_sorted_iteration_clean(self, tmp_path):
        # sorted() imposes a total order, neutralizing set iteration.
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Links:
                def reshuffle(self, peers):
                    for peer in sorted(set(peers)):
                        self.link(peer).reseed(peer)

                def link(self, peer):
                    return None
            """,
        )
        assert analyze_file(path, rules=[rule_det003]) == []

    def test_parameter_config_and_literal_seeds_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random
            import zlib

            DEFAULT_SEED = 0xA11CE

            class Node:
                def __init__(self, cfg, seed: int):
                    self.a = random.Random(seed)
                    self.b = random.Random(cfg.seed)
                    self.c = random.Random(0x5EED)
                    self.d = random.Random(DEFAULT_SEED)
                    self.e = random.Random(zlib.crc32(cfg.name.encode()))
            """,
        )
        assert analyze_file(path, rules=[rule_det003]) == []

    def test_reseed_from_parameter_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Link:
                def flip(self, value):
                    self.rng.reseed(int(value))
            """,
        )
        assert analyze_file(path, rules=[rule_det003]) == []

    def test_tuple_unpack_provenance_tracked(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os

            class Agent:
                def apply(self, event):
                    kind, value = event.kind, os.urandom(4)
                    self.rng.reseed(value)
            """,
        )
        findings = analyze_file(path, rules=[rule_det003])
        assert _codes(findings) == ["DET003"]

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import os
            import random

            def entropy_rng():
                # repro: allow(DET003, DET001) deliberately nondeterministic tool
                return random.Random(os.urandom(8))
            """,
        )
        assert analyze_file(path, rules=[rule_det003]) == []

    def test_test_modules_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "test_mod.py",
            """
            import os
            import random

            def test_chaos():
                assert random.Random(os.urandom(8)) is not None
            """,
        )
        assert analyze_file(path, rules=[rule_det003]) == []


class TestLEDGER001:
    def test_dead_counter_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0
                dead: int = 0

            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def hit(self):
                    self.stats.hits += 1
            """,
        )
        findings = analyze_file(path, rules=[rule_ledger001])
        assert _codes(findings) == ["LEDGER001"]
        assert "FooStats.dead" in findings[0].message
        assert "no write site" in findings[0].message

    def test_all_counters_written_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0
                misses: int = 0

            class Foo:
                def __init__(self):
                    self.stats = FooStats()

                def probe(self, ok):
                    if ok:
                        self.stats.hits += 1
                    else:
                        self.stats.misses = self.stats.misses + 1
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_untyped_write_credits_by_field_name(self, tmp_path):
        # Conservative: a write through an un-inferable receiver must
        # never let a counter be reported dead.
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0

            def bump(stats):
                stats.hits += 1
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_constructor_kwarg_counts_as_write(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0

            def snapshot(n):
                return FooStats(hits=n)
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_non_counter_fields_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass, field

            @dataclass
            class FlowStats:
                samples: list = field(default_factory=list)
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_ledger_unknown_class_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            CONSERVATION_LEDGERS = {
                "GhostStats": ("total", ("a", "b")),
            }
            """,
        )
        findings = analyze_file(path, rules=[rule_ledger001])
        assert _codes(findings) == ["LEDGER001"]
        assert "unknown stats class" in findings[0].message

    def test_ledger_unknown_field_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                parked: int = 0
                drained: int = 0

            CONSERVATION_LEDGERS = {
                "FooStats": ("parked", ("drianed",)),
            }

            def bump(s: FooStats):
                s.parked += 1
                s.drained += 1
            """,
        )
        findings = analyze_file(path, rules=[rule_ledger001])
        assert _codes(findings) == ["LEDGER001"]
        assert "'drianed'" in findings[0].message
        assert "ledger typo" in findings[0].message

    def test_valid_ledger_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                parked: int = 0
                drained: int = 0

            CONSERVATION_LEDGERS = {
                "FooStats": ("parked", ("drained",)),
            }

            def bump(s: FooStats):
                s.parked += 1
                s.drained += 1
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0
                # repro: allow(LEDGER001) reserved for the v2 dashboard
                planned: int = 0

            def bump(s: FooStats):
                s.hits += 1
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []

    def test_test_module_stats_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "test_mod.py",
            """
            from dataclasses import dataclass

            @dataclass
            class ProbeStats:
                unused: int = 0
            """,
        )
        assert analyze_file(path, rules=[rule_ledger001]) == []


class TestCrossModule:
    def test_evt001_across_modules(self, tmp_path):
        _write(
            tmp_path,
            "engine.py",
            """
            class Engine:
                def schedule(self, delay, callback):
                    pass
            """,
        )
        _write(
            tmp_path,
            "worker.py",
            """
            import time

            from engine import Engine
            from util import slow_sync

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    slow_sync()
            """,
        )
        _write(
            tmp_path,
            "util.py",
            """
            import time

            def slow_sync():
                time.sleep(0.5)
            """,
        )
        findings = analyze_paths([tmp_path], rules=[rule_evt001])
        assert _codes(findings) == ["EVT001"]
        assert findings[0].path.endswith("util.py")
        assert (
            "call chain: worker.Worker.tick -> util.slow_sync"
            in findings[0].message
        )

    def test_ledger001_write_site_in_other_module(self, tmp_path):
        _write(
            tmp_path,
            "stats.py",
            """
            from dataclasses import dataclass

            @dataclass
            class LinkStats:
                drops: int = 0
            """,
        )
        _write(
            tmp_path,
            "link.py",
            """
            from stats import LinkStats

            class Link:
                def __init__(self):
                    self.stats = LinkStats()

                def drop(self):
                    self.stats.drops += 1
            """,
        )
        assert analyze_paths([tmp_path], rules=[rule_ledger001]) == []


class TestSelfAnalysis:
    def test_analysis_package_passes_its_own_rules(self):
        """The analyzer must hold itself to the rules it enforces."""
        package = REPO_ROOT / "src" / "repro" / "analysis"
        findings = analyze_paths([package], root=REPO_ROOT)
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

"""Trace conformance: recorded spans follow the packet-lifecycle grammar.

Every trace the flight recorder captures on a metro-topology run must
read as the datapath's lifecycle grammar::

    receive -> decrypt -> (cache_hit | punt [-> park -> (drain | replay)])
            -> seal -> send

with the slow path nesting ``ipc.invoke -> env.dispatch ->
enclave.cross`` under a punt, and resilience traces reading
``peer_dead [-> failover]``. The checker below enforces the ordering
obligations (never an exact sequence — bursts interleave flows), the
span-closure obligation (OBS001's dynamic counterpart: every span in the
ring is closed), and the miss-queue ledger per trace (every parked
packet drained or replayed within its burst).

Three run shapes are driven end to end: steady metro traffic (fast path
+ first-packet punts), a cold storm (bursts of all-miss flows exercising
park/drain/replay), and a border-SN crash (failover spans). A final test
runs the ``REPRO_OBS=1`` environment path and the snapshot plumbing —
the issue's acceptance criterion.
"""

from __future__ import annotations

from collections import defaultdict

from repro import WellKnownService
from repro.core.monitoring import FederationMonitor
from repro.obs import FlightRecorder, Span
from repro.scenarios import metro_federation

#: Span names that may open a trace.
_TRACE_HEADS = {"terminus.receive", "resilience.peer_dead"}

#: name -> names that must already have occurred in the same trace.
_NEEDS = {
    "miss.park": {"terminus.punt"},
    "miss.drain": {"miss.park"},
    "miss.replay": {"miss.park"},
    "terminus.send": {"terminus.seal"},
    "ipc.invoke": {"terminus.punt"},
    "env.dispatch": {"ipc.invoke"},
    "enclave.cross": {"env.dispatch"},
    "terminus.cache_hit": {"terminus.decrypt"},
    "resilience.failover": {"resilience.peer_dead"},
}

_KNOWN = _TRACE_HEADS | set(_NEEDS) | {
    "terminus.decrypt",
    "terminus.punt",
    "terminus.seal",
}


def _check_trace(trace: int, spans: list[Span]) -> list[str]:
    """All grammar violations in one trace (empty = conformant)."""
    problems: list[str] = []
    if spans[0].name not in _TRACE_HEADS:
        problems.append(f"trace {trace} opens with {spans[0].name!r}")
    seen: set[str] = set()
    parked = drained = replayed = 0
    for span in spans:
        if span.name not in _KNOWN:
            problems.append(f"trace {trace}: unknown span {span.name!r}")
            continue
        if not span.done:
            problems.append(f"trace {trace}: unclosed span {span.name!r}")
        elif span.end is not None and span.end < span.start:
            problems.append(f"trace {trace}: span {span.name!r} ends early")
        missing = _NEEDS.get(span.name, set()) - seen
        if missing:
            problems.append(
                f"trace {trace}: {span.name!r} before {sorted(missing)}"
            )
        seen.add(span.name)
        if span.name == "miss.park":
            parked += span.attrs["n"]
        elif span.name == "miss.drain":
            drained += span.attrs["n"]
        elif span.name == "miss.replay":
            replayed += span.attrs["n"]
    if parked != drained + replayed:
        problems.append(
            f"trace {trace}: miss ledger parked={parked} "
            f"!= drained={drained} + replayed={replayed}"
        )
    return problems


def _traces_of(recorder: FlightRecorder) -> dict[int, list[Span]]:
    grouped: dict[int, list[Span]] = defaultdict(list)
    for span in recorder.iter_spans():
        grouped[span.trace].append(span)
    # A bounded ring may hold a truncated oldest trace; skip any trace
    # whose head was evicted (it cannot be judged against the grammar).
    return {
        trace: spans
        for trace, spans in grouped.items()
        if spans[0].name in _TRACE_HEADS
    }


def _assert_conformant(recorder: FlightRecorder) -> dict[int, list[Span]]:
    traces = _traces_of(recorder)
    problems = [
        problem
        for trace, spans in traces.items()
        for problem in _check_trace(trace, spans)
    ]
    assert not problems, "\n".join(problems)
    return traces


def _arm(sns, capacity: int = 200_000):
    return [sn.enable_observability(capacity=capacity) for sn in sns]


def _ingress_sn(handles, host):
    """The SN a host is associated with (its first hop)."""
    address = host.first_hop_addresses[0]
    return next(sn for sn in handles.sns if sn.address == address)


def _sn_of(net, edomain: str, index: int):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def _span_names(traces: dict[int, list[Span]]) -> set[str]:
    return {span.name for spans in traces.values() for span in spans}


class TestMetroTrafficConformance:
    def test_steady_traffic_traces_conform(self):
        handles = metro_federation(n_edomains=2, sns_per_edomain=2, hosts_per_sn=1)
        _arm(handles.sns)
        net = handles.net
        hosts = handles.hosts
        conns = []
        for i in range(len(hosts)):
            a, b = hosts[i], hosts[(i + 1) % len(hosts)]
            conns.append(
                (a, a.connect(
                    WellKnownService.IP_DELIVERY,
                    dest_addr=b.address,
                    allow_direct=False,
                ))
            )
        for burst in range(3):
            for a, conn in conns:
                a.send(conn, f"payload-{burst}".encode())
            net.run(1.0)
        names: set[str] = set()
        for sn in handles.sns:
            assert sn.obs is not None
            traces = _assert_conformant(sn.obs.recorder)
            names |= _span_names(traces)
        # The fleet exercised both halves of the decision: first packets
        # punt (through IPC into dispatch), repeats ride the fast path.
        for expected in (
            "terminus.receive",
            "terminus.decrypt",
            "terminus.punt",
            "ipc.invoke",
            "env.dispatch",
            "terminus.cache_hit",
            "terminus.seal",
            "terminus.send",
        ):
            assert expected in names, f"fleet never recorded {expected}"

    def test_punt_latency_histograms_populated(self):
        handles = metro_federation(n_edomains=2, sns_per_edomain=2, hosts_per_sn=1)
        _arm(handles.sns)
        a, b = handles.hosts[0], handles.hosts[-1]
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        for i in range(5):
            a.send(conn, b"x")
        handles.net.run(2.0)
        ingress = _ingress_sn(handles, a)
        assert ingress.obs is not None
        assert ingress.obs.terminus_latency.count > 0
        assert ingress.obs.punt_latency.count > 0
        # Egress latency includes terminus cost; punts add on top of it.
        assert (
            ingress.obs.terminus_latency.max
            >= ingress.cost_model.terminus_latency
        )


class TestColdStormConformance:
    def test_cold_storm_parks_and_drains_conformantly(self):
        """Back-to-back first packets arrive as one burst: the cold path
        must coalesce (punt once, park followers, drain off the install)
        and the trace must say so, in grammar order."""
        handles = metro_federation(n_edomains=2, sns_per_edomain=2, hosts_per_sn=1)
        _arm(handles.sns)
        net = handles.net
        a, b = handles.hosts[0], handles.hosts[-1]
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        # All sends queue before the sim runs -> the access link delivers
        # them as one burst. first=False keeps every header identical
        # (no FIRST flag on packet 1), so the burst is a single cold
        # flow: the lead punts and the followers park behind it.
        for i in range(12):
            a.send(conn, f"storm-{i}".encode(), first=False)
        net.run(2.0)
        storm_names: set[str] = set()
        for sn in handles.sns:
            assert sn.obs is not None
            storm_names |= _span_names(_assert_conformant(sn.obs.recorder))
        assert "terminus.punt" in storm_names
        assert "miss.park" in storm_names
        # Followers left the queue through the grammar's two exits.
        assert storm_names & {"miss.drain", "miss.replay"}
        parked = sum(
            sn.terminus.miss_queue.stats.parked for sn in handles.sns
        )
        assert parked > 0
        for sn in handles.sns:
            sn.terminus.miss_queue.check_drained()


class TestFailoverConformance:
    def test_border_crash_records_failover_trace(self, two_edomain_net):
        net = two_edomain_net
        coordinator = net.enable_resilience(interval=0.25)
        recorder = FlightRecorder(clock=lambda: net.sim.now, capacity=4096)
        coordinator.recorder = recorder
        a = net.add_host(_sn_of(net, "west", 1), name="a")
        b = net.add_host(_sn_of(net, "east", 1), name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"before")
        net.run(1.0)
        net.edomains["west"].border_sn.crash()
        net.run(3.0)
        traces = _assert_conformant(recorder)
        assert traces, "no resilience traces recorded"
        # Death reports open resilience traces; exactly as many failover
        # spans as the coordinator's audit log records repairs.
        names = _span_names(traces)
        assert "resilience.peer_dead" in names
        failover_spans = recorder.spans(name="resilience.failover")
        assert len(failover_spans) == len(coordinator.failovers())
        assert len(failover_spans) >= 1
        for span in failover_spans:
            assert span.done and span.attrs["edomain"] == "west"
        # Traffic still flows after the repair (and keeps conforming).
        a.send(conn, b"after")
        net.run(1.0)
        _assert_conformant(recorder)


class TestReproObsEnvironment:
    def test_env_armed_metro_run_end_to_end(self, monkeypatch):
        """REPRO_OBS=1 arms every SN at build time; a metro run then
        yields complete traces and percentile columns in SNSnapshot."""
        monkeypatch.setenv("REPRO_OBS", "1")
        handles = metro_federation(
            n_edomains=2, sns_per_edomain=2, hosts_per_sn=1
        )
        net = handles.net
        assert all(sn.obs is not None for sn in handles.sns)
        a, b = handles.hosts[0], handles.hosts[-1]
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        for i in range(4):
            a.send(conn, b"x")
            net.run(0.5)
        for sn in handles.sns:
            _assert_conformant(sn.obs.recorder)
        monitor = FederationMonitor(net)
        report = monitor.collect()
        ingress_name = _ingress_sn(handles, a).name
        ingress = next(s for s in report.snapshots if s.name == ingress_name)
        assert ingress.lat_p50 > 0.0
        assert ingress.lat_p999 >= ingress.lat_p99 >= ingress.lat_p50
        assert ingress.punt_p99 > 0.0
        rows = monitor.history[-1].to_rows()
        assert {"p50(µs)", "p99(µs)", "p999(µs)", "punt_p99(µs)"} <= set(
            rows[0]
        )
        # Federation-level export merges every armed SN's registry.
        merged = monitor.obs_registry()
        assert merged is not None
        assert merged.histogram("terminus.latency").count == sum(
            sn.obs.terminus_latency.count for sn in handles.sns
        )
        assert monitor.obs_json() is not None
        assert "terminus.latency" in (monitor.obs_table() or "")

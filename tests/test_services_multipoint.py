"""Tests for the multipoint family: multicast, anycast, pub/sub (§6.2)."""

import pytest

from repro import WellKnownService
from repro.core.ilp import TLV
from repro.services.multipoint import (
    OP_ACK,
    OP_DENIED,
    join_group,
    leave_group,
    publish,
    register_sender,
    request_replay,
)
from tests.conftest import open_group


def topo(net):
    """(sn_w0, sn_w1, sn_e0, sn_e1) of the two_edomain_net fixture."""
    w = net.edomains["west"]
    e = net.edomains["east"]
    return [w.sns[a] for a in w.sn_addresses()] + [e.sns[a] for a in e.sn_addresses()]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestMulticast:
    SVC = WellKnownService.MULTICAST

    def test_fanout_all_members_all_scopes(self, two_edomain_net):
        net = two_edomain_net
        sn0, sn1, sn2, _ = topo(net)
        sender = net.add_host(sn0, name="sender")
        same_sn = net.add_host(sn0, name="m-same")
        same_dom = net.add_host(sn1, name="m-dom")
        remote = net.add_host(sn2, name="m-remote")
        open_group(net, sender, "g")
        for member in (same_sn, same_dom, remote):
            join_group(member, self.SVC, "g")
        register_sender(sender, self.SVC, "g")
        net.run(1.0)
        publish(sender, self.SVC, "g", b"to-all")
        net.run(1.0)
        assert payloads(same_sn) == [b"to-all"]
        assert payloads(same_dom) == [b"to-all"]
        assert payloads(remote) == [b"to-all"]

    def test_sender_does_not_receive_own_message(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        sender = net.add_host(sn0, name="sender")
        open_group(net, sender, "g")
        join_group(sender, self.SVC, "g")  # sender is also a member
        register_sender(sender, self.SVC, "g")
        net.run(1.0)
        publish(sender, self.SVC, "g", b"echo?")
        net.run(1.0)
        assert payloads(sender) == []

    def test_unregistered_sender_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        sender = net.add_host(sn0, name="sender")
        member = net.add_host(sn0, name="member")
        open_group(net, sender, "g")
        join_group(member, self.SVC, "g")
        net.run(1.0)
        publish(sender, self.SVC, "g", b"sneaky")  # never registered
        net.run(1.0)
        assert payloads(member) == []

    def test_leave_stops_delivery(self, two_edomain_net):
        net = two_edomain_net
        sn0, sn1, _, _ = topo(net)
        sender = net.add_host(sn0, name="sender")
        member = net.add_host(sn1, name="member")
        open_group(net, sender, "g")
        join_group(member, self.SVC, "g")
        register_sender(sender, self.SVC, "g")
        net.run(1.0)
        publish(sender, self.SVC, "g", b"one")
        net.run(1.0)
        leave_group(member, self.SVC, "g")
        net.run(1.0)
        publish(sender, self.SVC, "g", b"two")
        net.run(1.0)
        assert payloads(member) == [b"one"]

    def test_join_ack_and_denial(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        owner = net.add_host(sn0, name="owner")
        member = net.add_host(sn0, name="member")
        open_group(net, owner, "open-g")
        net.lookup.register_group("multicast:closed-g", owner.keypair)
        acks = []
        member.on_service_control(
            self.SVC,
            lambda cid, h, p: acks.append(h.tlvs.get(TLV.SERVICE_OPTS)),
        )
        join_group(member, self.SVC, "open-g")
        join_group(member, self.SVC, "closed-g")
        net.run(1.0)
        assert acks == [OP_ACK, OP_DENIED]


class TestAnycast:
    SVC = WellKnownService.ANYCAST

    def test_delivers_to_exactly_one_nearest(self, two_edomain_net):
        net = two_edomain_net
        sn0, sn1, sn2, _ = topo(net)
        sender = net.add_host(sn0, name="sender")
        near = net.add_host(sn0, name="near")  # same SN as sender
        far = net.add_host(sn2, name="far")  # other edomain
        open_group(net, sender, "svc")
        join_group(near, self.SVC, "svc")
        join_group(far, self.SVC, "svc")
        register_sender(sender, self.SVC, "svc")
        net.run(1.0)
        publish(sender, self.SVC, "svc", b"req")
        net.run(1.0)
        assert payloads(near) == [b"req"]
        assert payloads(far) == []

    def test_falls_back_to_edomain_member(self, two_edomain_net):
        net = two_edomain_net
        sn0, sn1, _, _ = topo(net)
        sender = net.add_host(sn0, name="sender")
        member = net.add_host(sn1, name="member")
        open_group(net, sender, "svc")
        join_group(member, self.SVC, "svc")
        register_sender(sender, self.SVC, "svc")
        net.run(1.0)
        publish(sender, self.SVC, "svc", b"req")
        net.run(1.0)
        assert payloads(member) == [b"req"]

    def test_falls_back_to_remote_edomain(self, two_edomain_net):
        net = two_edomain_net
        sn0, _, sn2, _ = topo(net)
        sender = net.add_host(sn0, name="sender")
        remote = net.add_host(sn2, name="remote")
        open_group(net, sender, "svc")
        join_group(remote, self.SVC, "svc")
        register_sender(sender, self.SVC, "svc")
        net.run(1.0)
        publish(sender, self.SVC, "svc", b"req")
        net.run(1.0)
        assert payloads(remote) == [b"req"]

    def test_no_members_drops(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        sender = net.add_host(sn0, name="sender")
        open_group(net, sender, "svc")
        register_sender(sender, self.SVC, "svc")
        net.run(1.0)
        publish(sender, self.SVC, "svc", b"void")
        net.run(1.0)  # nothing to assert beyond "no crash, no delivery"
        assert payloads(sender) == []


class TestPubSub:
    SVC = WellKnownService.PUBSUB

    def test_topic_isolation(self, two_edomain_net):
        net = two_edomain_net
        sn0, sn1, _, _ = topo(net)
        pub = net.add_host(sn0, name="pub")
        sub_news = net.add_host(sn1, name="sub-news")
        sub_sports = net.add_host(sn1, name="sub-sports")
        open_group(net, pub, "news")
        open_group(net, pub, "sports")
        join_group(sub_news, self.SVC, "news")
        join_group(sub_sports, self.SVC, "sports")
        register_sender(pub, self.SVC, "news")
        register_sender(pub, self.SVC, "sports")
        net.run(1.0)
        publish(pub, self.SVC, "news", b"headline")
        publish(pub, self.SVC, "sports", b"score")
        net.run(1.0)
        assert payloads(sub_news) == [b"headline"]
        assert payloads(sub_sports) == [b"score"]

    def test_retention_and_replay(self, two_edomain_net):
        """§3.3 host-driven state reconstruction."""
        net = two_edomain_net
        sn0 = topo(net)[0]
        pub = net.add_host(sn0, name="pub")
        open_group(net, pub, "log")
        register_sender(pub, self.SVC, "log")
        net.run(1.0)
        for i in range(3):
            publish(pub, self.SVC, "log", f"event-{i}".encode())
        net.run(1.0)
        # A late subscriber on the retaining SN replays the backlog.
        late = net.add_host(sn0, name="late")
        join_group(late, self.SVC, "log")
        request_replay(late, self.SVC, "log")
        net.run(1.0)
        assert payloads(late) == [b"event-0", b"event-1", b"event-2"]

    def test_retention_bounded(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        module = sn0.env.service(self.SVC)
        module.set_retention(2)
        pub = net.add_host(sn0, name="pub")
        open_group(net, pub, "log")
        register_sender(pub, self.SVC, "log")
        net.run(1.0)
        for i in range(5):
            publish(pub, self.SVC, "log", f"e{i}".encode())
        net.run(1.0)
        assert module.retained("log") == [b"e3", b"e4"]

    def test_checkpoint_restores_retention(self, two_edomain_net):
        net = two_edomain_net
        sn0 = topo(net)[0]
        module = sn0.env.service(self.SVC)
        pub = net.add_host(sn0, name="pub")
        open_group(net, pub, "log")
        register_sender(pub, self.SVC, "log")
        net.run(1.0)
        publish(pub, self.SVC, "log", b"precious")
        net.run(1.0)
        state = module.checkpoint()
        fresh = type(module)()
        fresh.restore(state)
        assert fresh.retained("log") == [b"precious"]
        assert fresh.published == module.published

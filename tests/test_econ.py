"""Unit tests for the economics layer (§5): rates, neutrality, peering, brokers."""

import pytest

from repro.econ import (
    BillingEngine,
    BrokerError,
    CoverageBroker,
    IESPOffer,
    Invoice,
    NeutralityAuditor,
    PeeringError,
    PeeringLedger,
    RateCard,
    RateError,
    ServiceDecision,
    ServiceRate,
    VolumeTier,
)


def simple_card(iesp="acme", base=10.0, price=1.0, region_mult=None) -> RateCard:
    card = RateCard(iesp)
    card.set_rate(
        ServiceRate(
            service_id=3,
            base_monthly=base,
            tiers=[VolumeTier(0.0, price), VolumeTier(100.0, price / 2)],
            region_multipliers=region_mult or {},
        )
    )
    card.publish()
    return card


class TestRateCard:
    def test_tiered_pricing_marginal(self):
        card = simple_card()
        # 150 GB: 100 @ 1.0 + 50 @ 0.5 + base 10
        assert card.price(3, "anywhere", 150.0) == pytest.approx(135.0)

    def test_price_within_first_tier(self):
        assert simple_card().price(3, "r", 50.0) == pytest.approx(60.0)

    def test_zero_volume_is_base(self):
        assert simple_card().price(3, "r", 0.0) == pytest.approx(10.0)

    def test_region_multiplier(self):
        card = simple_card(region_mult={"remote-island": 2.0})
        assert card.price(3, "remote-island", 10.0) == pytest.approx(40.0)
        assert card.price(3, "mainland", 10.0) == pytest.approx(20.0)

    def test_customer_not_an_input(self):
        """Neutrality by construction: the API has no customer parameter."""
        card = simple_card()
        import inspect

        assert "customer" not in inspect.signature(card.price).parameters

    def test_negative_volume_rejected(self):
        with pytest.raises(RateError):
            simple_card().price(3, "r", -1.0)

    def test_unknown_service_rejected(self):
        with pytest.raises(RateError):
            simple_card().price(99, "r", 1.0)

    def test_tiers_must_start_at_zero_ascending(self):
        with pytest.raises(RateError):
            ServiceRate(service_id=1, base_monthly=0, tiers=[VolumeTier(5.0, 1.0)])
        with pytest.raises(RateError):
            ServiceRate(
                service_id=1,
                base_monthly=0,
                tiers=[VolumeTier(100.0, 1.0), VolumeTier(0.0, 0.5)],
            )

    def test_publish_empty_rejected(self):
        with pytest.raises(RateError):
            RateCard("x").publish()

    def test_billing_requires_publication(self):
        card = RateCard("x")
        card.set_rate(ServiceRate(service_id=1, base_monthly=0, tiers=[VolumeTier(0, 1)]))
        engine = BillingEngine(card)
        with pytest.raises(RateError):
            engine.bill("cust", 1, "r", 1.0)


class TestNeutralityAuditor:
    def test_clean_invoices_pass(self):
        card = simple_card()
        engine = BillingEngine(card)
        engine.bill("alice", 3, "r", 50.0)
        engine.bill("bob", 3, "r", 50.0)
        assert NeutralityAuditor(card).audit(engine.invoices) == []

    def test_off_card_price_flagged(self):
        card = simple_card()
        invoices = [Invoice("alice", 3, "r", 50.0, amount=999.0)]
        violations = NeutralityAuditor(card).audit_invoices(invoices)
        assert any(v.kind == "off-card-price" for v in violations)

    def test_discrimination_between_customers_flagged(self):
        card = simple_card()
        invoices = [
            Invoice("alice", 3, "r", 50.0, amount=60.0),
            Invoice("bigco", 3, "r", 50.0, amount=45.0),  # sweetheart deal
        ]
        violations = NeutralityAuditor(card).audit_invoices(invoices)
        assert any(v.kind == "price-discrimination" for v in violations)

    def test_volume_differences_are_legitimate(self):
        card = simple_card()
        engine = BillingEngine(card)
        engine.bill("small", 3, "r", 10.0)
        engine.bill("large", 3, "r", 500.0)
        assert NeutralityAuditor(card).audit(engine.invoices) == []

    def test_selective_denial_flagged(self):
        card = simple_card()
        decisions = [
            ServiceDecision("alice", 3, "r", accepted=True),
            ServiceDecision("mallory-competitor", 3, "r", accepted=False, reason="no"),
        ]
        violations = NeutralityAuditor(card).audit_decisions(decisions)
        assert len(violations) == 1
        assert violations[0].kind == "service-denial"

    def test_uniform_unavailability_not_flagged(self):
        card = simple_card()
        decisions = [
            ServiceDecision("alice", 3, "nowhere", accepted=False, reason="no PoP"),
            ServiceDecision("bob", 3, "nowhere", accepted=False, reason="no PoP"),
        ]
        assert NeutralityAuditor(card).audit_decisions(decisions) == []


class TestPeeringLedger:
    def test_traffic_recorded(self):
        ledger = PeeringLedger()
        ledger.record_traffic("west", "east", 1500, 1)
        ledger.record_traffic("west", "east", 1500, 1)
        assert ledger.traffic("west", "east").bytes_sent == 3000
        assert ledger.traffic("east", "west").bytes_sent == 0

    def test_imbalance_is_informational(self):
        ledger = PeeringLedger()
        ledger.record_traffic("west", "east", 10_000)
        ledger.record_traffic("east", "west", 1_000)
        assert ledger.imbalance("west", "east") == 9_000
        # ...and still, no settlement is possible:
        with pytest.raises(PeeringError):
            ledger.post_settlement("east", "west", 5.0)

    def test_settlement_always_rejected(self):
        ledger = PeeringLedger()
        with pytest.raises(PeeringError):
            ledger.post_settlement("a", "b", 0.01)
        assert ledger.interdomain_balance() == 0.0
        assert len(ledger.settlement_attempts) == 1

    def test_customer_payments_allowed(self):
        ledger = PeeringLedger()
        ledger.pay_iesp("enterprise-x", "acme", 100.0)
        ledger.pay_iesp("app-provider-y", "acme", 50.0)
        assert ledger.edomain_revenue("acme") == 150.0

    def test_negative_payment_rejected(self):
        with pytest.raises(PeeringError):
            PeeringLedger().pay_iesp("c", "i", -1.0)


class TestBroker:
    def _offers(self):
        cheap_west = simple_card("cheap-west", base=5.0, price=0.5)
        cheap_east = simple_card("cheap-east", base=6.0, price=0.6)
        global_card = simple_card("globalcorp", base=20.0, price=1.0)
        return [
            IESPOffer("cheap-west", cheap_west, {"us-west"}),
            IESPOffer("cheap-east", cheap_east, {"us-east"}),
            IESPOffer("globalcorp", global_card, {"us-west", "us-east", "eu"}),
        ]

    def test_plan_picks_cheapest_per_region(self):
        broker = CoverageBroker(self._offers())
        plan = broker.plan(3, ["us-west", "us-east"], volume_gb_per_region=10.0)
        assert plan.assignments == {
            "us-west": "cheap-west",
            "us-east": "cheap-east",
        }
        assert plan.iesps_used == {"cheap-west", "cheap-east"}

    def test_uncoverable_region_raises(self):
        broker = CoverageBroker(self._offers())
        with pytest.raises(BrokerError):
            broker.plan(3, ["antarctica"], 1.0)

    def test_global_fallback_when_only_option(self):
        broker = CoverageBroker(self._offers())
        plan = broker.plan(3, ["eu"], 10.0)
        assert plan.assignments["eu"] == "globalcorp"

    def test_stitched_beats_global(self):
        """§5's thesis: small IESPs + a broker can undercut a global one."""
        broker = CoverageBroker(self._offers())
        plan, global_total = broker.compare_with_global(
            3, ["us-west", "us-east"], 10.0, self._offers()[2]
        )
        assert plan.total_monthly < global_total

    def test_unpublished_card_rejected(self):
        card = RateCard("sneaky")
        card.set_rate(ServiceRate(service_id=3, base_monthly=0, tiers=[VolumeTier(0, 1)]))
        with pytest.raises(BrokerError):
            IESPOffer("sneaky", card, {"r"})

"""Unit tests for the scheduling primitives (WFQ, DRR, priority, bucket)."""

import pytest

from repro.sched import (
    DeficitRoundRobin,
    PriorityScheduler,
    TokenBucket,
    WeightedFairQueue,
)
from repro.sched.wfq import SchedulerError


class TestTokenBucket:
    def test_burst_allows_initial_packets(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        assert bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)  # 1000 B/s
        bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(500, now=0.1)  # only 100 B refilled
        assert bucket.try_consume(500, now=0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=100)
        assert bucket.tokens_at(1000.0) == 100

    def test_time_until_available(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        bucket.try_consume(1000, now=0.0)
        assert bucket.time_until_available(1000, now=0.0) == pytest.approx(1.0)
        assert bucket.time_until_available(0, now=0.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=10)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=10, burst_bytes=0)


class TestWFQ:
    def test_service_proportional_to_weights(self):
        wfq = WeightedFairQueue()
        wfq.add_flow("heavy", weight=3.0)
        wfq.add_flow("light", weight=1.0)
        for i in range(100):
            wfq.enqueue("heavy", 100, f"h{i}")
            wfq.enqueue("light", 100, f"l{i}")
        # Dequeue half the backlog and compare service.
        for _ in range(100):
            wfq.dequeue()
        ratio = wfq.bytes_dequeued("heavy") / max(1, wfq.bytes_dequeued("light"))
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_fifo_within_flow(self):
        wfq = WeightedFairQueue()
        wfq.add_flow("f", weight=1.0)
        for i in range(5):
            wfq.enqueue("f", 10, i)
        out = [wfq.dequeue()[2] for _ in range(5)]
        assert out == [0, 1, 2, 3, 4]

    def test_empty_dequeue_returns_none(self):
        assert WeightedFairQueue().dequeue() is None

    def test_backlog_tracking(self):
        wfq = WeightedFairQueue()
        wfq.add_flow("f", weight=1.0)
        wfq.enqueue("f", 10, "x")
        assert len(wfq) == 1
        assert wfq.backlog("f") == 1
        wfq.dequeue()
        assert wfq.empty

    def test_idle_reset_prevents_starvation_bias(self):
        wfq = WeightedFairQueue()
        wfq.add_flow("a", weight=1.0)
        wfq.add_flow("b", weight=1.0)
        wfq.enqueue("a", 1_000_000, "big")
        wfq.dequeue()
        # System went idle; new arrivals must compete fresh.
        wfq.enqueue("b", 10, "x")
        wfq.enqueue("a", 10, "y")
        assert wfq.dequeue()[0] == "b"

    def test_unknown_flow_rejected(self):
        with pytest.raises(SchedulerError):
            WeightedFairQueue().enqueue("ghost", 1, None)

    def test_duplicate_flow_rejected(self):
        wfq = WeightedFairQueue()
        wfq.add_flow("f", 1.0)
        with pytest.raises(SchedulerError):
            wfq.add_flow("f", 2.0)

    def test_invalid_weight(self):
        with pytest.raises(SchedulerError):
            WeightedFairQueue().add_flow("f", 0.0)


class TestDRR:
    def test_quantum_proportional_service(self):
        drr = DeficitRoundRobin()
        drr.add_flow("big", quantum=300)
        drr.add_flow("small", quantum=100)
        for i in range(100):
            drr.enqueue("big", 100, i)
            drr.enqueue("small", 100, i)
        for _ in range(100):
            drr.dequeue()
        ratio = drr.bytes_dequeued("big") / max(1, drr.bytes_dequeued("small"))
        assert ratio == pytest.approx(3.0, rel=0.25)

    def test_oversized_packet_eventually_served(self):
        drr = DeficitRoundRobin()
        drr.add_flow("f", quantum=10)
        drr.enqueue("f", 100, "jumbo")
        assert drr.dequeue() == ("f", 100, "jumbo")

    def test_empty(self):
        assert DeficitRoundRobin().dequeue() is None

    def test_interleaves_flows(self):
        drr = DeficitRoundRobin()
        drr.add_flow("a", quantum=100)
        drr.add_flow("b", quantum=100)
        for i in range(3):
            drr.enqueue("a", 100, f"a{i}")
            drr.enqueue("b", 100, f"b{i}")
        flows = [drr.dequeue()[0] for _ in range(6)]
        assert flows.count("a") == 3 and flows.count("b") == 3
        # No flow gets all its packets before the other starts.
        assert flows[:3].count("a") < 3


class TestPriorityScheduler:
    def test_strict_priority_order(self):
        sched = PriorityScheduler()
        sched.add_flow("gaming", priority=0)
        sched.add_flow("bulk", priority=2)
        sched.enqueue("bulk", 100, "b")
        sched.enqueue("gaming", 100, "g")
        assert sched.dequeue()[0] == "gaming"
        assert sched.dequeue()[0] == "bulk"

    def test_wfq_within_level(self):
        sched = PriorityScheduler()
        sched.add_flow("a", priority=1, weight=2.0)
        sched.add_flow("b", priority=1, weight=1.0)
        for i in range(60):
            sched.enqueue("a", 100, i)
            sched.enqueue("b", 100, i)
        for _ in range(60):
            sched.dequeue()
        assert sched.bytes_dequeued("a") > sched.bytes_dequeued("b")

    def test_low_priority_served_when_high_empty(self):
        sched = PriorityScheduler()
        sched.add_flow("hi", priority=0)
        sched.add_flow("lo", priority=5)
        sched.enqueue("lo", 10, "x")
        assert sched.dequeue() == ("lo", 10, "x")
        assert sched.empty

    def test_duplicate_flow_rejected(self):
        sched = PriorityScheduler()
        sched.add_flow("f", priority=0)
        with pytest.raises(SchedulerError):
            sched.add_flow("f", priority=1)

    def test_unknown_flow_rejected(self):
        with pytest.raises(SchedulerError):
            PriorityScheduler().enqueue("ghost", 1, None)

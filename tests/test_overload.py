"""Overload-resilience layer: breakers, degradation, shedding, retries.

Unit coverage for :mod:`repro.core.overload` plus terminus-level
end-to-end scenarios (deadline misses, degradation modes, breaker trip
and recovery on a live ServiceNode) and the monitoring regression tests
for the overload columns in :func:`repro.core.monitoring.snapshot_sn`
(mirroring the drop-accounting regressions in ``test_obs.py``).
"""

from __future__ import annotations

import pytest

from repro.core.decision_cache import (
    Action,
    CacheError,
    CacheKey,
    Decision,
    DecisionCache,
)
from repro.core.ilp import Flags, ILPHeader
from repro.core.monitoring import snapshot_sn, FederationReport
from repro.core.overload import (
    AdmissionConfig,
    AdmissionControl,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DegradeMode,
    OverloadError,
    RetryStats,
    ServicePolicy,
    retry_call,
)
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_module import ServiceError, ServiceModule, Verdict
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator

SN_ADDR = "10.0.0.1"
PEER = "10.0.0.2"
EGRESS = "10.0.0.3"
DEGRADE_PEER = "10.0.0.4"
VICTIM = 70


# -- circuit breaker ------------------------------------------------------


def _tight_breaker(**overrides) -> CircuitBreaker:
    cfg = dict(
        failure_threshold=0.5,
        ewma_alpha=1.0,
        min_samples=1,
        open_duration=0.5,
        open_jitter=0.0,
        half_open_probes=2,
        close_after=1,
        seed=0,
    )
    cfg.update(overrides)
    return CircuitBreaker(BreakerConfig(**cfg))


class TestCircuitBreaker:
    def test_trips_after_threshold_with_min_samples(self):
        breaker = _tight_breaker(min_samples=3, ewma_alpha=1.0)
        assert not breaker.record_timeout(0.0)
        assert not breaker.record_timeout(0.0)
        assert breaker.record_timeout(0.0)  # third sample reaches min
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.trips == 1
        assert breaker.transitions[-1][1] is BreakerState.OPEN

    def test_successes_hold_ewma_below_threshold(self):
        breaker = _tight_breaker(min_samples=2, ewma_alpha=0.3)
        for _ in range(20):
            breaker.record_success(0.0)
        # One failure against a long success history must not trip.
        assert not breaker.record_error(0.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_short_circuits_then_half_open_recovers(self):
        breaker = _tight_breaker()
        assert breaker.record_timeout(0.0)
        assert not breaker.allow(0.1)
        assert breaker.stats.short_circuits == 1
        # Open period over: half-open, probes admitted, success closes.
        assert breaker.allow(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.stats.probes == 1
        assert breaker.record_success(1.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.stats.recoveries == 1
        assert breaker.recovered_at() == 1.0

    def test_failed_probe_reopens_immediately(self):
        breaker = _tight_breaker()
        breaker.record_timeout(0.0)
        assert breaker.allow(1.0)
        assert breaker.record_error(1.0)
        assert breaker.state is BreakerState.OPEN
        # The new open period starts at the failed probe.
        assert not breaker.allow(1.2)

    def test_probe_budget_is_bounded(self):
        breaker = _tight_breaker(half_open_probes=2, close_after=3)
        breaker.record_timeout(0.0)
        assert breaker.allow(1.0)
        assert breaker.allow(1.0)
        # Probe budget exhausted without a verdict: short-circuit again.
        assert not breaker.allow(1.0)

    def test_open_jitter_is_deterministic_in_seed(self):
        a = _tight_breaker(open_jitter=0.5, seed=7)
        b = _tight_breaker(open_jitter=0.5, seed=7)
        a.record_timeout(0.0)
        b.record_timeout(0.0)
        assert a.reopen_at == b.reopen_at
        c = _tight_breaker(open_jitter=0.5, seed=8)
        c.record_timeout(0.0)
        assert c.reopen_at != a.reopen_at

    def test_config_validation(self):
        with pytest.raises(OverloadError):
            CircuitBreaker(BreakerConfig(failure_threshold=0.0))
        with pytest.raises(OverloadError):
            CircuitBreaker(BreakerConfig(ewma_alpha=1.5))
        with pytest.raises(OverloadError):
            CircuitBreaker(BreakerConfig(open_duration=0.0))
        with pytest.raises(OverloadError):
            CircuitBreaker(BreakerConfig(half_open_probes=0))


# -- retry_call -----------------------------------------------------------


class _Flaky:
    def __init__(self, failures: int, exc: type = ValueError) -> None:
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("transient")
        return "ok"


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        stats = RetryStats()
        fn = _Flaky(2)
        assert retry_call(fn, attempts=3, stats=stats) == "ok"
        assert fn.calls == 3
        assert stats.calls == 1
        assert stats.retries == 2
        assert stats.giveups == 0
        assert stats.backoff_total > 0.0

    def test_exhausted_attempts_reraise_original_type(self):
        stats = RetryStats()
        with pytest.raises(ValueError):
            retry_call(_Flaky(5), attempts=3, stats=stats)
        assert stats.giveups == 1
        assert stats.retries == 2

    def test_backoff_schedule_is_deterministic_in_seed(self):
        a, b = RetryStats(), RetryStats()
        with pytest.raises(ValueError):
            retry_call(_Flaky(9), attempts=4, seed=3, stats=a)
        with pytest.raises(ValueError):
            retry_call(_Flaky(9), attempts=4, seed=3, stats=b)
        assert a.backoff_total == b.backoff_total

    def test_deadline_bounds_cumulative_backoff(self):
        stats = RetryStats()
        with pytest.raises(ValueError):
            retry_call(
                _Flaky(9),
                attempts=10,
                base_delay=0.01,
                max_delay=0.01,
                deadline=0.015,  # room for one 0.01 backoff, not two
                stats=stats,
            )
        assert stats.retries == 1
        assert stats.giveups == 1

    def test_non_retryable_exception_propagates_immediately(self):
        fn = _Flaky(5, exc=KeyError)
        with pytest.raises(KeyError):
            retry_call(fn, attempts=5, retry_on=(ValueError,))
        assert fn.calls == 1

    def test_on_backoff_receives_each_delay(self):
        seen: list[float] = []
        retry_call(_Flaky(2), attempts=3, on_backoff=seen.append)
        assert len(seen) == 2
        assert all(delay > 0 for delay in seen)

    def test_attempts_validation(self):
        with pytest.raises(OverloadError):
            retry_call(lambda: None, attempts=0)


# -- stale-decision shelf -------------------------------------------------


def _key(conn: int, src: str = PEER, service: int = VICTIM) -> CacheKey:
    return CacheKey(src=src, service_id=service, connection_id=conn)


class TestStaleShelf:
    def test_shelf_survives_capacity_eviction(self):
        cache = DecisionCache(capacity=1, stale_capacity=8)
        cache.install(_key(1), Decision.forward(EGRESS))
        cache.install(_key(2), Decision.forward(EGRESS))  # evicts key 1
        assert _key(1) not in cache
        assert cache.stale_lookup(_key(1)) is not None
        assert cache.stats.stale_hits == 1

    def test_shelf_survives_random_eviction(self):
        cache = DecisionCache(capacity=64, stale_capacity=64)
        for conn in range(8):
            cache.install(_key(conn), Decision.forward(EGRESS))
        cache.evict_random_fraction(1.0)
        assert len(cache) == 0
        assert cache.stale_count == 8
        assert cache.stale_lookup(_key(3)) is not None

    def test_shelf_is_lru_bounded(self):
        cache = DecisionCache(capacity=64, stale_capacity=2)
        for conn in range(3):
            cache.install(_key(conn), Decision.forward(EGRESS))
        assert cache.stale_count == 2
        assert cache.stats.stale_evictions == 1
        assert cache.stale_lookup(_key(0)) is None  # the LRU victim
        assert cache.stats.stale_misses == 1

    def test_zero_capacity_disables_shelf(self):
        cache = DecisionCache(capacity=64, stale_capacity=0)
        cache.install(_key(1), Decision.forward(EGRESS))
        assert cache.stale_count == 0
        assert cache.stale_lookup(_key(1)) is None

    def test_invalidate_purges_shelf(self):
        cache = DecisionCache(capacity=64)
        cache.install(_key(1), Decision.forward(EGRESS))
        cache.invalidate(_key(1))
        assert cache.stale_lookup(_key(1)) is None

    def test_invalidate_connection_purges_shelf(self):
        cache = DecisionCache(capacity=1)
        cache.install(_key(1), Decision.forward(EGRESS))
        cache.install(_key(9), Decision.forward(EGRESS))  # evicts key 1 live
        # Key 1 now lives only on the shelf; teardown must still reach it.
        cache.invalidate_connection(VICTIM, 1)
        assert cache.stale_lookup(_key(1)) is None
        assert cache.stale_lookup(_key(9)) is not None

    def test_invalidate_by_target_purges_shelf(self):
        cache = DecisionCache(capacity=64)
        cache.install(_key(1), Decision.forward(EGRESS))
        cache.install(_key(2), Decision.forward(DEGRADE_PEER))
        cache.invalidate_by_target(EGRESS)
        assert cache.stale_lookup(_key(1)) is None
        assert cache.stale_lookup(_key(2)) is not None

    def test_clear_stale_wipes_shelf(self):
        cache = DecisionCache(capacity=64)
        for conn in range(4):
            cache.install(_key(conn), Decision.forward(EGRESS))
        assert cache.clear_stale() == 4
        assert cache.stale_count == 0

    def test_stale_capacity_validation(self):
        with pytest.raises(CacheError):
            DecisionCache(stale_capacity=-1)


# -- policy + admission validation ---------------------------------------


class TestPolicyAndAdmission:
    def test_fail_open_requires_peer(self):
        with pytest.raises(OverloadError):
            ServicePolicy(degrade=DegradeMode.FAIL_OPEN)

    def test_deadline_must_be_positive(self):
        with pytest.raises(OverloadError):
            ServicePolicy(deadline=0.0)

    def test_admission_config_validation(self):
        with pytest.raises(OverloadError):
            AdmissionConfig(max_parked=0)
        with pytest.raises(OverloadError):
            AdmissionConfig(punt_rate=0.0)

    def test_admission_refuses_on_queue_depth(self):
        control = AdmissionControl(AdmissionConfig(max_parked=4))
        assert control.admit(0.0, queue_depth=3)
        assert not control.admit(0.0, queue_depth=4)

    def test_admission_rate_limits_punts(self):
        control = AdmissionControl(
            AdmissionConfig(max_parked=100, punt_rate=1.0, punt_burst=2)
        )
        assert control.admit(0.0, 0)
        assert control.admit(0.0, 0)
        assert not control.admit(0.0, 0)  # burst spent, no time elapsed
        assert control.admit(10.0, 0)  # tokens refilled


# -- terminus end-to-end --------------------------------------------------


class _ForwardingService(ServiceModule):
    """Forwards every punt to EGRESS without installing (stays cold)."""

    SERVICE_ID = VICTIM
    NAME = "forwarding"

    def handle_packet(self, header, packet):
        return Verdict.forward(EGRESS, header, packet.payload)

    def handle_control(self, header, packet):
        return Verdict.drop()


class _ErroringService(_ForwardingService):
    def handle_packet(self, header, packet):
        raise ServiceError("broken handler")


class _PuntRig:
    """One SN with a cold service and a recording transmit sink."""

    def __init__(self, service: ServiceModule | None = None) -> None:
        self.sim = Simulator()
        self.node = ServiceNode(self.sim, "sn", SN_ADDR)
        self.terminus = self.node.terminus
        self.sent: list[tuple[str, ILPPacket]] = []
        self.terminus.set_transmit(
            lambda peer, pkt: self.sent.append((peer, pkt)) or True
        )
        secret = pairwise_secret(SN_ADDR, PEER)
        self.node.keystore.establish(PEER, secret)
        self.tx = PSPContext(secret)
        for peer in (EGRESS, DEGRADE_PEER):
            self.node.keystore.establish(peer, pairwise_secret(SN_ADDR, peer))
        self.node.env.load(service or _ForwardingService())

    def inject(self, conn: int = 1, flags: Flags = Flags.NONE) -> None:
        header = ILPHeader(
            service_id=VICTIM, connection_id=conn, flags=flags
        )
        packet = ILPPacket(
            l3=L3Header(src=PEER, dst=SN_ADDR),
            ilp_wire=self.tx.seal(header.encode()),
            payload=make_payload(b"z" * 8),
        )
        self.terminus.receive(packet)


class TestTerminusOverload:
    def test_hung_service_without_policy_uses_default_deadline(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.inject()
        guard = rig.terminus.overload
        assert guard.stats.deadline_misses == 1
        assert rig.terminus.stats.drops_by_service == 1
        assert rig.terminus.stats.drops_degraded == 0

    def test_deadline_miss_fails_closed_with_obs(self):
        rig = _PuntRig()
        obs = rig.node.enable_observability()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(VICTIM, ServicePolicy(deadline=1e-3))
        rig.inject()
        guard = rig.terminus.overload
        assert guard.stats.deadline_misses == 1
        assert guard.stats.degraded_closed == 1
        assert rig.terminus.stats.drops_degraded == 1
        assert obs.deadline_misses.value == 1
        assert rig.sent == []

    def test_fail_open_forwards_to_designated_peer(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(
                deadline=1e-3,
                degrade=DegradeMode.FAIL_OPEN,
                fail_open_peer=DEGRADE_PEER,
            ),
        )
        rig.inject()
        guard = rig.terminus.overload
        assert guard.stats.degraded_open == 1
        assert [peer for peer, _ in rig.sent] == [DEGRADE_PEER]
        assert rig.sent[0][1].payload.data == b"z" * 8

    def test_fail_static_serves_stale_decision(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(deadline=1e-3, degrade=DegradeMode.FAIL_STATIC),
        )
        cache = rig.terminus.cache
        cache.install(_key(7), Decision.forward(EGRESS))
        cache.evict_random_fraction(1.0)  # live entry gone, shelf survives
        rig.inject(conn=7)
        guard = rig.terminus.overload
        assert guard.stats.degraded_static == 1
        assert [peer for peer, _ in rig.sent] == [EGRESS]

    def test_fail_static_miss_falls_closed(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(deadline=1e-3, degrade=DegradeMode.FAIL_STATIC),
        )
        rig.inject(conn=9)
        guard = rig.terminus.overload
        assert guard.stats.static_misses == 1
        assert guard.stats.degraded_closed == 1

    def test_slowdown_within_deadline_succeeds(self):
        rig = _PuntRig()
        rig.node.env.inject_slowdown(VICTIM, 1e-4)
        rig.node.set_service_policy(VICTIM, ServicePolicy(deadline=1e-2))
        rig.inject()
        assert rig.terminus.overload.stats.deadline_misses == 0
        assert [peer for peer, _ in rig.sent] == [EGRESS]

    def test_slowdown_beyond_deadline_times_out(self):
        rig = _PuntRig()
        rig.node.env.inject_slowdown(VICTIM, 1e-1)
        rig.node.set_service_policy(VICTIM, ServicePolicy(deadline=1e-3))
        rig.inject()
        assert rig.terminus.overload.stats.deadline_misses == 1
        assert rig.sent == []

    def test_service_errors_feed_the_breaker(self):
        rig = _PuntRig(_ErroringService())
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(
                breaker=BreakerConfig(
                    min_samples=2, ewma_alpha=1.0, open_jitter=0.0
                )
            ),
        )
        rig.inject(conn=1)
        rig.inject(conn=2)
        breaker = rig.terminus.overload.breakers[VICTIM]
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.errors == 2

    def test_breaker_trip_short_circuit_and_recovery(self):
        rig = _PuntRig()
        obs = rig.node.enable_observability()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(
                deadline=1e-3,
                breaker=BreakerConfig(
                    min_samples=1,
                    ewma_alpha=1.0,
                    open_duration=0.5,
                    open_jitter=0.0,
                    half_open_probes=2,
                    close_after=1,
                ),
            ),
        )
        rig.inject(conn=1)  # timeout -> trip
        breaker = rig.terminus.overload.breakers[VICTIM]
        assert breaker.state is BreakerState.OPEN
        assert obs.breaker_trips.value == 1
        punts_after_trip = rig.terminus.stats.punts
        rig.inject(conn=2)  # short-circuited, never invoked
        guard = rig.terminus.overload
        assert guard.stats.short_circuits == 1
        assert rig.terminus.stats.punts == punts_after_trip
        assert obs.short_circuits.value == 1
        assert obs.breakers_open.value == 1.0
        # Heal the service and let the open period elapse in sim time.
        cleared_at = rig.sim.now
        assert rig.node.env.clear_service_fault(VICTIM)
        rig.sim.run(until=1.0)
        rig.inject(conn=3)  # half-open probe succeeds -> closed
        assert breaker.state is BreakerState.CLOSED
        recovered = breaker.recovered_at()
        assert recovered is not None
        assert recovered - cleared_at <= 2.0
        assert [peer for peer, _ in rig.sent] == [EGRESS]

    def test_barriers_are_exempt_from_short_circuit(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(
                deadline=1e-3,
                degrade=DegradeMode.FAIL_OPEN,
                fail_open_peer=DEGRADE_PEER,
                breaker=BreakerConfig(
                    min_samples=1, ewma_alpha=1.0, open_jitter=0.0
                ),
            ),
        )
        rig.inject(conn=1)  # trips the breaker
        punts = rig.terminus.stats.punts
        rig.inject(conn=1, flags=Flags.CONTROL)
        # The barrier still punted (no short-circuit) and failed CLOSED,
        # never open: teardown must not be forwarded unserviced.
        assert rig.terminus.stats.punts == punts + 1
        guard = rig.terminus.overload
        assert guard.stats.degraded_closed == 1
        assert [peer for peer, _ in rig.sent] == [DEGRADE_PEER]  # data only

    def test_admission_sheds_cold_leads_only(self):
        rig = _PuntRig()
        obs = rig.node.enable_observability()
        rig.node.enable_admission_control(
            AdmissionConfig(max_parked=64, punt_rate=1.0, punt_burst=1)
        )
        rig.inject(conn=1)  # admitted (burst token)
        rig.inject(conn=2)  # shed: bucket empty at the same instant
        rig.inject(conn=3, flags=Flags.LAST)  # barrier: never shed
        stats = rig.terminus.stats
        guard = rig.terminus.overload
        assert stats.drops_shed == 1
        assert guard.stats.shed_packets == 1
        assert obs.sheds.value == 1
        assert stats.punts == 2  # the admitted lead and the barrier

    def test_crash_resets_breakers_and_clears_shelf(self):
        rig = _PuntRig()
        rig.node.env.inject_hang(VICTIM)
        rig.node.set_service_policy(
            VICTIM,
            ServicePolicy(
                deadline=1e-3,
                breaker=BreakerConfig(
                    min_samples=1, ewma_alpha=1.0, open_jitter=0.0
                ),
            ),
        )
        cache = rig.terminus.cache
        cache.install(_key(5), Decision.forward(EGRESS))
        rig.inject(conn=1)
        assert rig.terminus.overload.breakers[VICTIM].state is BreakerState.OPEN
        assert cache.stale_count > 0
        rig.node.crash()
        # Breakers restart closed (volatile soft state); the shelf is gone
        # (a crashed node must not serve pre-crash stale decisions); the
        # policy itself survives (control-plane configuration).
        assert rig.terminus.overload.breakers[VICTIM].state is BreakerState.CLOSED
        assert cache.stale_count == 0
        assert VICTIM in rig.terminus.overload.policies


# -- monitoring regression (mirrors TestSnapshotDropAccounting) ----------


class TestSnapshotOverloadAccounting:
    def test_shed_and_degraded_drops_count_in_snapshot(self):
        node = ServiceNode(Simulator(), "sn", SN_ADDR)
        node.terminus.stats.drops_shed += 2
        node.terminus.stats.drops_degraded += 3
        snap = snapshot_sn(node)
        assert snap.drops == 5

    def test_snapshot_reports_breaker_states(self):
        node = ServiceNode(Simulator(), "sn", SN_ADDR)
        node.set_service_policy(
            VICTIM,
            ServicePolicy(
                breaker=BreakerConfig(
                    min_samples=1, ewma_alpha=1.0, open_jitter=0.0
                )
            ),
        )
        assert snapshot_sn(node).breakers_open == 0
        breaker = node.terminus.overload.breakers[VICTIM]
        breaker.record_timeout(0.0)
        snap = snapshot_sn(node)
        assert snap.breakers_open == 1
        assert snap.breakers_half_open == 0
        breaker.allow(10.0)  # open period elapsed -> half-open probe
        snap = snapshot_sn(node)
        assert snap.breakers_open == 0
        assert snap.breakers_half_open == 1

    def test_snapshot_reports_overload_counters(self):
        node = ServiceNode(Simulator(), "sn", SN_ADDR)
        guard = node.terminus.overload
        guard.stats.shed_packets = 4
        guard.stats.deadline_misses = 2
        node.terminus.stats.punts = 8
        node.cache.install(_key(1), Decision.forward(EGRESS))
        snap = snapshot_sn(node)
        assert snap.shed == 4
        assert snap.deadline_misses == 2
        assert snap.deadline_miss_rate == 0.25
        assert snap.stale_entries == 1

    def test_deadline_miss_rate_is_zero_without_punts(self):
        snap = snapshot_sn(ServiceNode(Simulator(), "sn", SN_ADDR))
        assert snap.deadline_miss_rate == 0.0

    def test_report_rows_carry_overload_columns(self):
        node = ServiceNode(Simulator(), "sn", SN_ADDR)
        node.set_service_policy(
            VICTIM,
            ServicePolicy(
                breaker=BreakerConfig(
                    min_samples=1, ewma_alpha=1.0, open_jitter=0.0
                )
            ),
        )
        node.terminus.overload.breakers[VICTIM].record_timeout(0.0)
        node.terminus.overload.stats.shed_packets = 7
        node.terminus.stats.drops_shed = 7
        report = FederationReport(taken_at=0.0, snapshots=[snapshot_sn(node)])
        (row,) = report.to_rows()
        assert row["shed"] == 7
        assert row["brk!"] == 1
        assert row["drops"] == 7

"""Unit tests for the WireGuard-like tunnel substrate (Appendix C)."""

import pytest

from repro.wireguard import (
    HANDSHAKE_INITIATION_BYTES,
    HANDSHAKE_RESPONSE_BYTES,
    KEEPALIVE_BYTES,
    TunnelError,
    TunnelMesh,
    WireGuardTunnel,
)


class TestTunnel:
    def test_handshake_establishes(self):
        tunnel = WireGuardTunnel("a", "b")
        used = tunnel.handshake(now=0.0)
        assert tunnel.established
        assert used == HANDSHAKE_INITIATION_BYTES + HANDSHAKE_RESPONSE_BYTES
        assert tunnel.epoch == 1

    def test_transport_roundtrip(self):
        tunnel = WireGuardTunnel("a", "b")
        tunnel.handshake(0.0)
        blob = tunnel.encrypt(b"payload")
        assert tunnel.decrypt(blob) == b"payload"
        assert b"payload" not in blob

    def test_transport_before_handshake_rejected(self):
        tunnel = WireGuardTunnel("a", "b")
        with pytest.raises(TunnelError):
            tunnel.encrypt(b"x")

    def test_rekey_rotates_keys(self):
        tunnel = WireGuardTunnel("a", "b")
        tunnel.handshake(0.0)
        old_blob = tunnel.encrypt(b"x")
        tunnel.rekey(180.0)
        assert tunnel.epoch == 2
        new_blob = tunnel.encrypt(b"x")
        # Old blob no longer decrypts (keys rotated).
        with pytest.raises(Exception):
            tunnel.decrypt(old_blob)
        assert tunnel.decrypt(new_blob) == b"x"

    def test_rekey_before_handshake_rejected(self):
        with pytest.raises(TunnelError):
            WireGuardTunnel("a", "b").rekey(0.0)

    def test_keepalive_updates_schedule(self):
        tunnel = WireGuardTunnel("a", "b", keepalive_interval=25.0)
        tunnel.handshake(0.0)
        assert tunnel.next_keepalive_at == 25.0
        used = tunnel.keepalive(25.0)
        assert used == KEEPALIVE_BYTES
        assert tunnel.next_keepalive_at == 50.0

    def test_stats_accumulate(self):
        tunnel = WireGuardTunnel("a", "b")
        tunnel.handshake(0.0)
        tunnel.rekey(180.0)
        tunnel.keepalive(200.0)
        assert tunnel.stats.handshakes == 2
        assert tunnel.stats.rekeys == 1
        assert tunnel.stats.keepalives_sent == 1
        assert tunnel.stats.control_bytes == 2 * (
            HANDSHAKE_INITIATION_BYTES + HANDSHAKE_RESPONSE_BYTES
        ) + KEEPALIVE_BYTES


class TestMesh:
    def test_add_peers(self):
        mesh = TunnelMesh("border", keepalives_enabled=False)
        mesh.add_peers(50)
        assert len(mesh) == 50
        assert all(t.established for t in mesh.tunnels.values())

    def test_duplicate_peer_rejected(self):
        mesh = TunnelMesh("border")
        mesh.add_peer("p")
        with pytest.raises(ValueError):
            mesh.add_peer("p")

    def test_rekeys_at_interval(self):
        mesh = TunnelMesh("border", rekey_interval=180.0, keepalives_enabled=False)
        mesh.add_peers(10)
        report = mesh.advance(until=180.0 * 3)
        assert report.rekeys == 30  # 3 rounds x 10 tunnels
        assert report.tunnels == 10
        assert all(t.epoch == 4 for t in mesh.tunnels.values())

    def test_keepalives_at_interval(self):
        mesh = TunnelMesh("border", rekey_interval=1e9, keepalive_interval=25.0)
        mesh.add_peers(4)
        report = mesh.advance(until=100.0)
        assert report.keepalives == 16  # floor(100/25)=4 per tunnel

    def test_bandwidth_linear_in_tunnels(self):
        small = TunnelMesh("a", keepalives_enabled=False)
        small.add_peers(10)
        large = TunnelMesh("b", keepalives_enabled=False)
        large.add_peers(100)
        r_small = small.advance(until=360.0)
        r_large = large.advance(until=360.0)
        assert r_large.bandwidth_mbps == pytest.approx(
            10 * r_small.bandwidth_mbps, rel=0.01
        )

    def test_removed_peer_stops_maintenance(self):
        mesh = TunnelMesh("border", rekey_interval=10.0, keepalives_enabled=False)
        mesh.add_peers(2)
        mesh.remove_peer("peer-0")
        report = mesh.advance(until=100.0)
        assert report.tunnels == 1
        assert report.rekeys == 10

    def test_report_core_equivalents_positive(self):
        mesh = TunnelMesh("border", rekey_interval=1.0, keepalives_enabled=False)
        mesh.add_peers(100)
        report = mesh.advance(until=10.0)
        assert report.cpu_seconds >= 0.0
        assert report.core_equivalents == report.cpu_seconds / 10.0

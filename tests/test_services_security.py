"""Tests for the security services: firewall, ZTNA, DDoS, VPN, SD-WAN."""

import pytest

from repro import WellKnownService
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.services.ddos import (
    OP_ATTACK_MODE,
    TLV_PUZZLE_SOLUTION,
    make_puzzle_challenge,
    solve_puzzle,
)
from repro.services.firewall import Rule, RuleSet
from repro.services.sdwan import PathMetric, PathSelector
from repro.services.vpn import (
    TLV_AUTH_TOKEN,
    VPNAuthenticator,
    mint_token,
    register_vpn_endpoint,
)
from repro.services.ztna import PosturePolicy, ZTNAPolicy, make_setup_packets


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestRuleSet:
    def test_first_match_wins(self):
        rules = RuleSet(default_allow=True)
        rules.add(Rule(allow=False, src_prefix="10.0.0.0/8"))
        rules.add(Rule(allow=True, src_prefix="10.1.0.0/16"))  # shadowed
        assert not rules.check("10.1.2.3", None, 1)

    def test_default_policy(self):
        assert RuleSet(default_allow=True).check("1.2.3.4", "5.6.7.8", 1)
        assert not RuleSet(default_allow=False).check("1.2.3.4", "5.6.7.8", 1)

    def test_service_id_match(self):
        rules = RuleSet()
        rules.add(Rule(allow=False, service_id=7))
        assert not rules.check(None, None, 7)
        assert rules.check(None, None, 8)

    def test_dst_prefix_match(self):
        rules = RuleSet()
        rules.add(Rule(allow=False, dst_prefix="192.168.0.0/24"))
        assert not rules.check("1.1.1.1", "192.168.0.9", 1)
        assert rules.check("1.1.1.1", "192.168.1.9", 1)

    def test_missing_fields_do_not_match_prefixed_rules(self):
        rules = RuleSet(default_allow=True)
        rules.add(Rule(allow=False, src_prefix="10.0.0.0/8"))
        assert rules.check(None, None, 1)  # no src -> rule can't match

    def test_denial_counter(self):
        rules = RuleSet(default_allow=False)
        rules.check("1.1.1.1", None, 1)
        assert rules.denials == 1


class TestFirewallService:
    def test_blocks_denied_source(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        module = sn.env.service(WellKnownService.FIREWALL)
        module.rules.add(Rule(allow=False, src_prefix=f"{a.address}/32"))
        conn = a.connect(WellKnownService.FIREWALL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"blocked?")
        net.run(1.0)
        assert payloads(b) == []

    def test_allows_clean_traffic(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(WellKnownService.FIREWALL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"clean")
        net.run(1.0)
        assert payloads(b) == [b"clean"]

    def test_payload_signature_blocks(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        module = sn.env.service(WellKnownService.FIREWALL)
        module.add_signature("exploit", rb"\x90\x90\x90")
        conn = a.connect(WellKnownService.FIREWALL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"prefix\x90\x90\x90suffix")
        a.send(conn, b"innocent")
        net.run(1.0)
        assert payloads(b) == [b"innocent"]
        assert module.payload_blocks == 1


class TestZTNA:
    def _world(self, net):
        sn = sn_of(net, "west", 0)
        client = net.add_host(sn, name="client")
        resource = net.add_host(sn_of(net, "east", 0), name="resource")
        module = sn.env.service(WellKnownService.ZTNA)
        module.policy = ZTNAPolicy(posture=PosturePolicy(min_os_build=100))
        module.policy.grant(resource.address, "alice@corp")
        return sn, client, resource, module

    def _send_setup(self, net, client, resource, identity, posture, then=b"app-data"):
        conn = client.connect(
            WellKnownService.ZTNA, dest_addr=resource.address, allow_direct=False
        )
        packets = make_setup_packets(identity, posture, fragment_size=16)
        for i, tlvs in enumerate(packets):
            last = i == len(packets) - 1
            client.send(
                conn,
                then if last else b"",
                extra_tlvs=dict(tlvs),
                first=(i == 0),
                extra_flags=0 if last else Flags.MORE_HEADER,
            )
        net.run(1.0)
        return conn

    def test_authorized_posture_admitted(self, two_edomain_net):
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        self._send_setup(
            net, client, resource, "alice@corp", {"os_build": 120, "agent": True}
        )
        assert payloads(resource) == [b"app-data"]
        assert module.denials == 0

    def test_wrong_identity_denied(self, two_edomain_net):
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        self._send_setup(net, client, resource, "mallory", {"os_build": 120})
        assert payloads(resource) == []
        assert module.denials >= 1

    def test_stale_os_denied(self, two_edomain_net):
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        self._send_setup(net, client, resource, "alice@corp", {"os_build": 50})
        assert payloads(resource) == []

    def test_data_without_setup_denied(self, two_edomain_net):
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        conn = client.connect(
            WellKnownService.ZTNA, dest_addr=resource.address, allow_direct=False
        )
        client.send(conn, b"barge-in", first=False)
        net.run(1.0)
        assert payloads(resource) == []
        assert module.denials == 1

    def test_cache_eviction_readmits_without_reauth(self, two_edomain_net):
        """§B.2: the service's internal table survives cache eviction."""
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        conn = self._send_setup(
            net, client, resource, "alice@corp", {"os_build": 120}
        )
        sn.cache.evict_random_fraction(1.0)
        client.send(conn, b"more-data", first=False)
        net.run(1.0)
        assert payloads(resource) == [b"app-data", b"more-data"]
        assert module.readmissions == 1

    def test_fragmented_posture_reassembled(self, two_edomain_net):
        net = two_edomain_net
        sn, client, resource, module = self._world(net)
        big_posture = {"os_build": 120, "agent": True, "patches": ["p" * 40] * 4}
        packets = make_setup_packets("alice@corp", big_posture, fragment_size=16)
        assert len(packets) > 2  # genuinely fragmented
        self._send_setup(net, client, resource, "alice@corp", big_posture)
        assert payloads(resource) == [b"app-data"]


class TestDDoS:
    def _world(self, net):
        sn = sn_of(net, "west", 0)
        attacker = net.add_host(sn, name="attacker")
        victim = net.add_host(sn_of(net, "east", 0), name="victim")
        module = sn.env.service(WellKnownService.DDOS_PROTECT)
        module.protected.add(victim.address)
        return sn, attacker, victim, module

    def test_rate_limit_drops_flood(self, two_edomain_net):
        net = two_edomain_net
        sn, attacker, victim, module = self._world(net)
        module.policy.burst_bytes = 1000
        conn = attacker.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=victim.address, allow_direct=False
        )
        for _ in range(50):
            attacker.send(conn, b"x" * 100)
        net.run(1.0)
        assert module.dropped_rate > 0
        assert len(payloads(victim)) < 50

    def test_unprotected_dest_untouched(self, two_edomain_net):
        net = two_edomain_net
        sn, attacker, victim, module = self._world(net)
        other = net.add_host(sn_of(net, "east", 0), name="other")
        conn = attacker.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=other.address, allow_direct=False
        )
        for _ in range(5):
            attacker.send(conn, b"ok")
        net.run(1.0)
        assert len(payloads(other)) == 5

    def test_attack_mode_requires_puzzle(self, two_edomain_net):
        net = two_edomain_net
        sn, client, victim, module = self._world(net)
        module.policy.puzzle_difficulty = 8
        module.attack_mode.add(victim.address)
        conn = client.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=victim.address, allow_direct=False
        )
        client.send(conn, b"no-puzzle")
        net.run(1.0)
        assert payloads(victim) == []
        assert module.dropped_puzzle == 1
        # Now solve the puzzle and retry.
        challenge = make_puzzle_challenge(
            victim.address, client.address, module.puzzle_epoch
        )
        solution = solve_puzzle(challenge, 8)
        client.send(conn, b"with-puzzle", extra_tlvs={TLV_PUZZLE_SOLUTION: solution})
        net.run(1.0)
        assert payloads(victim) == [b"with-puzzle"]
        # Once admitted, subsequent packets need no puzzle.
        client.send(conn, b"follow-up")
        net.run(1.0)
        assert payloads(victim) == [b"with-puzzle", b"follow-up"]


class TestSDWAN:
    def test_path_selector_prefers_best_score(self):
        selector = PathSelector()
        selector.configure_site(
            "10.0.9.1",
            [
                PathMetric(via_sn="10.0.9.2", latency_ms=50.0),
                PathMetric(via_sn="10.0.9.3", latency_ms=10.0),
            ],
        )
        assert selector.select("10.0.9.1") == "10.0.9.3"

    def test_loss_dominates_latency(self):
        selector = PathSelector()
        selector.configure_site(
            "s",
            [
                PathMetric(via_sn="lossy-fast", latency_ms=5.0, loss_pct=2.0),
                PathMetric(via_sn="clean-slow", latency_ms=60.0, loss_pct=0.0),
            ],
        )
        assert selector.select("s") == "clean-slow"

    def test_failover(self):
        selector = PathSelector()
        selector.configure_site(
            "s",
            [
                PathMetric(via_sn="primary", latency_ms=10.0),
                PathMetric(via_sn="backup", latency_ms=30.0),
            ],
        )
        selector.mark_down("s", "primary")
        assert selector.select("s") == "backup"
        assert selector.failovers == 1
        selector.mark_up("s", "primary")
        assert selector.select("s") == "primary"

    def test_all_paths_down(self):
        selector = PathSelector()
        selector.configure_site("s", [PathMetric(via_sn="only", latency_ms=1.0)])
        selector.mark_down("s", "only")
        assert selector.select("s") is None

    def test_service_steers_via_selected_sn(self, two_edomain_net):
        net = two_edomain_net
        sn_src = sn_of(net, "west", 0)
        sn_alt = sn_of(net, "west", 1)
        dest_sn = sn_of(net, "east", 0)
        client = net.add_host(sn_src, name="client")
        server = net.add_host(dest_sn, name="server")
        module = sn_src.env.service(WellKnownService.SDWAN)
        module.selector.configure_site(
            dest_sn.address,
            [PathMetric(via_sn=sn_alt.address, latency_ms=1.0)],
        )
        conn = client.connect(
            WellKnownService.SDWAN,
            dest_addr=server.address,
            dest_sn=dest_sn.address,
            allow_direct=False,
        )
        client.send(conn, b"steered")
        net.run(1.0)
        assert payloads(server) == [b"steered"]
        # The alternate SN actually carried the traffic.
        assert sn_alt.terminus.stats.packets_in >= 1
        assert module.path_decisions == 1


class TestVPN:
    def test_auth_flow(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        public_addr = "203.0.113.10"
        inner = net.add_host(sn, name="inner")
        auth_host = net.add_host(sn_of(net, "west", 1), name="auth")
        visitor = net.add_host(sn_of(net, "east", 0), name="visitor")
        token_key = b"k" * 32
        register_vpn_endpoint(inner, public_addr, auth_host.address, token_key)
        authenticator = VPNAuthenticator(
            host=auth_host, token_key=token_key, credentials={"s3cret"}
        )
        authenticator.install()
        net.run(1.0)
        module = sn.env.service(WellKnownService.VPN)
        assert public_addr in module.endpoints

        # Unauthenticated traffic is redirected to the authenticator.
        conn = visitor.connect(
            WellKnownService.VPN,
            dest_addr=public_addr,
            dest_sn=sn.address,
            allow_direct=False,
        )
        visitor.send(conn, b"s3cret")  # credential as the redirected payload
        net.run(1.0)
        assert module.redirected == 1
        assert authenticator.approved == [visitor.address]
        token_msgs = [d for d in payloads(visitor) if d.startswith(b"VPN-TOKEN:")]
        assert token_msgs
        token = bytes.fromhex(token_msgs[0].split(b":", 1)[1].decode())

        # With the token, traffic reaches the inner host.
        visitor.send(conn, b"hello-inner", extra_tlvs={TLV_AUTH_TOKEN: token})
        net.run(1.0)
        assert payloads(inner) == [b"hello-inner"]
        assert module.admitted == 1

    def test_bad_credential_gets_no_token(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        inner = net.add_host(sn, name="inner")
        auth_host = net.add_host(sn, name="auth")
        visitor = net.add_host(sn_of(net, "east", 0), name="visitor")
        token_key = b"k" * 32
        register_vpn_endpoint(inner, "203.0.113.11", auth_host.address, token_key)
        authenticator = VPNAuthenticator(
            host=auth_host, token_key=token_key, credentials={"right"}
        )
        authenticator.install()
        net.run(1.0)
        conn = visitor.connect(
            WellKnownService.VPN,
            dest_addr="203.0.113.11",
            dest_sn=sn.address,
            allow_direct=False,
        )
        visitor.send(conn, b"wrong")
        net.run(1.0)
        assert authenticator.approved == []
        assert payloads(inner) == []

    def test_forged_token_rejected(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        inner = net.add_host(sn, name="inner")
        auth_host = net.add_host(sn, name="auth")
        visitor = net.add_host(sn_of(net, "east", 0), name="visitor")
        register_vpn_endpoint(inner, "203.0.113.12", auth_host.address, b"k" * 32)
        net.run(1.0)
        conn = visitor.connect(
            WellKnownService.VPN,
            dest_addr="203.0.113.12",
            dest_sn=sn.address,
            allow_direct=False,
        )
        visitor.send(conn, b"x", extra_tlvs={TLV_AUTH_TOKEN: b"\x00" * 32})
        net.run(1.0)
        assert payloads(inner) == []
        module = sn.env.service(WellKnownService.VPN)
        assert module.redirected == 1  # treated as unauthenticated

"""Edge-case tests across service modules (branches not covered elsewhere)."""

import pytest

from repro import WellKnownService
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.services.multipoint import (
    OP_DENIED,
    join_group,
    leave_group,
    publish,
    register_sender,
    request_replay,
)


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestMultipointEdges:
    def test_leave_without_join_acks_denied(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        acks = []
        host.on_service_control(
            WellKnownService.MULTICAST,
            lambda cid, h, p: acks.append(h.tlvs.get(TLV.SERVICE_OPTS)),
        )
        leave_group(host, WellKnownService.MULTICAST, "never-joined")
        net.run(1.0)
        assert acks == [OP_DENIED]

    def test_replay_denied_for_multicast(self, two_edomain_net):
        """Replay is a pub/sub capability; multicast has no retention."""
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        request_replay(host, WellKnownService.MULTICAST, "g")
        net.run(1.0)
        assert payloads(host) == []

    def test_publish_without_topic_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        conn = host.connect(WellKnownService.MULTICAST, allow_direct=False)
        host.send(conn, b"no-topic")
        net.run(1.0)
        assert sn.terminus.stats.drops_by_service >= 1

    def test_control_missing_fields_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        # join without TOPIC TLV
        host.send_control(
            WellKnownService.MULTICAST, {TLV.SERVICE_OPTS: b"join"}
        )
        net.run(1.0)
        agent = sn.core_client.membership
        assert agent.local_members == {}

    def test_pubsub_sender_can_also_subscribe_other_topics(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        node = net.add_host(sn, name="node")
        other = net.add_host(sn, name="other")
        for topic in ("a", "b"):
            group = f"pubsub:{topic}"
            net.lookup.register_group(group, node.keypair)
            net.lookup.post_open_group(group, node.keypair)
        join_group(node, WellKnownService.PUBSUB, "b")
        register_sender(node, WellKnownService.PUBSUB, "a")
        register_sender(other, WellKnownService.PUBSUB, "b")
        net.run(1.0)
        publish(other, WellKnownService.PUBSUB, "b", b"to-node")
        net.run(1.0)
        assert payloads(node) == [b"to-node"]


class TestPrivateRelayEdges:
    def test_garbage_payload_unroutable_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        conn = host.connect(WellKnownService.PRIVATE_RELAY, allow_direct=False)
        host.send(conn, b"not-an-onion-at-all")
        net.run(1.0)
        # No DEST_ADDR/DEST_SN: the relay fallback can't route it.
        assert sn.terminus.stats.drops_by_service >= 1


class TestTimeOrderedEdges:
    def test_no_dest_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        host = net.add_host(sn, name="h")
        conn = host.connect(WellKnownService.TIME_ORDERED, allow_direct=False)
        host.send(conn, b"to-nowhere")
        net.run(1.0)
        assert sn.terminus.stats.drops_by_service == 1

    def test_same_sender_preserves_order(self, two_edomain_net):
        net = two_edomain_net
        sender = net.add_host(sn_of(net, "west", 0), name="s")
        dest = net.add_host(sn_of(net, "east", 0), name="d")
        conn = sender.connect(
            WellKnownService.TIME_ORDERED, dest_addr=dest.address, allow_direct=False
        )
        for i in range(5):
            sender.send(conn, f"{i}".encode())
            net.run(0.001)
        net.run(2.0)
        assert payloads(dest) == [b"0", b"1", b"2", b"3", b"4"]


class TestVPNEdges:
    def test_token_bound_to_source(self, two_edomain_net):
        """A token minted for one source does not admit another."""
        from repro.services.vpn import TLV_AUTH_TOKEN, mint_token, register_vpn_endpoint

        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        inner = net.add_host(sn, name="inner")
        auth = net.add_host(sn, name="auth")
        mallory = net.add_host(sn_of(net, "east", 0), name="mallory")
        key = b"k" * 32
        register_vpn_endpoint(inner, "203.0.113.50", auth.address, key)
        net.run(0.5)
        stolen = mint_token(key, "10.9.9.9")  # someone else's token
        conn = mallory.connect(
            WellKnownService.VPN,
            dest_addr="203.0.113.50",
            dest_sn=sn.address,
            allow_direct=False,
        )
        mallory.send(conn, b"knock", extra_tlvs={TLV_AUTH_TOKEN: stolen})
        net.run(1.0)
        assert payloads(inner) == []


class TestFirewallEdges:
    def test_rules_scoped_per_sn_not_global(self, two_edomain_net):
        """Each SN's firewall module has its own rules (per-IESP policy)."""
        from repro.services.firewall import Rule

        net = two_edomain_net
        sn_w = sn_of(net, "west", 0)
        sn_e = sn_of(net, "east", 0)
        a = net.add_host(sn_w, name="a")
        b = net.add_host(sn_e, name="b")
        # Block on the *east* SN only; west's module stays permissive.
        sn_e.env.service(WellKnownService.FIREWALL).rules.add(
            Rule(allow=False, src_prefix=f"{a.address}/32")
        )
        conn = a.connect(
            WellKnownService.FIREWALL, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"crosses west fine, dies at east")
        net.run(1.0)
        assert payloads(b) == []
        assert sn_w.terminus.stats.drops_by_service == 0
        assert sn_e.terminus.stats.drops_by_service == 1


class TestHostEdges:
    def test_close_is_idempotent(self, single_sn_net):
        net = single_sn_net
        dom = net.edomains["solo"]
        sn = dom.sns[dom.sn_addresses()[0]]
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"x")
        a.close(conn)
        a.close(conn)  # second close: no error, no extra packet
        net.run(1.0)
        last_flags = [
            h.flags for h, _ in b.delivered if h.flags & Flags.LAST
        ]
        assert len(last_flags) <= 1

    def test_direct_connection_reuses_association(self, single_sn_net):
        net = single_sn_net
        dom = net.edomains["solo"]
        sn = dom.sns[dom.sn_addresses()[0]]
        from repro.netsim import Link

        a = net.add_host(sn, name="a", subnet="192.168.0.0/16")
        b = net.add_host(sn, name="b", subnet="192.168.0.0/16")
        Link(net.sim, a, b)
        conn1 = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        conn2 = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        assert conn1.direct_peer == conn2.direct_peer == b.address
        a.send(conn1, b"one")
        a.send(conn2, b"two")
        net.run(1.0)
        assert sorted(payloads(b)) == [b"one", b"two"]

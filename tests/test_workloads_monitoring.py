"""Tests for workload generators and federation monitoring."""

import pytest

from repro import WellKnownService
from repro.core.monitoring import FederationMonitor, snapshot_sn
from repro.netsim import Simulator
from repro.netsim.workloads import (
    CBRSource,
    OnOffSource,
    PoissonSource,
    WorkloadError,
    ZipfRequestStream,
)


class TestCBR:
    def test_rate_is_exact(self):
        sim = Simulator()
        got = []
        source = CBRSource(sim, lambda seq, size: got.append(sim.now), rate_bps=8000, packet_bytes=100)
        source.start()
        sim.run(until=10.0)
        # 8000 bps / 800 bits per packet = 10 pps for 10 s = 100 packets.
        assert len(got) == 100
        gaps = {round(b - a, 9) for a, b in zip(got, got[1:])}
        assert gaps == {0.1}

    def test_duration_bounds(self):
        sim = Simulator()
        got = []
        source = CBRSource(sim, lambda *a: got.append(1), rate_bps=8000, packet_bytes=100)
        source.start(duration=1.0)
        sim.run(until=100.0)
        assert len(got) == 10

    def test_stop(self):
        sim = Simulator()
        got = []
        source = CBRSource(sim, lambda *a: got.append(1), rate_bps=8000, packet_bytes=100)
        source.start()
        sim.run(until=0.55)
        source.stop()
        sim.run(until=10.0)
        assert len(got) == 5

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            CBRSource(Simulator(), lambda *a: None, rate_bps=0)


class TestPoisson:
    def test_mean_rate_converges(self):
        sim = Simulator()
        count = [0]
        source = PoissonSource(
            sim, lambda *a: count.__setitem__(0, count[0] + 1), rate_pps=100, seed=3
        )
        source.start(duration=50.0)
        sim.run(until=60.0)
        assert count[0] == pytest.approx(5000, rel=0.1)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            times = []
            source = PoissonSource(sim, lambda *a: times.append(sim.now), rate_pps=50, seed=seed)
            source.start(duration=2.0)
            sim.run(until=3.0)
            return times

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestOnOff:
    def test_produces_bursts(self):
        sim = Simulator()
        times = []
        source = OnOffSource(
            sim,
            lambda *a: times.append(sim.now),
            rate_bps=80_000,
            mean_on=0.2,
            mean_off=0.5,
            packet_bytes=100,
            seed=5,
        )
        source.start(duration=20.0)
        sim.run(until=30.0)
        assert source.bursts > 5
        assert len(times) > 50
        # Idle gaps longer than the CBR interval prove off periods exist.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) > 5 * source.interval


class TestZipf:
    def test_skew_favors_low_ranks(self):
        stream = ZipfRequestStream(catalog_size=1000, alpha=1.0, seed=1)
        draws = stream.take(10_000)
        top10 = sum(1 for d in draws if d < 10)
        uniform_expect = 10_000 * 10 / 1000
        assert top10 > 3 * uniform_expect

    def test_expected_hit_rate_monotone(self):
        stream = ZipfRequestStream(catalog_size=500, alpha=0.9)
        rates = [stream.expected_hit_rate(n) for n in (10, 50, 200, 500)]
        assert rates == sorted(rates)
        assert rates[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfRequestStream(catalog_size=0)
        with pytest.raises(WorkloadError):
            ZipfRequestStream(catalog_size=10, alpha=0.0)


class TestMonitoring:
    def _busy_net(self, two_edomain_net):
        net = two_edomain_net
        dom = net.edomains["west"]
        sn = dom.sns[dom.sn_addresses()[0]]
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        for _ in range(10):
            a.send(conn, b"x")
        net.run(1.0)
        return net, sn

    def test_sn_snapshot_counts(self, two_edomain_net):
        net, sn = self._busy_net(two_edomain_net)
        snap = snapshot_sn(sn)
        assert snap.packets_in == 10
        assert snap.fast_path == 9
        assert snap.punts == 1
        assert snap.fast_path_fraction == pytest.approx(0.9)
        assert snap.associated_hosts == 2
        assert snap.services == 22

    def test_federation_report_aggregates(self, two_edomain_net):
        net, sn = self._busy_net(two_edomain_net)
        monitor = FederationMonitor(net)
        report = monitor.collect()
        assert report.total_packets == 10
        assert report.overall_fast_path_fraction == pytest.approx(0.9)
        assert set(report.by_edomain()) == {"west", "east"}
        assert report.hottest_sns(1)[0].address == sn.address
        assert len(report.to_rows()) == 4

    def test_periodic_collection_and_deltas(self, two_edomain_net):
        net, sn = self._busy_net(two_edomain_net)
        monitor = FederationMonitor(net)
        monitor.start_periodic(interval=5.0)
        net.run(11.0)
        assert len(monitor.history) == 2
        deltas = monitor.deltas()
        assert deltas["interval"] == 5
        assert deltas["packets"] == 0  # no traffic between collections

    def test_deltas_need_two_reports(self, two_edomain_net):
        monitor = FederationMonitor(two_edomain_net)
        monitor.collect()
        assert monitor.deltas() is None

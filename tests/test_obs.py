"""Unit tests for the observability subsystem (repro.obs).

Covers the metrics registry (counters, gauges, log-bucketed histograms),
the flight recorder ring (sampling, capacity, trace context), the
exporters, the per-node wiring through ServiceNode.enable_observability /
REPRO_OBS, the engine's compaction counter, and the snapshot_sn drop
accounting regression (miss-queue drops must appear in SNSnapshot.drops).
"""

from __future__ import annotations

import json

import pytest

from repro.core.monitoring import snapshot_sn
from repro.core.service_node import ServiceNode
from repro.obs import (
    NULL_RECORDER,
    NULL_SPAN,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeObs,
    NullRecorder,
    ObsError,
    enabled_from_env,
    merged_registry,
    snapshot_dict,
    to_json,
    to_table,
)
from repro.netsim import Simulator


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ObsError):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge()
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_rejects_bad_relative_error(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ObsError):
                Histogram(relative_error=bad)

    def test_empty_reads(self):
        h = Histogram()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        assert h.summary() == {"count": 0}

    def test_nonpositive_values_are_exact_zeros(self):
        h = Histogram()
        h.record(0.0)
        h.record(-1.0)
        h.record(5.0)
        assert h.zeros == 2
        assert h.count == 3
        assert h.quantile(0.0) == 0.0
        # Rank 2 of 3 still falls in the zero bucket.
        assert h.quantile(0.5) == 0.0

    def test_quantile_within_relative_error(self):
        h = Histogram(relative_error=0.01)
        values = [1e-6, 5e-6, 2e-5, 1e-4, 3e-3, 0.5, 7.0]
        for v in values:
            h.record(v)
        for q, expect in ((0.0, values[0]), (1.0, values[-1])):
            got = h.quantile(q)
            assert abs(got - expect) <= 0.01 * expect

    def test_record_many_matches_repeated_record(self):
        a, b = Histogram(), Histogram()
        a.record_many(3.3e-5, 7)
        for _ in range(7):
            b.record(3.3e-5)
        assert a.bucket_counts() == b.bucket_counts()
        assert a.count == b.count == 7
        assert a.quantile(0.5) == b.quantile(0.5)

    def test_record_many_nonpositive_n_is_noop(self):
        h = Histogram()
        h.record_many(1.0, 0)
        h.record_many(1.0, -3)
        assert h.count == 0

    def test_merge_requires_same_relative_error(self):
        with pytest.raises(ObsError):
            Histogram(0.01).merge(Histogram(0.02))

    def test_merge_and_copy(self):
        a, b = Histogram(), Histogram()
        a.record(1e-5)
        b.record(2e-3)
        b.record(0.0)
        snap = a.copy()
        merged = Histogram.merged([a, b])
        assert merged.count == 3
        assert merged.zeros == 1
        assert merged.min == 0.0
        assert merged.max == 2e-3
        # merged() must not mutate its parts.
        assert a.bucket_counts() == snap.bucket_counts()
        assert a.count == snap.count

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ObsError):
            Histogram().quantile(1.5)

    def test_summary_and_percentile(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert abs(s["mean"] - 2.0) < 1e-9
        assert h.percentile(50) == h.quantile(0.5)


class TestMetricsRegistry:
    def test_get_or_create_and_kind_conflicts(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        assert reg.counter("a.b") is c
        with pytest.raises(ObsError):
            reg.gauge("a.b")
        with pytest.raises(ObsError):
            reg.histogram("a.b")
        reg.histogram("h")
        with pytest.raises(ObsError):
            reg.counter("h")

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.gauge("z")
        reg.counter("a")
        assert reg.names() == ["a", "z"]
        assert reg.get("a") is reg.counter("a")
        assert reg.get("missing") is None

    def test_merge_adds_and_merges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(1.5)
        a.histogram("h").record(1.0)
        b.histogram("h").record(2.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 1.5
        assert a.histogram("h").count == 2

    def test_merged_registry_mutates_nothing(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        out = merged_registry([a, b])
        assert out.counter("c").value == 3
        assert a.counter("c").value == 1

    def test_snapshot_nests_dotted_names(self):
        reg = MetricsRegistry()
        reg.counter("terminus.fast_path").inc(9)
        reg.gauge("queue.depth").set(2)
        snap = reg.snapshot()
        assert snap["terminus"]["fast_path"] == 9
        assert snap["queue"]["depth"] == 2.0

    def test_snapshot_prefix_collision_keeps_both(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(1)
        reg.counter("a.b").inc(2)
        snap = reg.snapshot()
        assert snap["a"][""] == 1
        assert snap["a"]["b"] == 2


class TestFlightRecorder:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=-1)

    def test_records_spans_in_begin_order(self):
        clock = [0.0]
        rec = FlightRecorder(clock=lambda: clock[0])
        trace = rec.new_trace()
        span = rec.begin_span("receive", n=3)
        clock[0] = 1.5
        rec.event("decrypt", peer="p")
        rec.end_span(span)
        assert rec.sequence() == ["receive", "decrypt"]
        assert span.trace == trace
        assert span.start == 0.0
        assert span.end == 1.5
        assert span.duration == 1.5
        assert span.done

    def test_span_context_manager(self):
        rec = FlightRecorder()
        rec.new_trace()
        with rec.span("stage") as span:
            pass
        assert span.done
        # Closing again is a no-op (end stamp is sticky).
        end = span.end
        span.close()
        assert span.end == end

    def test_sampling_every_other_trace(self):
        rec = FlightRecorder(sample_every=2)
        kept = []
        for i in range(4):
            rec.new_trace()
            if rec.recording:
                kept.append(i)
            span = rec.begin_span("s", i=i)
            rec.end_span(span)
        assert kept == [0, 2]
        assert rec.traces_started == 4
        assert rec.traces_sampled == 2
        # Unsampled begins hand out the shared null span.
        assert len(rec) == 2
        assert rec.spans(name="s", i=1) == []

    def test_sample_every_zero_records_nothing(self):
        rec = FlightRecorder(sample_every=0)
        rec.new_trace()
        assert not rec.recording
        span = rec.begin_span("s")
        rec.end_span(span)
        assert span is NULL_SPAN
        rec.event("e")
        assert len(rec) == 0
        assert rec.traces_sampled == 0

    def test_capacity_bounds_ring_and_counts_drops(self):
        rec = FlightRecorder(capacity=3)
        rec.new_trace()
        for i in range(5):
            span = rec.begin_span("s", i=i)
            rec.end_span(span)
        assert len(rec) == 3
        assert rec.spans_dropped == 2
        assert [s.attrs["i"] for s in rec.iter_spans()] == [2, 3, 4]

    def test_queries_filter_by_name_trace_and_attrs(self):
        rec = FlightRecorder()
        t1 = rec.new_trace()
        rec.event("a", peer="x")
        t2 = rec.new_trace()
        rec.event("a", peer="y")
        rec.event("b", peer="y")
        assert rec.traces() == [t1, t2]
        assert [s.trace for s in rec.spans(name="a")] == [t1, t2]
        assert rec.sequence(trace=t2) == ["a", "b"]
        assert [s.name for s in rec.spans(peer="y")] == ["a", "b"]
        rec.clear()
        assert rec.sequence() == []

    def test_null_recorder_surface_is_inert(self):
        rec = NULL_RECORDER
        assert isinstance(rec, NullRecorder)
        assert not rec.enabled
        assert not rec.recording
        assert rec.new_trace() == -1
        span = rec.begin_span("s")
        assert span is NULL_SPAN
        rec.end_span(span)
        rec.event("e")
        with rec.span("cm") as cm_span:
            assert cm_span is NULL_SPAN
        assert rec.spans() == []
        assert rec.sequence() == []
        assert rec.traces() == []
        assert list(rec.iter_spans()) == []
        assert len(rec) == 0
        rec.clear()

    def test_end_span_is_null_safe(self):
        FlightRecorder().end_span(NULL_SPAN)


class TestExport:
    def _armed(self) -> tuple[MetricsRegistry, FlightRecorder]:
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("lat").record(1e-5)
        reg.histogram("empty")
        reg.gauge("g").set(4)
        rec = FlightRecorder(capacity=8)
        rec.new_trace()
        rec.event("receive", n=1)
        return reg, rec

    def test_snapshot_dict_shape(self):
        reg, rec = self._armed()
        out = snapshot_dict(reg, rec, include_spans=True)
        assert out["metrics"]["c"] == 2
        assert out["recorder"]["traces_started"] == 1
        assert out["recorder"]["spans_recorded"] == 1
        assert out["spans"][0]["name"] == "receive"
        assert out["spans"][0]["attrs"] == {"n": 1}

    def test_to_json_is_deterministic_and_parseable(self):
        reg, rec = self._armed()
        text = to_json(reg, rec, include_spans=True)
        assert text == to_json(reg, rec, include_spans=True)
        parsed = json.loads(text)
        assert parsed["metrics"]["g"] == 4.0

    def test_to_table_lists_metrics_and_recorder(self):
        reg, rec = self._armed()
        table = to_table(reg, rec, title="t")
        assert "t" in table.splitlines()[0]
        assert any("counter" in line for line in table.splitlines())
        assert any("count=0" in line for line in table.splitlines())
        assert any("p999=" in line for line in table.splitlines())
        assert any("traces=1" in line for line in table.splitlines())


class TestEnvAndNodeWiring:
    def test_enabled_from_env_truthiness(self):
        for value in ("1", "true", "YES", " on "):
            assert enabled_from_env({"REPRO_OBS": value})
        for value in ("", "0", "off", "no"):
            assert not enabled_from_env({"REPRO_OBS": value})
        assert not enabled_from_env({})

    def test_repro_obs_env_arms_new_nodes(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        assert node.obs is not None
        monkeypatch.setenv("REPRO_OBS", "0")
        assert ServiceNode(Simulator(), "sn2", "10.0.0.2").obs is None

    def test_enable_observability_wires_components(self):
        sim = Simulator()
        node = ServiceNode(sim, "sn", "10.0.0.1")
        assert node.terminus.recorder is NULL_RECORDER
        obs = node.enable_observability(sample_every=3, capacity=128)
        assert isinstance(obs, NodeObs)
        rec = obs.recorder
        assert node.terminus.recorder is rec
        assert node.terminus.obs is obs
        assert node.terminus.channel.recorder is rec
        assert node.env.recorder is rec
        assert rec.capacity == 128
        assert rec.sample_every == 3
        # The recorder stamps with sim time.
        sim.run(until=2.0)
        rec.new_trace()
        span = rec.begin_span("s")
        rec.end_span(span)
        assert span.start == 2.0
        # Idempotent: re-arming returns the same bundle.
        assert node.enable_observability() is obs

    def test_enable_observability_covers_loaded_enclaves(self):
        from repro.core.service_module import ServiceModule, Verdict

        class _Enclaved(ServiceModule):
            SERVICE_ID = 900
            NAME = "enclaved"
            REQUIRES_ENCLAVE = True

            def handle_packet(self, header, packet):
                return Verdict.drop()

            def handle_control(self, header, packet):
                return Verdict.drop()

        class _Later(_Enclaved):
            SERVICE_ID = 901
            NAME = "later"

        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        node.env.load(_Enclaved())
        obs = node.enable_observability()
        enclave = node.env.enclave_for(900)
        assert enclave is not None and enclave.recorder is obs.recorder
        # Modules loaded after arming inherit the recorder too.
        node.env.load(_Later())
        later = node.env.enclave_for(901)
        assert later is not None and later.recorder is obs.recorder

    def test_node_obs_exports(self):
        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        obs = node.enable_observability()
        obs.terminus_latency.record(1e-5)
        parsed = json.loads(obs.export_json())
        assert parsed["metrics"]["terminus"]["latency"]["count"] == 1
        assert "terminus.latency" in obs.export_table()


class TestEngineCompactionCounter:
    def test_compactions_counts_heap_rebuilds(self):
        sim = Simulator()
        assert sim.compactions == 0
        handles = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.pending == 50


class TestSnapshotDropAccounting:
    def test_miss_queue_drops_count_in_snapshot(self):
        """Regression: MissQueueStats.dropped was invisible in drops."""
        from repro.core.ilp import ILPHeader
        from repro.core.packet import ILPPacket, L3Header, make_payload

        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        queue = node.terminus.miss_queue
        pkt = ILPPacket(
            l3=L3Header(src="10.0.0.2", dst="10.0.0.1"),
            ilp_wire=b"",
            payload=make_payload(b"x"),
        )
        flow = ("10.0.0.2", ILPHeader(service_id=1, connection_id=1).encode())
        assert queue.park(flow, [pkt, pkt, pkt]) == []
        assert queue.discard_all() == 3
        snap = snapshot_sn(node)
        assert snap.miss_parked == 3
        assert snap.miss_dropped == 3
        assert snap.drops == 3

    def test_offload_drops_count_in_snapshot(self):
        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        node.terminus.stats.drops_by_offload += 2
        assert snapshot_sn(node).drops == 2

    def test_snapshot_without_obs_reports_zero_percentiles(self):
        snap = snapshot_sn(ServiceNode(Simulator(), "sn", "10.0.0.1"))
        assert snap.lat_p50 == snap.lat_p99 == snap.lat_p999 == 0.0
        assert snap.punt_p50 == snap.punt_p99 == snap.punt_p999 == 0.0

    def test_snapshot_with_obs_reports_percentiles(self):
        node = ServiceNode(Simulator(), "sn", "10.0.0.1")
        obs = node.enable_observability()
        obs.terminus_latency.record_many(1e-4, 10)
        obs.punt_latency.record(2e-5)
        snap = snapshot_sn(node)
        assert abs(snap.lat_p50 - 1e-4) <= 0.01 * 1e-4
        assert abs(snap.punt_p99 - 2e-5) <= 0.01 * 2e-5

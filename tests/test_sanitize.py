"""Unit tests for sanitizer mode (``REPRO_SANITIZE=1``).

These are white-box tests: several deliberately corrupt private state to
prove the armed checks detect it, under ``# repro: allow(DET002)`` waivers.
"""

import pytest

from repro import sanitize
from repro.core.decision_cache import CacheKey, Decision, DecisionCache
from repro.core.ilp import ILPHeader, TLV
from repro.core.pipe_terminus import _san_check_header_wire
from repro.core.psp import PSPContext


@pytest.fixture
def armed():
    previous = sanitize.set_enabled(True)
    yield
    sanitize.set_enabled(previous)


@pytest.fixture
def disarmed():
    previous = sanitize.set_enabled(False)
    yield
    sanitize.set_enabled(previous)


class TestToggle:
    def test_set_enabled_returns_previous(self):
        previous = sanitize.set_enabled(True)
        try:
            assert sanitize.set_enabled(True) is True
            assert sanitize.set_enabled(False) is True
            assert sanitize.set_enabled(False) is False
        finally:
            sanitize.set_enabled(previous)

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("1", True),
            ("true", True),
            ("YES", True),
            (" on ", True),
            ("0", False),
            ("", False),
            ("off", False),
            ("no", False),
        ],
    )
    def test_enabled_from_env(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize.enabled_from_env() is expected

    def test_unset_env_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize.enabled_from_env() is False

    def test_sanitize_error_is_assertion_error(self):
        assert issubclass(sanitize.SanitizeError, AssertionError)

    def test_fail_names_the_check(self):
        with pytest.raises(sanitize.SanitizeError, match=r"sanitize\[demo\]: boom"):
            sanitize.fail("demo", "boom")


class TestNonceMonotonicity:
    def _ctx(self):
        return PSPContext(b"m" * 16)

    def test_normal_sealing_is_clean(self, armed):
        ctx = self._ctx()
        ctx.seal(b"a")
        ctx.seal_batch([b"b", b"c"])
        ctx.seal_run(b"d", 3)
        ctx.rotate()
        ctx.seal(b"e")

    def test_regression_detected_on_seal(self, armed):
        ctx = self._ctx()
        ctx.seal(b"a")
        # White-box: pretend a much later nonce was already sealed this epoch.
        ctx._san_hwm[ctx.epoch] = 2**40  # repro: allow(DET002) forced regression
        with pytest.raises(sanitize.SanitizeError, match="nonce-monotonic"):
            ctx.seal(b"b")

    def test_regression_detected_on_batch_and_run(self, armed):
        ctx = self._ctx()
        ctx._san_hwm[ctx.epoch] = 2**40  # repro: allow(DET002) forced regression
        with pytest.raises(sanitize.SanitizeError, match="nonce-monotonic"):
            ctx.seal_batch([b"a", b"b"])
        with pytest.raises(sanitize.SanitizeError, match="nonce-monotonic"):
            ctx.seal_run(b"c", 2)

    def test_disarmed_skips_the_check(self, disarmed):
        ctx = self._ctx()
        ctx._san_hwm[ctx.epoch] = 2**40  # repro: allow(DET002) forced regression
        ctx.seal(b"a")  # no error: the check is not armed


class TestCacheCoherence:
    def _cache(self):
        cache = DecisionCache(capacity=16)
        cache.install(CacheKey("h1", 1, 1), Decision.forward("p1"))
        cache.install(CacheKey("h2", 1, 2), Decision.drop())
        return cache

    def test_mutations_stay_coherent_while_armed(self, armed):
        cache = self._cache()
        cache.invalidate(CacheKey("h2", 1, 2))
        cache.invalidate_connection(1, 1)
        cache.install(CacheKey("h3", 2, 3), Decision.forward("p2"))
        cache.invalidate_by_target("p2")
        assert cache.count_targeting("p2") == 0
        cache.check_index_coherence()

    def test_dropped_position_entry_detected(self):
        cache = self._cache()
        cache.check_index_coherence()
        cache._key_pos.pop(CacheKey("h1", 1, 1))  # repro: allow(DET002) corruption
        with pytest.raises(sanitize.SanitizeError, match="cache-coherence"):
            cache.check_index_coherence()

    def test_wrong_connection_filing_detected(self):
        cache = self._cache()
        by_conn = cache._by_conn  # repro: allow(DET002) white-box corruption
        by_conn[(9, 9)] = by_conn.pop((1, 1))
        with pytest.raises(sanitize.SanitizeError, match="wrong connection"):
            cache.check_index_coherence()

    def test_full_scan_limit_bounds_the_check(self, monkeypatch):
        cache = self._cache()
        by_conn = cache._by_conn  # repro: allow(DET002) white-box corruption
        by_conn[(9, 9)] = by_conn.pop((1, 1))
        # Above the cutoff only O(1) cardinality checks run, so the
        # wrong-bucket filing (same cardinality) goes unreported.
        monkeypatch.setattr(sanitize, "FULL_SCAN_LIMIT", 0)
        cache.check_index_coherence()
        monkeypatch.setattr(sanitize, "FULL_SCAN_LIMIT", 512)
        with pytest.raises(sanitize.SanitizeError, match="wrong connection"):
            cache.check_index_coherence()


class TestMissQueueLedger:
    def _queue(self):
        from repro.core.pipe_terminus import MissQueue

        return MissQueue(limit=4)

    def test_clean_queue_passes(self, armed):
        queue = self._queue()
        queue.park(("p", b"f"), ["a", "b"])
        queue.drain(("p", b"f"), fast=True)
        queue.check_drained()

    def test_leak_detected(self, armed):
        queue = self._queue()
        queue.park(("p", b"f"), ["a"])
        with pytest.raises(sanitize.SanitizeError, match="miss-queue-leak"):
            queue.check_drained()

    def test_ledger_violation_detected(self, armed):
        queue = self._queue()
        queue.park(("p", b"f"), ["a"])
        queue.drain(("p", b"f"), fast=True)
        # Corrupt the ledger: a drain that was never parked.
        queue.stats.drained_fast += 1  # repro: allow(DET002)
        with pytest.raises(sanitize.SanitizeError, match="miss-queue-ledger"):
            queue.check_drained()

    def test_crash_discard_keeps_ledger_clean(self, armed):
        queue = self._queue()
        queue.park(("p", b"f"), ["a", "b", "c"])
        assert queue.discard_all() == 3
        queue.check_drained()
        assert queue.stats.dropped == 3

    def _node(self):
        from repro.core.service_node import ServiceNode
        from repro.netsim import Simulator

        return ServiceNode(Simulator(), "sn", "10.0.0.1")

    def test_batch_ingress_detects_leak_when_armed(self, armed):
        node = self._node()
        node.terminus.miss_queue.park(("p", b"f"), ["stuck"])
        with pytest.raises(sanitize.SanitizeError, match="miss-queue-leak"):
            node.terminus.receive_batch([])

    def test_batch_ingress_skips_check_when_disarmed(self, disarmed):
        node = self._node()
        node.terminus.miss_queue.park(("p", b"f"), ["stuck"])
        assert node.terminus.receive_batch([]) == 0


class TestHeaderReencode:
    def test_fresh_encode_passes(self):
        header = ILPHeader(service_id=7, connection_id=42)
        header.set_str(TLV.DEST_ADDR, "10.0.0.9")
        _san_check_header_wire(header, header.encode())

    def test_drifted_wire_detected(self):
        header = ILPHeader(service_id=7, connection_id=42)
        wire = bytearray(header.encode())
        wire[-1] ^= 0xFF
        with pytest.raises(sanitize.SanitizeError, match="header-reencode"):
            _san_check_header_wire(header, bytes(wire))

    def test_stale_memo_scenario_detected(self):
        # A caller that keeps pre-encoded bytes, then mutates the header,
        # must not ship the stale wire form.
        header = ILPHeader(service_id=7, connection_id=42)
        stale = header.encode()
        header.set_str(TLV.DEST_ADDR, "10.0.0.9")
        with pytest.raises(sanitize.SanitizeError, match="header-reencode"):
            _san_check_header_wire(header, stale)

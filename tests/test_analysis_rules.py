"""Fixture tests for the determinism & datapath-invariant analysis suite.

Each rule gets at least one failing fixture (the rule fires) and one clean
fixture (the rule stays quiet), plus waiver and CLI behavior, plus the
acceptance gate: the live tree is clean.
"""

from __future__ import annotations

import json
import runpy
import sys
import textwrap
import warnings
from pathlib import Path

import pytest

from repro.analysis import analyze_file, analyze_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.rules import (
    rule_det001,
    rule_det002,
    rule_obs001,
    rule_res001,
    rule_wire001,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestDET001:
    def test_global_rng_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "global" in findings[0].message

    def test_from_import_alias_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from random import shuffle as mix

            def scramble(items):
                mix(items)
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_det001])) == ["DET001"]

    def test_wall_clock_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "wall-clock" in findings[0].message

    def test_builtin_hash_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def seed_for(address):
                return hash(address) & 0xFFFFFFFF
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_unseeded_random_instance_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random

            RNG = random.Random()
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_det001])) == ["DET001"]

    def test_seeded_rng_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random
            import zlib

            RNG = random.Random(0xA11CE)

            def seed_for(address):
                return zlib.crc32(address.encode())

            def jitter():
                return RNG.random()
            """,
        )
        assert analyze_file(path, rules=[rule_det001]) == []

    def test_os_urandom_needs_waiver(self, tmp_path):
        flagged = _write(
            tmp_path,
            "bad.py",
            """
            import os

            def token():
                return os.urandom(8)
            """,
        )
        waived = _write(
            tmp_path,
            "good.py",
            """
            import os

            def key_material():
                # repro: allow(DET001) entropy boundary: real key material
                return os.urandom(16)
            """,
        )
        assert _codes(analyze_file(flagged, rules=[rule_det001])) == ["DET001"]
        assert analyze_file(waived, rules=[rule_det001]) == []

    def test_from_import_entropy_variants_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from os import urandom
            from random import Random, SystemRandom
            from secrets import token_bytes
            from time import monotonic
            from uuid import uuid4

            def entropy_soup():
                return (
                    Random(),
                    SystemRandom(),
                    monotonic(),
                    urandom(8),
                    token_bytes(4),
                    uuid4(),
                )
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"] * 6
        messages = " ".join(f.message for f in findings)
        for needle in ("without a seed", "OS entropy", "wall-clock", "uuid4"):
            assert needle in messages

    def test_attribute_entropy_variants_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import datetime
            import numpy
            import random
            import secrets
            import uuid

            def entropy_soup(items):
                rng = numpy.random.default_rng(7)  # seeded: fine
                return (
                    rng,
                    random.SystemRandom(),
                    secrets.token_hex(),
                    uuid.uuid1(),
                    datetime.now(),
                    datetime.datetime.now(),
                    numpy.random.default_rng(),
                    numpy.random.shuffle(items),
                )
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"] * 7
        messages = " ".join(f.message for f in findings)
        for needle in (
            "SystemRandom",
            "secrets.token_hex",
            "uuid.uuid1",
            "wall clock",
            "default_rng() without a seed",
            "global RNG",
        ):
            assert needle in messages

    def test_test_files_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "test_mod.py",
            """
            import random

            def test_stuff():
                assert random.random() >= 0.0
            """,
        )
        assert analyze_file(path, rules=[rule_det001]) == []


class TestDET002:
    def test_foreign_private_reach_in_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def poke(cache):
                return cache._entries
            """,
        )
        findings = analyze_file(path, rules=[rule_det002])
        assert _codes(findings) == ["DET002"]
        assert "_entries" in findings[0].message

    def test_own_private_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Table:
                def __init__(self):
                    self._entries = {}

                def size(self):
                    return len(self._entries)


            def merge(a, b):
                # Same module owns _entries, so sibling access is fine.
                a._entries.update(b._entries)
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_slots_declare_ownership(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Packed:
                __slots__ = ("_v",)


            def bump(p):
                p._v += 1
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_dunder_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def state(obj):
                return obj.__dict__
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_super_access_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Base:
                def __init__(self):
                    self._cache = {}

            class Child(Base):
                def peek(self):
                    return super()._cache
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_string_slots_declare_ownership(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Probe:
                __slots__ = "_lone"

            def read(probe):
                return probe._lone
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_module_level_private_annassign_owned(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            _quota: int = 8

            def probe(other):
                return other._quota
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def poke(cache):
                # repro: allow(DET002) white-box corruption for a test
                return cache._entries
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []


class TestWIRE001:
    def test_unslotted_wire_dataclass_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/packet.py",
            """
            from dataclasses import dataclass


            @dataclass
            class Frame:
                src: str
                dst: str
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "slots=True" in findings[0].message

    def test_slotted_wire_dataclass_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/packet.py",
            """
            from dataclasses import dataclass


            @dataclass(frozen=True, slots=True)
            class Frame:
                src: str
                dst: str
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_plain_class_with_state_needs_slots(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/psp.py",
            """
            class Context:
                def __init__(self):
                    self.counter = 0
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_wire001])) == ["WIRE001"]

    def test_plain_class_with_slots_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/psp.py",
            """
            class Context:
                __slots__ = ("counter",)

                def __init__(self):
                    self.counter = 0
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_encode_without_decode_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/ilp.py",
            """
            class Header:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1

                def encode(self):
                    return b""
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "no decode()" in findings[0].message

    def test_decode_without_encode_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/ilp.py",
            """
            class HeaderView:
                @classmethod
                def decode(cls, wire):
                    return cls()
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "no encode()" in findings[0].message

    def test_subscripted_base_with_annotated_state_needs_slots(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/psp.py",
            """
            from typing import Generic, TypeVar

            T = TypeVar("T")

            class WindowBuf(Generic[T]):
                def __init__(self) -> None:
                    self.high_water: int = 0
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "__slots__" in findings[0].message

    def test_non_wire_module_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/services/foo.py",
            """
            from dataclasses import dataclass


            @dataclass
            class NotOnTheWire:
                x: int
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_exceptions_and_enums_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/crypto.py",
            """
            import enum


            class CryptoError(Exception):
                pass


            class Mode(enum.Enum):
                SEAL = 1
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []


class TestRES001:
    def test_watch_without_unwatch_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Agent:
                def __init__(self, store):
                    self.token = store.watch("key", self.on_change)

                def on_change(self, key, op, value):
                    pass
            """,
        )
        findings = analyze_file(path, rules=[rule_res001])
        assert _codes(findings) == ["RES001"]
        assert "unwatch" in findings[0].message

    def test_watch_with_teardown_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Agent:
                def __init__(self, store):
                    self.store = store
                    self.token = store.watch("key", self.on_change)

                def on_change(self, key, op, value):
                    pass

                def detach(self):
                    self.store.unwatch("key", self.token)
            """,
        )
        assert analyze_file(path, rules=[rule_res001]) == []

    def test_watch_prefix_pairing(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class PrefixAgent:
                def __init__(self, store):
                    self.store = store
                    self.token = store.watch_prefix("resilience/", self.on_change)

                def on_change(self, key, op, value):
                    pass
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_res001])) == ["RES001"]

    def test_provider_class_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Store:
                def __init__(self):
                    self._watches = {}

                def watch(self, key, callback):
                    self._watches.setdefault(key, []).append(callback)

                def rebuild(self, other):
                    # Calls its *own* watch API while rebuilding.
                    other.watch("k", print)
            """,
        )
        assert analyze_file(path, rules=[rule_res001]) == []


class TestOBS001:
    def test_begin_without_end_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Stage:
                def __init__(self, recorder):
                    self.recorder = recorder

                def process(self, pkt):
                    span = self.recorder.begin_span("stage.process")
                    return pkt
            """,
        )
        findings = analyze_file(path, rules=[rule_obs001])
        assert _codes(findings) == ["OBS001"]
        assert "end_span" in findings[0].message

    def test_paired_begin_end_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Stage:
                def __init__(self, recorder):
                    self.recorder = recorder

                def process(self, pkt):
                    span = self.recorder.begin_span("stage.process")
                    try:
                        return pkt
                    finally:
                        self.recorder.end_span(span)
            """,
        )
        assert analyze_file(path, rules=[rule_obs001]) == []

    def test_provider_class_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Recorder:
                def begin_span(self, name):
                    return object()

                def event(self, name):
                    # Calls its *own* span API; still not a consumer.
                    span = self.begin_span(name)
                    span.close()
            """,
        )
        assert analyze_file(path, rules=[rule_obs001]) == []

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Leaky:
                def process(self, recorder):
                    # repro: allow(OBS001) span handed to caller to close
                    return recorder.begin_span("stage.process")
            """,
        )
        assert analyze_file(path, rules=[rule_obs001]) == []

    def test_module_level_calls_not_flagged(self, tmp_path):
        # The ownership model is per-class, exactly like RES001: free
        # functions pass spans to their caller by convention.
        path = _write(
            tmp_path,
            "mod.py",
            """
            def open_span(recorder):
                return recorder.begin_span("free")
            """,
        )
        assert analyze_file(path, rules=[rule_obs001]) == []


class TestEngineEdges:
    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def oops(:\n")
        findings = analyze_paths([path])
        assert _codes(findings) == ["PARSE"]
        assert "syntax error" in findings[0].message


class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "pkg/clean.py", "X = 1\n")
        assert analysis_main([str(tmp_path)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().err

    def test_exit_one_on_findings(self, tmp_path, capsys):
        _write(
            tmp_path,
            "pkg/dirty.py",
            """
            import random

            X = random.random()
            """,
        )
        assert analysis_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_rule_filter(self, tmp_path):
        _write(
            tmp_path,
            "pkg/dirty.py",
            """
            import random

            X = random.random()
            """,
        )
        # Filtering to an unrelated rule hides the DET001 finding.
        assert analysis_main([str(tmp_path), "--rules", "RES001"]) == 0
        assert analysis_main([str(tmp_path), "--rules", "DET001"]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        assert analysis_main([str(tmp_path), "--rules", "NOPE999"]) == 2

    def test_json_output(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "pkg/dirty.py",
            """
            import random

            X = random.random()
            """,
        )
        assert analysis_main(["--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "DET001"
        assert payload[0]["line"] == 4
        assert payload[0]["path"].endswith("dirty.py")

    def test_default_paths_require_repo_root(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert analysis_main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_default_paths_scan_src_and_tests(self, tmp_path, monkeypatch):
        _write(tmp_path, "src/clean.py", "X = 1\n")
        _write(tmp_path, "tests/also_clean.py", "Y = 2\n")
        monkeypatch.chdir(tmp_path)
        assert analysis_main([]) == 0

    def test_module_entrypoint(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["repro.analysis", "--list-rules"])
        with warnings.catch_warnings():
            # runpy warns when re-executing an already-imported __main__.
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(SystemExit) as exc:
                runpy.run_module("repro.analysis", run_name="__main__")
        assert exc.value.code == 0
        assert "DET001" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET001",
            "DET002",
            "DET003",
            "WIRE001",
            "RES001",
            "OBS001",
            "EVT001",
            "LEDGER001",
        ):
            assert code in out


class TestLiveTree:
    def test_repository_is_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
        findings = analyze_paths(paths, root=REPO_ROOT)
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

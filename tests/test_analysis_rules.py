"""Fixture tests for the determinism & datapath-invariant analysis suite.

Each rule gets at least one failing fixture (the rule fires) and one clean
fixture (the rule stays quiet), plus waiver and CLI behavior, plus the
acceptance gate: the live tree is clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_file, analyze_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.rules import (
    rule_det001,
    rule_det002,
    rule_res001,
    rule_wire001,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestDET001:
    def test_global_rng_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "global" in findings[0].message

    def test_from_import_alias_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            from random import shuffle as mix

            def scramble(items):
                mix(items)
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_det001])) == ["DET001"]

    def test_wall_clock_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "wall-clock" in findings[0].message

    def test_builtin_hash_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def seed_for(address):
                return hash(address) & 0xFFFFFFFF
            """,
        )
        findings = analyze_file(path, rules=[rule_det001])
        assert _codes(findings) == ["DET001"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_unseeded_random_instance_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random

            RNG = random.Random()
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_det001])) == ["DET001"]

    def test_seeded_rng_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import random
            import zlib

            RNG = random.Random(0xA11CE)

            def seed_for(address):
                return zlib.crc32(address.encode())

            def jitter():
                return RNG.random()
            """,
        )
        assert analyze_file(path, rules=[rule_det001]) == []

    def test_os_urandom_needs_waiver(self, tmp_path):
        flagged = _write(
            tmp_path,
            "bad.py",
            """
            import os

            def token():
                return os.urandom(8)
            """,
        )
        waived = _write(
            tmp_path,
            "good.py",
            """
            import os

            def key_material():
                # repro: allow(DET001) entropy boundary: real key material
                return os.urandom(16)
            """,
        )
        assert _codes(analyze_file(flagged, rules=[rule_det001])) == ["DET001"]
        assert analyze_file(waived, rules=[rule_det001]) == []

    def test_test_files_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "test_mod.py",
            """
            import random

            def test_stuff():
                assert random.random() >= 0.0
            """,
        )
        assert analyze_file(path, rules=[rule_det001]) == []


class TestDET002:
    def test_foreign_private_reach_in_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def poke(cache):
                return cache._entries
            """,
        )
        findings = analyze_file(path, rules=[rule_det002])
        assert _codes(findings) == ["DET002"]
        assert "_entries" in findings[0].message

    def test_own_private_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Table:
                def __init__(self):
                    self._entries = {}

                def size(self):
                    return len(self._entries)


            def merge(a, b):
                # Same module owns _entries, so sibling access is fine.
                a._entries.update(b._entries)
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_slots_declare_ownership(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Packed:
                __slots__ = ("_v",)


            def bump(p):
                p._v += 1
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_dunder_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def state(obj):
                return obj.__dict__
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []

    def test_waiver_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            def poke(cache):
                # repro: allow(DET002) white-box corruption for a test
                return cache._entries
            """,
        )
        assert analyze_file(path, rules=[rule_det002]) == []


class TestWIRE001:
    def test_unslotted_wire_dataclass_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/packet.py",
            """
            from dataclasses import dataclass


            @dataclass
            class Frame:
                src: str
                dst: str
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "slots=True" in findings[0].message

    def test_slotted_wire_dataclass_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/packet.py",
            """
            from dataclasses import dataclass


            @dataclass(frozen=True, slots=True)
            class Frame:
                src: str
                dst: str
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_plain_class_with_state_needs_slots(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/psp.py",
            """
            class Context:
                def __init__(self):
                    self.counter = 0
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_wire001])) == ["WIRE001"]

    def test_plain_class_with_slots_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/psp.py",
            """
            class Context:
                __slots__ = ("counter",)

                def __init__(self):
                    self.counter = 0
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_encode_without_decode_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/ilp.py",
            """
            class Header:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1

                def encode(self):
                    return b""
            """,
        )
        findings = analyze_file(path, rules=[rule_wire001])
        assert _codes(findings) == ["WIRE001"]
        assert "no decode()" in findings[0].message

    def test_non_wire_module_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/services/foo.py",
            """
            from dataclasses import dataclass


            @dataclass
            class NotOnTheWire:
                x: int
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []

    def test_exceptions_and_enums_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "repro/core/crypto.py",
            """
            import enum


            class CryptoError(Exception):
                pass


            class Mode(enum.Enum):
                SEAL = 1
            """,
        )
        assert analyze_file(path, rules=[rule_wire001]) == []


class TestRES001:
    def test_watch_without_unwatch_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Agent:
                def __init__(self, store):
                    self.token = store.watch("key", self.on_change)

                def on_change(self, key, op, value):
                    pass
            """,
        )
        findings = analyze_file(path, rules=[rule_res001])
        assert _codes(findings) == ["RES001"]
        assert "unwatch" in findings[0].message

    def test_watch_with_teardown_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Agent:
                def __init__(self, store):
                    self.store = store
                    self.token = store.watch("key", self.on_change)

                def on_change(self, key, op, value):
                    pass

                def detach(self):
                    self.store.unwatch("key", self.token)
            """,
        )
        assert analyze_file(path, rules=[rule_res001]) == []

    def test_watch_prefix_pairing(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class PrefixAgent:
                def __init__(self, store):
                    self.store = store
                    self.token = store.watch_prefix("resilience/", self.on_change)

                def on_change(self, key, op, value):
                    pass
            """,
        )
        assert _codes(analyze_file(path, rules=[rule_res001])) == ["RES001"]

    def test_provider_class_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """
            class Store:
                def __init__(self):
                    self._watches = {}

                def watch(self, key, callback):
                    self._watches.setdefault(key, []).append(callback)

                def rebuild(self, other):
                    # Calls its *own* watch API while rebuilding.
                    other.watch("k", print)
            """,
        )
        assert analyze_file(path, rules=[rule_res001]) == []


class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "pkg/clean.py", "X = 1\n")
        assert analysis_main([str(tmp_path)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().err

    def test_exit_one_on_findings(self, tmp_path, capsys):
        _write(
            tmp_path,
            "pkg/dirty.py",
            """
            import random

            X = random.random()
            """,
        )
        assert analysis_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_rule_filter(self, tmp_path):
        _write(
            tmp_path,
            "pkg/dirty.py",
            """
            import random

            X = random.random()
            """,
        )
        # Filtering to an unrelated rule hides the DET001 finding.
        assert analysis_main([str(tmp_path), "--rules", "RES001"]) == 0
        assert analysis_main([str(tmp_path), "--rules", "DET001"]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        assert analysis_main([str(tmp_path), "--rules", "NOPE999"]) == 2

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "WIRE001", "RES001"):
            assert code in out


class TestLiveTree:
    def test_repository_is_clean(self):
        """The acceptance gate: the shipped tree has zero findings."""
        paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
        findings = analyze_paths(paths, root=REPO_ROOT)
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

"""Unit tests for the software TPM and attestation verification."""

import pytest

from repro.core.attestation import (
    AttestationError,
    AttestationVerifier,
    GoldenMeasurements,
    PCR_BOOT,
    PCR_SERVICES,
    SoftwareTPM,
    measure,
    replay_pcrs,
)
from repro.core.crypto import SignatureRegistry


@pytest.fixture
def registry():
    return SignatureRegistry()


@pytest.fixture
def tpm(registry):
    tpm = SoftwareTPM()
    registry.register(tpm.keypair)
    return tpm


class TestPCRs:
    def test_start_zeroed(self):
        assert SoftwareTPM().pcr(0) == b"\x00" * 32

    def test_extend_changes_value(self, tpm):
        before = tpm.pcr(PCR_BOOT)
        tpm.extend(PCR_BOOT, measure(b"bootloader"))
        assert tpm.pcr(PCR_BOOT) != before

    def test_extend_order_matters(self):
        t1, t2 = SoftwareTPM(), SoftwareTPM()
        a, b = measure(b"a"), measure(b"b")
        t1.extend(0, a)
        t1.extend(0, b)
        t2.extend(0, b)
        t2.extend(0, a)
        assert t1.pcr(0) != t2.pcr(0)

    def test_extend_validates_inputs(self, tpm):
        with pytest.raises(AttestationError):
            tpm.extend(99, measure(b"x"))
        with pytest.raises(AttestationError):
            tpm.extend(0, b"not-32-bytes")

    def test_replay_matches_live(self, tpm):
        tpm.extend(0, measure(b"a"))
        tpm.extend(2, measure(b"b"))
        replayed = replay_pcrs(tpm.extend_log)
        assert replayed[0] == tpm.pcr(0)
        assert replayed[2] == tpm.pcr(2)


class TestQuoteVerification:
    def test_valid_quote_verifies(self, tpm, registry):
        tpm.extend(PCR_SERVICES, measure(b"module"))
        quote = tpm.quote(b"nonce-7")
        verifier = AttestationVerifier(registry)
        assert verifier.verify(quote, b"nonce-7", tpm.extend_log)

    def test_wrong_nonce_rejected(self, tpm, registry):
        quote = tpm.quote(b"nonce-7")
        assert not AttestationVerifier(registry).verify(
            quote, b"nonce-8", tpm.extend_log
        )

    def test_forged_signature_rejected(self, tpm, registry):
        quote = tpm.quote(b"n")
        forged = type(quote)(
            tpm_public=quote.tpm_public,
            nonce=quote.nonce,
            pcr_digest=quote.pcr_digest,
            signature=b"\x00" * 32,
        )
        assert not AttestationVerifier(registry).verify(forged, b"n", tpm.extend_log)

    def test_unregistered_tpm_rejected(self, registry):
        rogue = SoftwareTPM()  # never registered
        quote = rogue.quote(b"n")
        assert not AttestationVerifier(registry).verify(quote, b"n", rogue.extend_log)

    def test_log_digest_mismatch_rejected(self, tpm, registry):
        tpm.extend(0, measure(b"real"))
        quote = tpm.quote(b"n")
        fake_log = [(0, measure(b"tampered"))]
        assert not AttestationVerifier(registry).verify(quote, b"n", fake_log)

    def test_selected_pcr_indices(self, tpm, registry):
        tpm.extend(3, measure(b"enclave"))
        quote = tpm.quote(b"n", indices=[3])
        assert AttestationVerifier(registry).verify(
            quote, b"n", tpm.extend_log, indices=[3]
        )

    def test_golden_measurements_enforced(self, tpm, registry):
        good = measure(b"approved-module")
        tpm.extend(PCR_SERVICES, good)
        quote = tpm.quote(b"n")
        golden = GoldenMeasurements()
        golden.allow(PCR_SERVICES, good)
        verifier = AttestationVerifier(registry, golden)
        assert verifier.verify(quote, b"n", tpm.extend_log)

    def test_unapproved_measurement_rejected(self, tpm, registry):
        tpm.extend(PCR_SERVICES, measure(b"malware"))
        quote = tpm.quote(b"n")
        golden = GoldenMeasurements()
        golden.allow(PCR_SERVICES, measure(b"approved-module"))
        verifier = AttestationVerifier(registry, golden)
        assert not verifier.verify(quote, b"n", tpm.extend_log)

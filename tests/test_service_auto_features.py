"""Tests for automated service features: DDoS auto-trigger, queue
redelivery timers, and the `python -m repro` demo entry point."""

import pytest

from repro import WellKnownService
from repro.services.msgqueue import ack, produce, queue_home, subscribe


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestDDoSAutoTrigger:
    def test_sustained_flood_flips_attack_mode(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        attacker = net.add_host(sn, name="attacker")
        victim = net.add_host(sn_of(net, "east", 0), name="victim")
        module = sn.env.service(WellKnownService.DDOS_PROTECT)
        module.protected.add(victim.address)
        module.policy.burst_bytes = 500
        module.policy.auto_trigger_drops = 20
        conn = attacker.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=victim.address, allow_direct=False
        )
        for _ in range(60):
            attacker.send(conn, b"x" * 200)
        net.run(1.0)
        assert module.auto_triggers == 1
        assert victim.address in module.attack_mode
        # After the flip, new unsolved traffic is puzzle-dropped.
        attacker.send(conn, b"post-trigger")
        net.run(1.0)
        assert module.dropped_puzzle >= 1

    def test_slow_senders_never_trigger(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        client = net.add_host(sn, name="client")
        victim = net.add_host(sn_of(net, "east", 0), name="victim")
        module = sn.env.service(WellKnownService.DDOS_PROTECT)
        module.protected.add(victim.address)
        conn = client.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=victim.address, allow_direct=False
        )
        for _ in range(10):
            client.send(conn, b"polite")
        net.run(1.0)
        assert module.auto_triggers == 0
        assert len(payloads(victim)) == 10

    def test_drop_window_resets(self, two_edomain_net):
        net = two_edomain_net
        sn = sn_of(net, "west", 0)
        module = sn.env.service(WellKnownService.DDOS_PROTECT)
        module.policy.auto_trigger_drops = 5
        module.policy.trigger_window = 1.0
        attacker = net.add_host(sn, name="attacker")
        victim = net.add_host(sn_of(net, "east", 0), name="victim")
        module.protected.add(victim.address)
        module.policy.burst_bytes = 300
        conn = attacker.connect(
            WellKnownService.DDOS_PROTECT, dest_addr=victim.address, allow_direct=False
        )
        # 3 drops, a long pause, 3 more drops: never 5 within one window.
        for _ in range(3):
            attacker.send(conn, b"y" * 200)
        net.run(5.0)
        for _ in range(3):
            attacker.send(conn, b"y" * 200)
        net.run(5.0)
        assert module.auto_triggers == 0


class TestRedeliveryTimer:
    def test_unacked_redelivered_until_acked(self, two_edomain_net):
        net = two_edomain_net
        producer = net.add_host(sn_of(net, "west", 0), name="producer")
        consumer = net.add_host(sn_of(net, "east", 0), name="consumer")
        subscribe(consumer, "retry-q")
        net.run(1.0)
        produce(producer, "retry-q", b"must-arrive")
        net.run(1.0)
        home = net.sn_at(
            queue_home("retry-q", sorted(net.lookup.service_nodes("msgqueue")))
        )
        module = home.env.service(WellKnownService.MSG_QUEUE)
        module.start_redelivery_timer("retry-q", interval=2.0)
        net.run(7.0)  # three timer fires
        copies = payloads(consumer).count(b"must-arrive")
        assert copies >= 3  # original + redeliveries (at-least-once)
        # Ack stops the retries.
        ack(consumer, "retry-q", 0)
        net.run(1.0)
        before = payloads(consumer).count(b"must-arrive")
        net.run(10.0)
        assert payloads(consumer).count(b"must-arrive") == before


class TestDemoEntryPoint:
    def test_main_runs_clean(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "peering pipes" in out
        assert "pub/sub" in out
        assert "done" in out

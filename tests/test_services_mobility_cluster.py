"""Tests for the mobility lookup and cluster interconnection services (§6.3)."""

import pytest

from repro import WellKnownService
from repro.netsim import Link
from repro.services.cluster import register_cluster_prefix, send_cross_cluster
from repro.services.mobility import (
    MobilityService,
    connect_to_mobile,
    send_binding_update,
)


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestMobility:
    def test_binding_and_delivery(self, two_edomain_net):
        net = two_edomain_net
        mobile = net.add_host(sn_of(net, "west", 0), name="phone")
        caller = net.add_host(sn_of(net, "east", 0), name="caller")
        send_binding_update(mobile, "phone.alice", sequence=1)
        net.run(1.0)
        conn = connect_to_mobile(caller, "phone.alice")
        caller.send(conn, b"ring ring")
        net.run(1.0)
        assert payloads(mobile) == [b"ring ring"]

    def test_traffic_follows_the_move(self, two_edomain_net):
        """The headline property: mid-conversation handoff."""
        net = two_edomain_net
        old_sn = sn_of(net, "west", 0)
        new_sn = sn_of(net, "east", 1)
        mobile = net.add_host(old_sn, name="phone")
        caller = net.add_host(sn_of(net, "east", 0), name="caller")
        send_binding_update(mobile, "phone.alice", sequence=1)
        net.run(1.0)
        conn = connect_to_mobile(caller, "phone.alice")
        caller.send(conn, b"before-move")
        net.run(1.0)

        # The phone walks to another network: associate + rebind.
        Link(net.sim, mobile, new_sn, latency=0.001)
        new_sn.associate_host(mobile)
        send_binding_update(mobile, "phone.alice", sequence=2, via=new_sn.address)
        net.run(1.0)

        caller.send(conn, b"after-move")
        net.run(1.0)
        assert payloads(mobile) == [b"before-move", b"after-move"]
        # The new packets were delivered by the new SN.
        assert new_sn.env.service(WellKnownService.MOBILITY).reroutes >= 0
        binding = new_sn.env.service(WellKnownService.MOBILITY).resolve("phone.alice")
        assert binding.sn_address == new_sn.address
        assert binding.sequence == 2

    def test_forged_binding_rejected(self, two_edomain_net):
        """An attacker cannot steal a stable name it does not own."""
        net = two_edomain_net
        victim = net.add_host(sn_of(net, "west", 0), name="victim")
        attacker = net.add_host(sn_of(net, "west", 1), name="attacker")
        send_binding_update(victim, "ceo.phone", sequence=1)
        net.run(1.0)
        # The attacker signs with its own key but claims victim's name —
        # the signature covers *its own* address so resolution would move.
        send_binding_update(attacker, "ceo.phone", sequence=2)
        net.run(1.0)
        module = sn_of(net, "west", 1).env.service(WellKnownService.MOBILITY)
        # Stable names are anchored to the first binder's key: the
        # attacker's (validly self-signed) takeover must be rejected and
        # the binding must still point at the victim.
        assert module.rejected_updates == 1
        binding = module.resolve("ceo.phone")
        assert binding.address == victim.address
        assert binding.sequence == 1

    def test_replayed_update_rejected(self, two_edomain_net):
        net = two_edomain_net
        mobile = net.add_host(sn_of(net, "west", 0), name="phone")
        send_binding_update(mobile, "phone.bob", sequence=5)
        net.run(1.0)
        module = sn_of(net, "west", 0).env.service(WellKnownService.MOBILITY)
        assert module.binding_updates == 1
        send_binding_update(mobile, "phone.bob", sequence=5)  # replay
        send_binding_update(mobile, "phone.bob", sequence=3)  # stale
        net.run(1.0)
        assert module.rejected_updates == 2
        assert module.resolve("phone.bob").sequence == 5

    def test_unknown_stable_name_dropped(self, two_edomain_net):
        net = two_edomain_net
        caller = net.add_host(sn_of(net, "east", 0), name="caller")
        conn = connect_to_mobile(caller, "ghost.name")
        caller.send(conn, b"anyone?")
        net.run(1.0)
        sn = sn_of(net, "east", 0)
        assert sn.terminus.stats.drops_by_service >= 1


class TestClusterInterconnect:
    def _fabric(self, net):
        sn_a = sn_of(net, "west", 0)
        sn_b = sn_of(net, "east", 0)
        gw_a = net.add_host(sn_a, name="gw-a")
        gw_b = net.add_host(sn_b, name="gw-b")
        register_cluster_prefix(gw_a, "corp-fabric", "172.16.0.0/16")
        register_cluster_prefix(gw_b, "corp-fabric", "172.17.0.0/16")
        net.run(1.0)
        return sn_a, sn_b, gw_a, gw_b

    def test_cross_cluster_delivery(self, two_edomain_net):
        net = two_edomain_net
        sn_a, sn_b, gw_a, gw_b = self._fabric(net)
        # A node inside cluster A sends to an internal address of cluster B;
        # the fabric routes it to B's gateway.
        send_cross_cluster(gw_a, "corp-fabric", "172.17.4.20", b"rpc-call")
        net.run(1.0)
        assert payloads(gw_b) == [b"rpc-call"]

    def test_reverse_direction(self, two_edomain_net):
        net = two_edomain_net
        sn_a, sn_b, gw_a, gw_b = self._fabric(net)
        send_cross_cluster(gw_b, "corp-fabric", "172.16.9.9", b"reply")
        net.run(1.0)
        assert payloads(gw_a) == [b"reply"]

    def test_longest_prefix_wins(self, two_edomain_net):
        net = two_edomain_net
        sn_a, sn_b, gw_a, gw_b = self._fabric(net)
        # A more specific prefix inside cluster B's range, homed at A.
        gw_specific = net.add_host(sn_a, name="gw-specific")
        register_cluster_prefix(gw_specific, "corp-fabric", "172.17.200.0/24")
        net.run(1.0)
        send_cross_cluster(gw_b, "corp-fabric", "172.17.200.5", b"to-specific")
        net.run(1.0)
        assert payloads(gw_specific) == [b"to-specific"]
        assert b"to-specific" not in payloads(gw_b)

    def test_unknown_fabric_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn_a, _, gw_a, gw_b = self._fabric(net)
        send_cross_cluster(gw_a, "no-such-fabric", "172.17.1.1", b"lost")
        net.run(1.0)
        assert payloads(gw_b) == []

    def test_outside_prefix_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn_a, _, gw_a, gw_b = self._fabric(net)
        send_cross_cluster(gw_a, "corp-fabric", "10.99.99.99", b"stray")
        net.run(1.0)
        assert payloads(gw_b) == []

    def test_invalid_prefix_rejected(self, two_edomain_net):
        net = two_edomain_net
        sn_a = sn_of(net, "west", 0)
        gw = net.add_host(sn_a, name="gw")
        register_cluster_prefix(gw, "f", "not-a-prefix")
        net.run(1.0)
        module = sn_a.env.service(WellKnownService.CLUSTER_INTERCONNECT)
        assert module.prefixes_registered == 0

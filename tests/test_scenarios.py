"""Tests for the prebuilt scenario builders."""

import pytest

from repro import WellKnownService
from repro.scenarios import enterprise_scenario, metro_federation, small_federation


class TestSmallFederation:
    def test_shape(self):
        handles = small_federation()
        assert len(handles.sns) == 4
        assert set(handles.net.edomains) == {"west", "east"}
        for sn in handles.sns:
            assert sn.env.has_service(WellKnownService.PUBSUB)

    def test_cross_edomain_reachability(self):
        handles = small_federation()
        net = handles.net
        a = net.add_host(handles.sns[0], name="a")
        b = net.add_host(handles.sns[-1], name="b")
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        a.send(conn, b"hi")
        net.run(1.0)
        assert [p.data for _, p in b.delivered] == [b"hi"]


class TestMetroFederation:
    def test_parameterized_shape(self):
        handles = metro_federation(n_edomains=3, sns_per_edomain=2, hosts_per_sn=2)
        assert len(handles.sns) == 6
        assert len(handles.hosts) == 12
        assert len(handles.net.edomains) == 3

    def test_all_pairs_reachable(self):
        handles = metro_federation(n_edomains=3, sns_per_edomain=1, hosts_per_sn=1)
        net = handles.net
        src = handles.hosts[0]
        for dst in handles.hosts[1:]:
            conn = src.connect(
                WellKnownService.IP_DELIVERY, dest_addr=dst.address, allow_direct=False
            )
            src.send(conn, b"probe")
        net.run(1.0)
        for dst in handles.hosts[1:]:
            assert [p.data for _, p in dst.delivered] == [b"probe"]


class TestEnterpriseScenario:
    def test_gateway_wiring(self):
        handles = enterprise_scenario()
        gateway = handles.extras["gateway"]
        assert gateway.pass_through is not None
        assert handles.extras["inside"].first_hop_addresses == [gateway.address]

    def test_inside_to_outside_traffic(self):
        handles = enterprise_scenario()
        net = handles.net
        inside, outside = handles.extras["inside"], handles.extras["outside"]
        conn = inside.connect(
            WellKnownService.IP_DELIVERY, dest_addr=outside.address, allow_direct=False
        )
        inside.send(conn, b"out-we-go")
        net.run(1.0)
        assert [p.data for _, p in outside.delivered] == [b"out-we-go"]

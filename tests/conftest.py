"""Shared fixtures: small InterEdge federations in common shapes."""

from __future__ import annotations

import pytest

from repro import InterEdge
from repro.services import standard_registry


@pytest.fixture
def net() -> InterEdge:
    """An empty federation with the standard service catalog."""
    return InterEdge(registry=standard_registry())


@pytest.fixture
def two_edomain_net() -> InterEdge:
    """Two edomains, two SNs each, fully peered, all services deployed.

    Layout::

        west: sn[0] (border), sn[1]       east: sn[2] (border), sn[3]
    """
    net = InterEdge(registry=standard_registry())
    net.create_edomain("west")
    net.create_edomain("east")
    net.add_sn("west", name="sn-w0")
    net.add_sn("west", name="sn-w1")
    net.add_sn("east", name="sn-e0")
    net.add_sn("east", name="sn-e1")
    net.peer_all()
    net.deploy_required_services()
    return net


def sns_of(net: InterEdge, edomain: str):
    return [net.edomains[edomain].sns[a] for a in net.edomains[edomain].sn_addresses()]


@pytest.fixture
def single_sn_net() -> InterEdge:
    """One edomain, one SN, services deployed — the minimal deployment."""
    net = InterEdge(registry=standard_registry())
    net.create_edomain("solo")
    net.add_sn("solo", name="sn0")
    net.peer_all()
    net.deploy_required_services()
    return net


def open_group(net: InterEdge, owner_host, name: str) -> None:
    """Register ``name`` as an open group for every multipoint service."""
    for prefix in ("pubsub", "multicast", "anycast"):
        group = f"{prefix}:{name}"
        net.lookup.register_group(group, owner_host.keypair)
        net.lookup.post_open_group(group, owner_host.keypair)

"""Unit tests for ILP headers and the packet model."""

import pytest

from repro.core.ilp import Flags, ILPError, ILPHeader, TLV, new_connection_id
from repro.core.packet import (
    ILPPacket,
    L3Header,
    L4Header,
    PacketError,
    Payload,
    RawIPPacket,
    make_payload,
)


class TestILPHeader:
    def test_roundtrip_minimal(self):
        header = ILPHeader(service_id=7, connection_id=123456789)
        decoded = ILPHeader.decode(header.encode())
        assert decoded.service_id == 7
        assert decoded.connection_id == 123456789
        assert decoded.tlvs == {}

    def test_roundtrip_with_tlvs(self):
        header = ILPHeader(service_id=1, connection_id=2, flags=Flags.FIRST)
        header.set_str(TLV.DEST_ADDR, "192.168.1.5")
        header.set_u64(TLV.SEQUENCE, 42)
        header.set_f64(TLV.TIMESTAMP, 3.14)
        header.tlvs[TLV.SERVICE_OPTS] = b"\x00\x01\x02"
        decoded = ILPHeader.decode(header.encode())
        assert decoded.get_str(TLV.DEST_ADDR) == "192.168.1.5"
        assert decoded.get_u64(TLV.SEQUENCE) == 42
        assert decoded.get_f64(TLV.TIMESTAMP) == pytest.approx(3.14)
        assert decoded.tlvs[TLV.SERVICE_OPTS] == b"\x00\x01\x02"
        assert decoded.is_first

    def test_arbitrary_tlv_content_and_length(self):
        """§4: no limits on header contents beyond MTU."""
        header = ILPHeader(service_id=1, connection_id=2)
        header.tlvs[0x90] = bytes(range(256)) * 4
        decoded = ILPHeader.decode(header.encode())
        assert decoded.tlvs[0x90] == bytes(range(256)) * 4

    def test_headers_vary_per_packet_same_connection(self):
        """§4: services may require different headers per packet."""
        base = ILPHeader(service_id=1, connection_id=99)
        pkt1 = base.copy()
        pkt1.set_u64(TLV.SEQUENCE, 1)
        pkt2 = base.copy()
        pkt2.tlvs[TLV.SETUP_FRAG] = b"extra-setup"
        d1 = ILPHeader.decode(pkt1.encode())
        d2 = ILPHeader.decode(pkt2.encode())
        assert d1.connection_id == d2.connection_id == 99
        assert d1.tlvs != d2.tlvs

    def test_encoded_size_accurate(self):
        header = ILPHeader(service_id=1, connection_id=2)
        header.set_str(TLV.DEST_ADDR, "10.0.0.1")
        assert len(header.encode()) == header.encoded_size

    def test_truncated_rejected(self):
        header = ILPHeader(service_id=1, connection_id=2)
        header.set_str(TLV.DEST_ADDR, "10.0.0.1")
        raw = header.encode()
        with pytest.raises(ILPError):
            ILPHeader.decode(raw[:-3])
        with pytest.raises(ILPError):
            ILPHeader.decode(raw[:5])

    def test_bad_version_rejected(self):
        raw = bytearray(ILPHeader(service_id=1, connection_id=2).encode())
        raw[0] = 99
        with pytest.raises(ILPError):
            ILPHeader.decode(bytes(raw))

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ILPError):
            ILPHeader(service_id=-1, connection_id=0)
        with pytest.raises(ILPError):
            ILPHeader(service_id=0x10000, connection_id=0)
        with pytest.raises(ILPError):
            ILPHeader(service_id=0, connection_id=2**64)

    def test_copy_is_deep_for_tlvs(self):
        header = ILPHeader(service_id=1, connection_id=2)
        header.set_str(TLV.TOPIC, "news")
        dup = header.copy()
        dup.set_str(TLV.TOPIC, "sports")
        assert header.get_str(TLV.TOPIC) == "news"

    def test_control_flag(self):
        header = ILPHeader(service_id=1, connection_id=2, flags=Flags.CONTROL)
        assert ILPHeader.decode(header.encode()).is_control

    def test_connection_ids_unique(self):
        ids = {new_connection_id() for _ in range(100)}
        assert len(ids) == 100


class TestPacketModel:
    def test_l3_validates_addresses(self):
        header = L3Header(src="10.0.0.1", dst="10.0.0.2")
        assert header.src == "10.0.0.1"
        with pytest.raises(PacketError):
            L3Header(src="010.0.0.1", dst="10.0.0.2")  # leading zero rejected

    def test_invalid_address_rejected(self):
        with pytest.raises(PacketError):
            L3Header(src="not-an-ip", dst="10.0.0.1")

    def test_ttl_decrement_and_expiry(self):
        header = L3Header(src="10.0.0.1", dst="10.0.0.2", ttl=2)
        header = header.decrement_ttl()
        with pytest.raises(PacketError):
            header.decrement_ttl()

    def test_reversed(self):
        header = L3Header(src="10.0.0.1", dst="10.0.0.2")
        rev = header.reversed()
        assert (rev.src, rev.dst) == ("10.0.0.2", "10.0.0.1")

    def test_invalid_port_rejected(self):
        with pytest.raises(PacketError):
            L4Header(sport=70000, dport=80)

    def test_wire_size_accounts_for_all_parts(self):
        payload = make_payload(b"x" * 100)
        packet = ILPPacket(
            l3=L3Header(src="10.0.0.1", dst="10.0.0.2"),
            ilp_wire=b"y" * 40,
            payload=payload,
        )
        # L2(14) + L3(20) + ILP(40) + L4(8) + data(100)
        assert packet.wire_size == 14 + 20 + 40 + 8 + 100

    def test_payload_without_l4(self):
        payload = Payload(l4=None, data=b"abc")
        assert payload.wire_size == 3

    def test_raw_ip_packet_size(self):
        packet = RawIPPacket(
            l3=L3Header(src="10.0.0.1", dst="10.0.0.2"),
            payload=make_payload(b"zz"),
        )
        assert packet.wire_size == 14 + 20 + 8 + 2

    def test_packet_ids_unique(self):
        p1 = RawIPPacket(
            l3=L3Header(src="10.0.0.1", dst="10.0.0.2"), payload=make_payload(b"")
        )
        p2 = RawIPPacket(
            l3=L3Header(src="10.0.0.1", dst="10.0.0.2"), payload=make_payload(b"")
        )
        assert p1.packet_id != p2.packet_id

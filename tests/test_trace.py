"""Unit tests for tracing and statistics helpers."""

import pytest

from repro.netsim.trace import FlowStats, PacketTrace, percentile, summarize


class TestPacketTrace:
    def test_record_and_filter(self):
        trace = PacketTrace()
        trace.record(0.0, "sn1", "rx")
        trace.record(0.1, "sn1", "tx")
        trace.record(0.2, "sn2", "rx")
        assert trace.count() == 3
        assert trace.count(event="rx") == 2
        assert trace.count(node="sn1") == 2
        assert trace.count(event="rx", node="sn2") == 1

    def test_clear(self):
        trace = PacketTrace()
        trace.record(0.0, "a", "x")
        trace.clear()
        assert trace.count() == 0


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [float(i) for i in range(10)]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)


class TestFlowStats:
    def test_latency_summary(self):
        stats = FlowStats()
        for i in range(10):
            stats.add(sent_at=0.0, received_at=0.001 * (i + 1), size=100)
        summary = stats.latency_summary()
        assert summary["count"] == 10
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.010)
        assert summary["median"] == pytest.approx(0.0055)

    def test_empty_summary(self):
        assert FlowStats().latency_summary() == {"count": 0}

    def test_delivery_ratio(self):
        stats = FlowStats()
        stats.packets_sent = 4
        stats.add(0.0, 0.1)
        stats.add(0.0, 0.1)
        assert stats.delivery_ratio == 0.5

    def test_delivery_ratio_nothing_sent(self):
        assert FlowStats().delivery_ratio == 0.0

    def test_throughput(self):
        stats = FlowStats()
        stats.add(0.0, 1.0, size=1000)
        assert stats.throughput_bps(1.0) == pytest.approx(8000.0)
        assert stats.throughput_bps(0.0) == 0.0


class TestSummarize:
    def test_basic(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty(self):
        assert summarize([]) == {"count": 0}

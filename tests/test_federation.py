"""Unit tests for edomains, peering, discovery, and deployment."""

import pytest

from repro import InterEdge, WellKnownService
from repro.core.discovery import (
    DiscoveryDirectory,
    DiscoveryError,
    associate_via_anycast,
)
from repro.core.edomain import EdomainError
from repro.core.federation import FederationError
from repro.core.service_module import Standardization
from repro.netsim import Link
from repro.services import IPDeliveryService, NullService, standard_registry


class TestEdomain:
    def test_internal_full_mesh(self, net):
        net.create_edomain("d")
        sns = [net.add_sn("d") for _ in range(4)]
        pipes = net.edomains["d"].connect_internal()
        assert pipes == 6  # C(4,2)
        for a in sns:
            for b in sns:
                if a is not b:
                    assert a.has_pipe_to(b.address)

    def test_wrong_edomain_sn_rejected(self, net):
        net.create_edomain("d1")
        net.create_edomain("d2")
        sn = net.add_sn("d1")
        with pytest.raises(EdomainError):
            net.edomains["d2"].add_sn(sn)

    def test_border_designation(self, net):
        net.create_edomain("d")
        sn1 = net.add_sn("d")
        sn2 = net.add_sn("d")
        assert net.edomains["d"].border_sn is sn1  # first by default
        net.edomains["d"].designate_border(sn2.address)
        assert net.edomains["d"].border_sn is sn2

    def test_core_client_wired(self, net):
        net.create_edomain("d")
        sn = net.add_sn("d")
        assert sn.core_client is not None
        assert sn.core_client.edomain_name == "d"
        assert sn.core_client.membership.sn_address == sn.address


class TestPeering:
    def test_full_mesh_between_edomains(self, net):
        for name in ("a", "b", "c"):
            net.create_edomain(name)
            net.add_sn(name)
            net.add_sn(name)
        net.peer_all()
        # Every pair of borders has a pipe.
        borders = [net.edomains[n].border_sn for n in ("a", "b", "c")]
        for i, x in enumerate(borders):
            for y in borders[i + 1 :]:
                assert x.has_pipe_to(y.address)

    def test_border_mapping_on_every_sn(self, net):
        for name in ("a", "b"):
            net.create_edomain(name)
            net.add_sn(name)
            net.add_sn(name)
        net.peer_all()
        border_a = net.edomains["a"].border_sn
        border_b = net.edomains["b"].border_sn
        for sn in net.edomains["a"].sns.values():
            expected = border_b.address if sn is border_a else border_a.address
            assert sn.border_peer_for("b") == expected

    def test_next_hop_same_edomain(self, net):
        net.create_edomain("a")
        sn1 = net.add_sn("a")
        sn2 = net.add_sn("a")
        net.peer_all()
        assert sn1.next_hop_for_sn(sn2.address) == sn2.address
        assert sn1.next_hop_for_sn(sn1.address) is None

    def test_next_hop_cross_edomain_via_border(self, net):
        net.create_edomain("a")
        net.create_edomain("b")
        border_a = net.add_sn("a")
        inner_a = net.add_sn("a")
        border_b = net.add_sn("b")
        inner_b = net.add_sn("b")
        net.peer_all()
        # inner_a -> inner_b: relay through border_a (its edomain's exit).
        assert inner_a.next_hop_for_sn(inner_b.address) == border_a.address
        # border_a -> inner_b: next hop is border_b.
        assert border_a.next_hop_for_sn(inner_b.address) == border_b.address

    def test_on_demand_direct_pipe_shortcuts(self, net):
        net.create_edomain("a")
        net.create_edomain("b")
        net.add_sn("a")
        inner_a = net.add_sn("a")
        net.add_sn("b")
        inner_b = net.add_sn("b")
        net.peer_all()
        net.establish_direct(inner_a, inner_b)
        assert inner_a.next_hop_for_sn(inner_b.address) == inner_b.address

    def test_direct_pipe_same_edomain_rejected(self, net):
        net.create_edomain("a")
        sn1 = net.add_sn("a")
        sn2 = net.add_sn("a")
        with pytest.raises(FederationError):
            net.establish_direct(sn1, sn2)

    def test_unknown_edomain_next_hop_none(self, net):
        net.create_edomain("a")
        sn = net.add_sn("a")
        net.peer_all()
        assert sn.next_hop_for_sn("9.9.9.9") is None


class TestDeployment:
    def test_required_services_on_all_sns(self):
        net = InterEdge(registry=standard_registry())
        net.create_edomain("a")
        net.create_edomain("b")
        sns = [net.add_sn("a"), net.add_sn("a"), net.add_sn("b")]
        net.peer_all()
        count = net.deploy_required_services()
        n_services = len(net.registry.required_services())
        assert count == 3 * n_services
        for sn in sns:
            assert sn.env.has_service(WellKnownService.PUBSUB)
            assert sn.env.has_service(WellKnownService.IP_DELIVERY)

    def test_deploy_is_idempotent(self):
        net = InterEdge(registry=standard_registry())
        net.create_edomain("a")
        net.add_sn("a")
        net.peer_all()
        net.deploy_required_services()
        assert net.deploy_required_services() == 0

    def test_new_service_rollout(self, net):
        """§3.3 extensibility: standardize, then deploy everywhere."""
        net.create_edomain("a")
        net.add_sn("a")
        net.add_sn("a")
        net.peer_all()

        class ShinyService(NullService):
            SERVICE_ID = 0x0F00
            NAME = "shiny"

        count = net.deploy_service(ShinyService)
        assert count == 2
        assert net.registry.known(0x0F00)
        # Unaware SNs added later can still deploy it from the registry.
        late = net.add_sn("a")
        net.deploy_service(ShinyService)
        assert late.env.has_service(0x0F00)

    def test_duplicate_edomain_rejected(self, net):
        net.create_edomain("a")
        with pytest.raises(FederationError):
            net.create_edomain("a")

    def test_enclave_honored_by_requires_flag(self):
        net = InterEdge(registry=standard_registry())
        net.create_edomain("a")
        sn = net.add_sn("a")
        net.peer_all()
        net.deploy_required_services()
        assert sn.env.enclave_for(WellKnownService.ODNS) is not None
        assert sn.env.enclave_for(WellKnownService.NULL) is None


class TestDiscovery:
    def _world(self, net):
        net.create_edomain("d")
        sn_near = net.add_sn("d")
        sn_far = net.add_sn("d")
        net.peer_all()
        host = net.add_host(sn_near, name="h")
        # Host can also reach sn_far, but over a slower path.
        Link(net.sim, host, sn_far, latency=0.050)
        directory = DiscoveryDirectory()
        directory.advertise(sn_near, iesp="acme", region="us-west")
        directory.advertise(sn_far, iesp="acme", region="us-east")
        return host, sn_near, sn_far, directory

    def test_by_config(self, net):
        host, sn_near, _, directory = self._world(net)
        assert directory.by_config(sn_near.address) is sn_near
        with pytest.raises(DiscoveryError):
            directory.by_config("0.0.0.0")

    def test_by_lookup_filters(self, net):
        host, sn_near, sn_far, directory = self._world(net)
        assert directory.by_lookup(region="us-east") == [sn_far]
        assert set(directory.by_lookup(iesp="acme")) == {sn_near, sn_far}
        with pytest.raises(DiscoveryError):
            directory.by_lookup(iesp="ghost")

    def test_anycast_picks_nearest(self, net):
        host, sn_near, sn_far, directory = self._world(net)
        assert directory.by_anycast(host) is sn_near

    def test_anycast_load_tiebreak(self, net):
        net.create_edomain("d")
        sn1 = net.add_sn("d")
        sn2 = net.add_sn("d")
        net.peer_all()
        host = net.add_host(sn1, name="h", latency=0.001)
        Link(net.sim, host, sn2, latency=0.001)
        directory = DiscoveryDirectory()
        directory.advertise(sn1, iesp="acme", region="r", load=0.9)
        directory.advertise(sn2, iesp="acme", region="r", load=0.1)
        assert directory.by_anycast(host) is sn2

    def test_associate_via_anycast(self, net):
        host, sn_near, _, directory = self._world(net)
        chosen = associate_via_anycast(host, directory)
        assert chosen is sn_near
        assert host.address in sn_near.associated_hosts

    def test_withdraw(self, net):
        host, sn_near, sn_far, directory = self._world(net)
        directory.withdraw(sn_near)
        assert directory.by_anycast(host) is sn_far

"""Property: flow-run batched ingress ≡ per-packet ingress, observably.

``PipeTerminus.receive_batch`` groups consecutive same-flow packets into
runs and amortizes decode/lookup/encode/seal across each run. This test
drives two identically-constructed termini with the same arbitrary packet
sequence — one via N× :meth:`receive`, one via a single
:meth:`receive_batch` — and requires every observable to match exactly:

* terminus stats, decision-cache stats, and per-peer PSP stats;
* decision-cache contents including entry order (LRU), per-entry hit
  counters, and timestamps;
* the transmitted packets: peers, outer L3, *wire bytes* (so nonce
  sequencing and sealing are byte-identical), payloads, and qos_src —
  in the same order.

The sequences mix flows (run lengths from 1 to the whole batch), cache
hits and cold runs, CONTROL/LAST punts, offload rules (count, forward,
fall-through), bad auth, unknown peers, unknown services, malformed
headers, and fan-out decisions with TLV rewrites.

A second property feeds the same sequences through a seeded wire-fault
transform (drops, duplicates, auth-tag corruption — the shapes a lossy or
hostile pipe produces) before both rigs see them: equivalence must hold,
stats included, for whatever actually arrives.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Any

from hypothesis import given, settings, strategies as st

from repro.core.decision_cache import (
    Action,
    CacheKey,
    Decision,
    ForwardTarget,
)
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.core.offload import ActionKind, Match, MatchField, OffloadAction
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_module import ServiceModule, Verdict
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator

SN_ADDR = "10.0.0.1"
PEER_A = "10.0.0.2"
PEER_B = "10.0.0.3"
UNKNOWN_PEER = "9.9.9.9"
OFFLOAD_SERVICE = 43  # has offload rules, no module
MISSING_SERVICE = 44  # neither module nor offload program


class _DeterministicService(ServiceModule):
    """Slow-path behavior keyed off the connection ID, fully deterministic."""

    SERVICE_ID = 42
    NAME = "deterministic"

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        conn = header.connection_id
        mode = conn % 4
        if mode == 0:
            return Verdict.drop()
        if mode == 1:
            # Install + emit: the rest of the run becomes a fast-path hit.
            verdict = Verdict.forward(PEER_B, header, packet.payload)
            verdict.installs.append(
                (
                    CacheKey(packet.l3.src, self.SERVICE_ID, conn),
                    Decision.forward(PEER_B),
                )
            )
            return verdict
        if mode == 2:
            # Emit without installing: every packet of the flow punts.
            return Verdict.forward(PEER_B, header, packet.payload)
        # mode == 3: install a fan-out decision with a TLV rewrite.
        verdict = Verdict(dropped=True)
        verdict.installs.append(
            (
                CacheKey(packet.l3.src, self.SERVICE_ID, conn),
                Decision(
                    action=Action.FORWARD,
                    targets=(
                        ForwardTarget(PEER_B),
                        ForwardTarget(
                            PEER_A, tlv_updates=((TLV.DEST_SN, b"10.0.9.9"),)
                        ),
                    ),
                ),
            )
        )
        return verdict

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        return Verdict.drop()


class _Rig:
    """One SN whose terminus transmits into a recording sink."""

    def __init__(self) -> None:
        self.sim = Simulator()
        self.node = ServiceNode(self.sim, "sn", SN_ADDR)
        self.terminus = self.node.terminus
        self.sent: list[tuple] = []
        self.terminus.set_transmit(self._sink)
        self.tx: dict[str, PSPContext] = {}
        for peer in (PEER_A, PEER_B):
            secret = pairwise_secret(SN_ADDR, peer)
            self.node.keystore.establish(peer, secret)
            self.tx[peer] = PSPContext(secret)
        self.node.env.load(_DeterministicService())
        offload = self.terminus.offload
        offload.install_rule(
            OFFLOAD_SERVICE,
            (),
            OffloadAction(ActionKind.COUNT, "seen"),
        )
        offload.install_rule(
            OFFLOAD_SERVICE,
            (Match(MatchField.PAYLOAD_LEN_GT, 12),),
            OffloadAction(ActionKind.FORWARD, PEER_B),
        )

    def _sink(self, peer: str, pkt: ILPPacket) -> bool:
        self.sent.append(
            (
                peer,
                pkt.l3.src,
                pkt.l3.dst,
                pkt.ilp_wire,
                pkt.payload.l4,
                pkt.payload.data,
                pkt.qos_src,
                pkt.created_at,
            )
        )
        return True

    def build_packet(self, spec: dict) -> ILPPacket:
        kind = spec["kind"]
        peer = spec["peer"]
        header = ILPHeader(
            service_id=spec["service_id"],
            connection_id=spec["conn"],
            flags=spec["flags"],
        )
        if spec["src_host"]:
            header.set_str(TLV.SRC_HOST, "192.168.0.12")
        if spec["seq"] is not None:
            header.set_u64(TLV.SEQUENCE, spec["seq"])
        plaintext = b"\x01\x02" if kind == "malformed" else header.encode()
        wire = self.tx[peer].seal(plaintext)
        if kind == "badauth":
            wire = wire[:-1] + bytes([wire[-1] ^ 0x01])
        l3_src = UNKNOWN_PEER if kind == "unknown_peer" else peer
        return ILPPacket(
            l3=L3Header(src=l3_src, dst=SN_ADDR),
            ilp_wire=wire,
            payload=make_payload(b"y" * spec["payload_len"]),
        )

    def observable_state(self) -> dict:
        cache = self.terminus.cache
        return {
            "terminus": asdict(self.terminus.stats),
            "cache_stats": asdict(cache.stats),
            "cache_entries": cache.snapshot_entries(),
            "psp": {
                peer: asdict(ctx.stats)
                for peer, ctx in self.node.keystore.contexts.items()
            },
            "offload_hits": self.terminus.offload.offload_hits,
            "offload_drops": self.terminus.offload.offload_drops,
            "offload_stats": self.terminus.offload.stats(),
            "sent": self.sent,
        }


_spec = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(
            [
                "data",
                "data",
                "data",  # weight toward runnable data packets
                "control",
                "last",
                "badauth",
                "unknown_peer",
                "malformed",
            ]
        ),
        "peer": st.sampled_from([PEER_A, PEER_B]),
        "service_id": st.sampled_from(
            [42, 42, 42, OFFLOAD_SERVICE, MISSING_SERVICE]
        ),
        "conn": st.integers(min_value=0, max_value=5),
        "payload_len": st.sampled_from([0, 8, 40]),
        "src_host": st.booleans(),
        # None keeps plaintexts identical within a flow (long runs); a
        # varying sequence TLV fragments runs down to length 1.
        "seq": st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
    }
).map(
    lambda s: {
        **s,
        "flags": Flags.CONTROL
        if s["kind"] == "control"
        else (Flags.LAST if s["kind"] == "last" else Flags.NONE),
    }
)

# Duplicate each drawn spec a few times so consecutive identical packets
# (the flow-run shape) actually occur instead of relying on collisions.
_spec_burst = st.tuples(_spec, st.integers(min_value=1, max_value=6)).map(
    lambda pair: [pair[0]] * pair[1]
)


_spec_list = st.lists(_spec_burst, min_size=0, max_size=12).map(
    lambda bursts: [spec for burst in bursts for spec in burst]
)


def apply_wire_faults(specs: list[dict], seed: int) -> list[dict]:
    """A seeded model of what a faulty pipe does to a packet sequence.

    Per packet: ~15% dropped in flight, ~10% arrive with a corrupted auth
    tag, ~15% arrive duplicated (loss-triggered retransmit racing the
    original). Deterministic in ``seed`` so both rigs — and any replay —
    see the identical arrival sequence.
    """
    rng = random.Random(seed)
    arrived: list[dict] = []
    for spec in specs:
        roll = rng.random()
        if roll < 0.15:
            continue
        if roll < 0.25 and spec["kind"] != "malformed":
            spec = {**spec, "kind": "badauth"}
        arrived.append(spec)
        if roll > 0.85:
            arrived.append(spec)
    return arrived


def _assert_batch_equals_scalar(specs: list[dict]) -> None:
    rig_scalar, rig_batch = _Rig(), _Rig()
    scalar_packets = [rig_scalar.build_packet(s) for s in specs]
    batch_packets = [rig_batch.build_packet(s) for s in specs]

    for packet in scalar_packets:
        rig_scalar.terminus.receive(packet)
    assert rig_batch.terminus.receive_batch(batch_packets) == len(specs)

    assert rig_batch.observable_state() == rig_scalar.observable_state()


@settings(max_examples=60, deadline=None)
@given(_spec_list)
def test_receive_batch_equals_per_packet(specs):
    _assert_batch_equals_scalar(specs)


@settings(max_examples=40, deadline=None)
@given(_spec_list, st.integers(min_value=0, max_value=2**32 - 1))
def test_receive_batch_equals_per_packet_under_faults(specs, seed):
    """Drops, duplicates, and corrupted frames keep the paths identical.

    Duplicates stress run coalescing (a duplicated packet extends its
    flow run), corruption stresses the mid-run auth-failure bailout, and
    drops reshuffle run boundaries — none may cause the batched path to
    diverge from per-packet processing in any observable, stats included.
    """
    _assert_batch_equals_scalar(apply_wire_faults(specs, seed))

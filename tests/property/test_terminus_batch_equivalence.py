"""Property: sharded batch ingress ≡ per-packet ingress, per flow.

``PipeTerminus.receive_batch`` shards a burst into flow groups — every
packet with the same (ingress peer, header plaintext) — and amortizes
decode/lookup/encode/seal across each group. Its contract (module
docstring of :mod:`repro.core.pipe_terminus`) has two strengths, and this
file tests both:

**Flow-contiguous bursts — full observable equality.** When each flow's
packets arrive adjacent (what a flow-local delivery event looks like),
sharding merges nothing across flows and every observable must match
per-packet :meth:`receive` exactly: terminus stats, decision-cache stats
and contents *including LRU order*, per-peer PSP stats, and the
transmitted packets — peers, outer L3, **wire bytes** (so nonce
sequencing is byte-identical), payloads, qos_src, in the same order.

**Arbitrary interleavings — per-flow equality.** Sharding reorders
*across* flows (sound: the PSP-style header crypto is order-independent
per packet — the nonce travels with the packet), but never within one.
For any interleaving, each flow's projected output sequence — opened
header plaintext, payload, qos_src, in order — must equal the scalar
path's, along with all aggregate stats and the decision-cache contents
as a set. When flows forward over *distinct* egress associations, the
per-flow wire bytes themselves must be identical too (each egress
context's nonce sequence then depends on one flow only).

The sequences mix flows (run lengths from 1 to the whole batch), cache
hits and cold groups, CONTROL/LAST barrier punts, offload rules (count,
forward, fall-through), bad auth, unknown peers, unknown services,
malformed headers, and fan-out decisions with TLV rewrites. Fault
variants feed the same sequences through a seeded wire-fault transform
(drops, duplicates, auth-tag corruption — the shapes a lossy or hostile
pipe produces) before both rigs see them: equivalence must hold, stats
included, for whatever actually arrives.

The batched rig's cold groups take the **coalesced miss path** (lead
punt + miss-queue drain, spans batched through ``invoke_batch`` — see
the terminus module docstring), so these properties also pin down its
equivalence: identical punt counts, invocation counts, installs, and
per-flow emissions whether the slow path runs per-packet or coalesced.
The cold-storm properties below drive that path directly — all-miss
interleaved bursts, installing and non-installing services mixed — and
additionally assert the miss-queue ledger balances (every parked packet
drained or replayed, none live after the burst).
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Any

from hypothesis import given, settings, strategies as st

from repro.core.decision_cache import (
    Action,
    CacheKey,
    Decision,
    ForwardTarget,
)
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.core.offload import ActionKind, Match, MatchField, OffloadAction
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_module import ServiceModule, Verdict
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator

SN_ADDR = "10.0.0.1"
PEER_A = "10.0.0.2"
PEER_B = "10.0.0.3"
UNKNOWN_PEER = "9.9.9.9"
OFFLOAD_SERVICE = 43  # has offload rules, no module
MISSING_SERVICE = 44  # neither module nor offload program


class _DeterministicService(ServiceModule):
    """Slow-path behavior keyed off the connection ID, fully deterministic."""

    SERVICE_ID = 42
    NAME = "deterministic"

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        conn = header.connection_id
        mode = conn % 4
        if mode == 0:
            return Verdict.drop()
        if mode == 1:
            # Install + emit: the rest of the run becomes a fast-path hit.
            verdict = Verdict.forward(PEER_B, header, packet.payload)
            verdict.installs.append(
                (
                    CacheKey(packet.l3.src, self.SERVICE_ID, conn),
                    Decision.forward(PEER_B),
                )
            )
            return verdict
        if mode == 2:
            # Emit without installing: every packet of the flow punts.
            return Verdict.forward(PEER_B, header, packet.payload)
        # mode == 3: install a fan-out decision with a TLV rewrite.
        verdict = Verdict(dropped=True)
        verdict.installs.append(
            (
                CacheKey(packet.l3.src, self.SERVICE_ID, conn),
                Decision(
                    action=Action.FORWARD,
                    targets=(
                        ForwardTarget(PEER_B),
                        ForwardTarget(
                            PEER_A, tlv_updates=((TLV.DEST_SN, b"10.0.9.9"),)
                        ),
                    ),
                ),
            )
        )
        return verdict

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        return Verdict.drop()


class _Rig:
    """One SN whose terminus transmits into a recording sink."""

    def __init__(self) -> None:
        self.sim = Simulator()
        self.node = ServiceNode(self.sim, "sn", SN_ADDR)
        self.terminus = self.node.terminus
        self.sent: list[tuple] = []
        self.terminus.set_transmit(self._sink)
        self.tx: dict[str, PSPContext] = {}
        for peer in (PEER_A, PEER_B):
            secret = pairwise_secret(SN_ADDR, peer)
            self.node.keystore.establish(peer, secret)
            self.tx[peer] = PSPContext(secret)
        self.node.env.load(_DeterministicService())
        offload = self.terminus.offload
        offload.install_rule(
            OFFLOAD_SERVICE,
            (),
            OffloadAction(ActionKind.COUNT, "seen"),
        )
        offload.install_rule(
            OFFLOAD_SERVICE,
            (Match(MatchField.PAYLOAD_LEN_GT, 12),),
            OffloadAction(ActionKind.FORWARD, PEER_B),
        )

    def _sink(self, peer: str, pkt: ILPPacket) -> bool:
        self.sent.append(
            (
                peer,
                pkt.l3.src,
                pkt.l3.dst,
                pkt.ilp_wire,
                pkt.payload.l4,
                pkt.payload.data,
                pkt.qos_src,
                pkt.created_at,
            )
        )
        return True

    def build_packet(self, spec: dict) -> ILPPacket:
        kind = spec["kind"]
        peer = spec["peer"]
        header = ILPHeader(
            service_id=spec["service_id"],
            connection_id=spec["conn"],
            flags=spec["flags"],
        )
        if spec["src_host"]:
            header.set_str(TLV.SRC_HOST, "192.168.0.12")
        if spec["seq"] is not None:
            header.set_u64(TLV.SEQUENCE, spec["seq"])
        plaintext = b"\x01\x02" if kind == "malformed" else header.encode()
        wire = self.tx[peer].seal(plaintext)
        if kind == "badauth":
            wire = wire[:-1] + bytes([wire[-1] ^ 0x01])
        l3_src = UNKNOWN_PEER if kind == "unknown_peer" else peer
        return ILPPacket(
            l3=L3Header(src=l3_src, dst=SN_ADDR),
            ilp_wire=wire,
            payload=make_payload(b"y" * spec["payload_len"]),
        )

    def observable_state(self) -> dict:
        cache = self.terminus.cache
        return {
            "terminus": asdict(self.terminus.stats),
            "cache_stats": asdict(cache.stats),
            "cache_entries": cache.snapshot_entries(),
            "psp": {
                peer: asdict(ctx.stats)
                for peer, ctx in self.node.keystore.contexts.items()
            },
            "offload_hits": self.terminus.offload.offload_hits,
            "offload_drops": self.terminus.offload.offload_drops,
            "offload_stats": self.terminus.offload.stats(),
            "sent": self.sent,
        }


_spec = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(
            [
                "data",
                "data",
                "data",  # weight toward runnable data packets
                "control",
                "last",
                "badauth",
                "unknown_peer",
                "malformed",
            ]
        ),
        "peer": st.sampled_from([PEER_A, PEER_B]),
        "service_id": st.sampled_from(
            [42, 42, 42, OFFLOAD_SERVICE, MISSING_SERVICE]
        ),
        "conn": st.integers(min_value=0, max_value=5),
        "payload_len": st.sampled_from([0, 8, 40]),
        "src_host": st.booleans(),
        # None keeps plaintexts identical within a flow (long runs); a
        # varying sequence TLV fragments runs down to length 1.
        "seq": st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
    }
).map(
    lambda s: {
        **s,
        "flags": Flags.CONTROL
        if s["kind"] == "control"
        else (Flags.LAST if s["kind"] == "last" else Flags.NONE),
    }
)

# Duplicate each drawn spec a few times so consecutive identical packets
# (the flow-run shape) actually occur instead of relying on collisions.
_spec_burst = st.tuples(_spec, st.integers(min_value=1, max_value=6)).map(
    lambda pair: [pair[0]] * pair[1]
)


_spec_list = st.lists(_spec_burst, min_size=0, max_size=12).map(
    lambda bursts: [spec for burst in bursts for spec in burst]
)


def apply_wire_faults(specs: list[dict], seed: int) -> list[dict]:
    """A seeded model of what a faulty pipe does to a packet sequence.

    Per packet: ~15% dropped in flight, ~10% arrive with a corrupted auth
    tag, ~15% arrive duplicated (loss-triggered retransmit racing the
    original). Deterministic in ``seed`` so both rigs — and any replay —
    see the identical arrival sequence.
    """
    rng = random.Random(seed)
    arrived: list[dict] = []
    for spec in specs:
        roll = rng.random()
        if roll < 0.15:
            continue
        if roll < 0.25 and spec["kind"] != "malformed":
            spec = {**spec, "kind": "badauth"}
        arrived.append(spec)
        if roll > 0.85:
            arrived.append(spec)
    return arrived


def _flow_sort(specs: list[dict]) -> list[dict]:
    """Stable-sort a sequence flow-contiguous.

    Sorts by every field that shapes the header plaintext (plus the
    ingress peer and kind), so each (peer, plaintext) flow's packets end
    up adjacent while their relative order — and therefore their payload
    sequence — is preserved. On such input the sharding stage merges
    nothing across flows, which is what makes full observable equality
    (LRU order and global emit order included) attainable.
    """
    return sorted(
        specs,
        key=lambda s: (
            s["peer"],
            s["kind"],
            s["service_id"],
            s["conn"],
            s["flags"],
            s["src_host"],
            -1 if s["seq"] is None else s["seq"],
        ),
    )


def _drive(specs: list[dict], rig_factory=None) -> tuple["_Rig", "_Rig"]:
    rig_factory = rig_factory or _Rig
    rig_scalar, rig_batch = rig_factory(), rig_factory()
    scalar_packets = [rig_scalar.build_packet(s) for s in specs]
    batch_packets = [rig_batch.build_packet(s) for s in specs]
    for packet in scalar_packets:
        rig_scalar.terminus.receive(packet)
    assert rig_batch.terminus.receive_batch(batch_packets) == len(specs)
    return rig_scalar, rig_batch


def _assert_batch_equals_scalar(specs: list[dict]) -> None:
    rig_scalar, rig_batch = _drive(specs)
    assert rig_batch.observable_state() == rig_scalar.observable_state()


def _per_flow_projection(rig: _Rig) -> dict:
    """``rig.sent`` regrouped by flow, order within each flow preserved.

    A flow on egress is keyed by (egress peer, opened header plaintext):
    the terminus never rewrites a header differently for two packets of
    one flow group, and the test strategies make that key injective over
    ingress flows. Wire bytes are deliberately opened away — nonce
    positions on a shared egress association are global-order-dependent,
    which per-flow equivalence does not promise.
    """
    openers = {
        peer: PSPContext(pairwise_secret(SN_ADDR, peer))
        for peer in (PEER_A, PEER_B)
    }
    flows: dict[tuple, list[tuple]] = {}
    for peer, l3s, l3d, wire, l4, data, qos_src, created in rig.sent:
        plain = openers[peer].open(wire)
        flows.setdefault((peer, plain), []).append(
            (l3s, l3d, plain, l4, data, qos_src, created)
        )
    return flows


def _relaxed_state(rig: _Rig) -> dict:
    """Observable state minus the two globally-ordered artifacts.

    Cross-flow reordering legitimately permutes the LRU order of the
    decision cache and the global emit sequence; everything else —
    every stats counter, the cache contents as a set (entries, hit
    counts, timestamps), PSP and offload counters — must still match
    exactly.
    """
    state = rig.observable_state()
    state["cache_entries"] = sorted(
        state["cache_entries"],
        key=lambda row: (row[0].src, row[0].service_id, row[0].connection_id),
    )
    del state["sent"]
    return state


def _assert_per_flow_equivalent(specs: list[dict]) -> None:
    rig_scalar, rig_batch = _drive(specs)
    assert _per_flow_projection(rig_batch) == _per_flow_projection(rig_scalar)
    assert _relaxed_state(rig_batch) == _relaxed_state(rig_scalar)


@settings(max_examples=60, deadline=None)
@given(_spec_list)
def test_flow_contiguous_batch_equals_per_packet(specs):
    """Flow-contiguous bursts: every observable matches, byte for byte."""
    _assert_batch_equals_scalar(_flow_sort(specs))


@settings(max_examples=40, deadline=None)
@given(_spec_list, st.integers(min_value=0, max_value=2**32 - 1))
def test_flow_contiguous_batch_equals_per_packet_under_faults(specs, seed):
    """Drops, duplicates, and corrupted frames keep the paths identical.

    Duplicates stress group coalescing (a duplicated packet extends its
    flow group), corruption stresses the mid-group auth-failure bailout,
    and drops reshuffle group boundaries — none may cause the batched
    path to diverge from per-packet processing in any observable. Faults
    preserve flow contiguity (drops remove, duplicates append adjacent,
    corruption mutates in place), so the full-equality contract applies.
    """
    _assert_batch_equals_scalar(apply_wire_faults(_flow_sort(specs), seed))


# For the arbitrary-interleaving properties the ingress peer is derived
# from the connection ID, making (egress peer, opened plaintext) an
# injective flow key — without this, two ingress flows with identical
# plaintext on different pipes would alias in the projection.
_ispec_list = _spec_list.map(
    lambda specs: [
        {**s, "peer": PEER_A if s["conn"] % 2 == 0 else PEER_B}
        for s in specs
    ]
)


@settings(max_examples=60, deadline=None)
@given(_ispec_list)
def test_interleaved_batch_preserves_per_flow_output(specs):
    """Arbitrary interleavings: per-flow output and aggregate state match.

    This is the sharding stage's reason to exist — run lengths of 1 —
    and its contract: each flow's opened output sequence is identical to
    scalar processing, stats agree exactly, and only globally-ordered
    artifacts (LRU order, cross-flow emit interleaving) may differ.
    """
    _assert_per_flow_equivalent(specs)


@settings(max_examples=40, deadline=None)
@given(_ispec_list, st.integers(min_value=0, max_value=2**32 - 1))
def test_interleaved_batch_preserves_per_flow_output_under_faults(specs, seed):
    """Per-flow equivalence survives seeded drops/dups/corruption."""
    _assert_per_flow_equivalent(apply_wire_faults(specs, seed))


# -- cold storms: the coalesced miss path ---------------------------------

# All-miss material: data packets only, caches start empty, connection IDs
# cover every verdict mode of _DeterministicService (install+emit,
# emit-no-install, drop, fan-out install) plus offload-programmed and
# missing services — i.e. every branch of the cold-span planner.
_storm_spec_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.sampled_from([42, 42, 42, OFFLOAD_SERVICE, MISSING_SERVICE]),
        st.sampled_from([0, 8, 40]),
        st.booleans(),
    ),
    min_size=0,
    max_size=64,
).map(
    lambda rows: [
        {
            "kind": "data",
            "peer": PEER_A if conn % 2 == 0 else PEER_B,
            "service_id": service_id,
            "conn": conn,
            "payload_len": payload_len,
            "src_host": src_host,
            "seq": None,
            "flags": Flags.NONE,
        }
        for conn, service_id, payload_len, src_host in rows
    ]
)


def _assert_storm_equivalent(specs: list[dict], rig_factory=None) -> None:
    rig_scalar, rig_batch = _drive(specs, rig_factory)
    assert _per_flow_projection(rig_batch) == _per_flow_projection(rig_scalar)
    assert _relaxed_state(rig_batch) == _relaxed_state(rig_scalar)
    # Coalescing must not change how much slow-path traffic the services
    # see: same punt count (also covered by _relaxed_state) and the same
    # number of invocations crossing the channel, however they are framed.
    scalar_ch, batch_ch = (
        rig_scalar.terminus.channel.stats,
        rig_batch.terminus.channel.stats,
    )
    assert batch_ch.invocations == scalar_ch.invocations
    # Miss-queue ledger: every parked packet left through exactly one
    # exit, and none is still parked after the burst.
    queue = rig_batch.terminus.miss_queue
    assert queue.live == 0
    mq = queue.stats
    assert mq.parked == mq.drained_fast + mq.replayed + mq.dropped
    # The scalar rig never parks anything.
    assert rig_scalar.terminus.miss_queue.stats.parked == 0


@settings(max_examples=60, deadline=None)
@given(_storm_spec_list)
def test_cold_storm_coalesced_miss_path_is_equivalent(specs):
    """All-miss interleaved bursts: coalesced punts ≡ per-packet punts.

    Installing flows punt once and drain their followers off the fresh
    install; non-installing/missing-service flows fall back to per-packet
    replay — either way every per-flow observable, every stats counter,
    and the total invocation count must equal the scalar slow path.
    """
    _assert_storm_equivalent(specs)


@settings(max_examples=40, deadline=None)
@given(_storm_spec_list, st.integers(min_value=0, max_value=2**32 - 1))
def test_cold_storm_equivalence_under_faults(specs, seed):
    """Seeded drops/dups/corruption cannot desynchronize the miss path."""
    _assert_storm_equivalent(apply_wire_faults(specs, seed))


class _TinyQueueRig(_Rig):
    """A rig whose miss queue parks at most one follower per flow.

    Forces the spill path on nearly every cold group: spilled packets
    must flow through per-packet processing after the drained followers,
    preserving per-flow order and all counters.
    """

    def __init__(self) -> None:
        super().__init__()
        self.terminus.miss_queue.limit = 1


@settings(max_examples=40, deadline=None)
@given(_storm_spec_list)
def test_cold_storm_equivalence_with_overflowing_miss_queue(specs):
    """A saturated miss queue degrades to per-packet replay, not divergence."""
    _assert_storm_equivalent(specs, _TinyQueueRig)


# -- distinct egress associations: byte-identical wire output ------------

EGRESS_PEERS = tuple(f"10.0.1.{i + 1}" for i in range(6))


class _FanRig(_Rig):
    """A rig whose six data flows forward over six *distinct* pipes.

    One pre-installed decision per (ingress peer, conn) maps connection
    ``i`` to egress peer ``EGRESS_PEERS[i]``; with the ingress peer also
    derived from the conn, each egress association carries exactly one
    flow, so its nonce sequence depends on that flow alone and the wire
    bytes themselves must match the scalar path.
    """

    def __init__(self) -> None:
        super().__init__()
        for peer in EGRESS_PEERS:
            self.node.keystore.establish(peer, pairwise_secret(SN_ADDR, peer))
        for ingress in (PEER_A, PEER_B):
            for conn, egress in enumerate(EGRESS_PEERS):
                self.terminus.cache.install(
                    CacheKey(ingress, _DeterministicService.SERVICE_ID, conn),
                    Decision.forward(egress),
                    now=0.0,
                )


_fan_spec_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from([0, 8, 40]),
        st.booleans(),
    ),
    min_size=0,
    max_size=48,
).map(
    lambda rows: [
        {
            "kind": "badauth" if corrupt else "data",
            "peer": PEER_A if conn % 2 == 0 else PEER_B,
            "service_id": _DeterministicService.SERVICE_ID,
            "conn": conn,
            "payload_len": payload_len,
            "src_host": False,
            "seq": None,
            "flags": Flags.NONE,
        }
        for conn, payload_len, corrupt in rows
    ]
)


@settings(max_examples=60, deadline=None)
@given(_fan_spec_list, st.integers(min_value=0, max_value=2**32 - 1))
def test_interleaved_flows_on_distinct_pipes_are_byte_identical(specs, seed):
    """Distinct egress associations: per-flow WIRE bytes match exactly.

    Six flows, one egress pipe each, arbitrarily interleaved (plus
    seeded drops/dups/corruption): grouping by egress peer recovers each
    flow's full transmit sequence, which must equal the scalar path's
    tuple-for-tuple — sealed wire bytes included, proving the gather
    egress consumes each association's nonces in exactly the per-packet
    order.
    """
    rig_scalar, rig_batch = _drive(apply_wire_faults(specs, seed), _FanRig)

    def by_egress(rig: _Rig) -> dict[str, list[tuple]]:
        out: dict[str, list[tuple]] = {}
        for row in rig.sent:
            out.setdefault(row[0], []).append(row)
        return out

    assert by_egress(rig_batch) == by_egress(rig_scalar)
    assert _relaxed_state(rig_batch) == _relaxed_state(rig_scalar)

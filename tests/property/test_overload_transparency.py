"""Property: overload protection is invisible to healthy flows.

One hung service behind a :class:`~repro.core.overload.ServicePolicy` —
slow-path deadline, circuit breaker, degradation mode, optionally
admission control — must not change one observable byte of what the
*healthy* warm flows transmit. Six established flows forward over six
distinct egress associations (the :class:`_FanRig` layout, so each
egress nonce sequence depends on one flow alone); victim punts to the
hung service are interleaved arbitrarily between them, through both the
scalar and the batched ingress paths, with seeded wire faults applied
to the healthy traffic. For every degradation mode the per-egress
transmit sequences of the healthy flows — wire bytes included — must
equal a rig that never saw the victim traffic at all.

The same scenarios pin down the overload layer's own ledgers: the
miss-queue conservation ledger balances with the shed exit included,
nothing stays parked after a burst, the stale shelf respects its bound,
fail-open degradation reaches only its dedicated peer, and fail-static
misses fall through to fail-closed exactly once per victim data packet.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.ilp import Flags
from repro.core.overload import (
    AdmissionConfig,
    BreakerConfig,
    DegradeMode,
    ServicePolicy,
)
from repro.core.psp import pairwise_secret
from repro.core.service_module import ServiceModule, Verdict
from tests.property.test_terminus_batch_equivalence import (
    EGRESS_PEERS,
    PEER_A,
    PEER_B,
    SN_ADDR,
    _FanRig,
    _fan_spec_list,
    apply_wire_faults,
)

VICTIM_SERVICE = 77
DEGRADE_PEER = "10.0.2.1"


class _VictimService(ServiceModule):
    """Loaded but hung for the whole scenario: every punt times out."""

    SERVICE_ID = VICTIM_SERVICE
    NAME = "victim"

    def handle_packet(self, header, packet):  # pragma: no cover — hung
        return Verdict.drop()

    def handle_control(self, header, packet):  # pragma: no cover — hung
        return Verdict.drop()


class _OverloadRig(_FanRig):
    """The fan rig plus a hung victim service under an overload policy."""

    degrade = DegradeMode.FAIL_CLOSED
    admission: "AdmissionConfig | None" = None

    def __init__(self) -> None:
        super().__init__()
        self.node.keystore.establish(
            DEGRADE_PEER, pairwise_secret(SN_ADDR, DEGRADE_PEER)
        )
        self.node.env.load(_VictimService())
        self.node.env.inject_hang(VICTIM_SERVICE)
        self.node.set_service_policy(
            VICTIM_SERVICE,
            ServicePolicy(
                deadline=1e-3,
                degrade=self.degrade,
                fail_open_peer=(
                    DEGRADE_PEER
                    if self.degrade is DegradeMode.FAIL_OPEN
                    else None
                ),
                # A tight breaker so scenarios exercise both the invoking
                # (timeout) and the short-circuiting (open) paths.
                breaker=BreakerConfig(min_samples=3, open_duration=10.0),
            ),
        )
        if self.admission is not None:
            self.node.enable_admission_control(self.admission)


class _ClosedRig(_OverloadRig):
    degrade = DegradeMode.FAIL_CLOSED


class _OpenRig(_OverloadRig):
    degrade = DegradeMode.FAIL_OPEN


class _StaticRig(_OverloadRig):
    """FAIL_STATIC with an empty stale shelf: every miss falls closed."""

    degrade = DegradeMode.FAIL_STATIC


class _ShedRig(_OverloadRig):
    """Admission control tight enough to shed most victim cold work."""

    degrade = DegradeMode.FAIL_CLOSED
    admission = AdmissionConfig(max_parked=2, punt_rate=1.0, punt_burst=2)


# Victim traffic: cold data runs plus CONTROL/LAST barrier frames aimed
# at the hung service. Runs (repeat counts) make coalesced cold groups —
# lead punt plus parked followers — actually occur.
_victim_spec_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.sampled_from(["data", "data", "data", "control", "last"]),
        st.sampled_from([0, 8, 40]),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=0,
    max_size=10,
).map(
    lambda rows: [
        {
            "kind": kind,
            "peer": PEER_A if conn % 2 == 0 else PEER_B,
            "service_id": VICTIM_SERVICE,
            "conn": conn,
            "payload_len": payload_len,
            "src_host": False,
            "seq": None,
            "flags": Flags.CONTROL
            if kind == "control"
            else (Flags.LAST if kind == "last" else Flags.NONE),
        }
        for conn, kind, payload_len, run in rows
        for _ in range(run)
    ]
)


def _interleave(healthy: list, victim: list, seed: int) -> list:
    """Insert victim specs at seeded positions among the healthy ones.

    Wire faults are applied to the healthy sequence *before* this, so the
    attack rig and the clean rig see byte-identical healthy arrivals and
    only the victim insertions differ.
    """
    rng = random.Random(seed ^ 0x5EED)
    out = list(healthy)
    for spec in victim:
        out.insert(rng.randint(0, len(out)), spec)
    return out


def _drive_overload(healthy, victim, seed, rig_cls, batched):
    arrived = apply_wire_faults(healthy, seed)
    combined = _interleave(arrived, victim, seed)
    attack, clean = rig_cls(), _FanRig()
    attack_packets = [attack.build_packet(s) for s in combined]
    clean_packets = [clean.build_packet(s) for s in arrived]
    if batched:
        assert attack.terminus.receive_batch(attack_packets) == len(combined)
        clean.terminus.receive_batch(clean_packets)
    else:
        for packet in attack_packets:
            attack.terminus.receive(packet)
        for packet in clean_packets:
            clean.terminus.receive(packet)
    return attack, clean, combined


def _healthy_egress(rig) -> dict[str, list[tuple]]:
    out: dict[str, list[tuple]] = {}
    for row in rig.sent:
        if row[0] in EGRESS_PEERS:
            out.setdefault(row[0], []).append(row)
    return out


def _assert_invisible(attack, clean, allow_degrade_peer: bool) -> None:
    # Healthy flows: byte-identical per-egress transmit sequences.
    assert _healthy_egress(attack) == _healthy_egress(clean)
    # Victim traffic may reach only its dedicated degrade peer, never a
    # healthy egress association (that would desync its nonce stream).
    extra = {row[0] for row in attack.sent} - set(EGRESS_PEERS)
    if allow_degrade_peer:
        assert extra <= {DEGRADE_PEER}
    else:
        assert not extra
    # Bounded memory: nothing parked after the burst, shelf within cap.
    queue = attack.terminus.miss_queue
    assert queue.live == 0
    mq = queue.stats
    assert mq.offered == (
        mq.drained_fast
        + mq.replayed
        + mq.spilled
        + mq.shed
        + mq.dropped
        + queue.live
    )
    assert mq.parked == mq.drained_fast + mq.replayed + mq.dropped + queue.live
    cache = attack.terminus.cache
    assert cache.stale_count <= cache.stale_capacity


def _victim_data_count(combined) -> int:
    return sum(
        1
        for s in combined
        if s["service_id"] == VICTIM_SERVICE and s["kind"] == "data"
    )


@settings(max_examples=40, deadline=None)
@given(
    _fan_spec_list,
    _victim_spec_list,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.booleans(),
)
def test_hung_service_fail_closed_is_invisible_to_healthy_flows(
    healthy, victim, seed, batched
):
    """Deadline misses, breaker trips, and fail-closed drops leave the
    healthy flows' wire output untouched, and every victim data packet is
    accounted a drop (degraded or shed), never silently lost."""
    attack, clean, combined = _drive_overload(
        healthy, victim, seed, _ClosedRig, batched
    )
    _assert_invisible(attack, clean, allow_degrade_peer=False)
    stats = attack.terminus.stats
    guard = attack.terminus.overload
    assert stats.drops_degraded == guard.stats.degraded_closed
    # Terminal accounting: every victim data packet degraded exactly once
    # (timeout or breaker short-circuit — barriers fail closed separately).
    assert guard.stats.degraded_closed >= _victim_data_count(combined)


@settings(max_examples=30, deadline=None)
@given(
    _fan_spec_list,
    _victim_spec_list,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.booleans(),
)
def test_fail_open_degrades_only_to_its_dedicated_peer(
    healthy, victim, seed, batched
):
    """FAIL_OPEN forwards victim data unmodified to the configured peer —
    and nowhere else; barrier frames still fail closed."""
    attack, clean, combined = _drive_overload(
        healthy, victim, seed, _OpenRig, batched
    )
    _assert_invisible(attack, clean, allow_degrade_peer=True)
    guard = attack.terminus.overload
    degraded = [row for row in attack.sent if row[0] == DEGRADE_PEER]
    assert len(degraded) == guard.stats.degraded_open
    assert guard.stats.degraded_open == _victim_data_count(combined)
    # Payload passes through unmodified on the fail-open path.
    victim_payloads = sorted(
        b"y" * s["payload_len"]
        for s in combined
        if s["service_id"] == VICTIM_SERVICE and s["kind"] == "data"
    )
    assert sorted(row[5] for row in degraded) == victim_payloads


@settings(max_examples=30, deadline=None)
@given(
    _fan_spec_list,
    _victim_spec_list,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.booleans(),
)
def test_fail_static_with_empty_shelf_falls_closed(
    healthy, victim, seed, batched
):
    """FAIL_STATIC consults the stale shelf once per degraded data packet;
    an empty shelf means every consult misses and the packet fails closed."""
    attack, clean, combined = _drive_overload(
        healthy, victim, seed, _StaticRig, batched
    )
    _assert_invisible(attack, clean, allow_degrade_peer=False)
    guard = attack.terminus.overload
    barriers = sum(
        1
        for s in combined
        if s["service_id"] == VICTIM_SERVICE and s["kind"] in ("control", "last")
    )
    assert guard.stats.static_misses == _victim_data_count(combined)
    assert guard.stats.degraded_static == 0
    # Data packets fall closed through the shelf miss; barrier frames skip
    # the mode entirely and fail closed directly.
    assert guard.stats.degraded_closed == guard.stats.static_misses + barriers


@settings(max_examples=30, deadline=None)
@given(
    _fan_spec_list,
    _victim_spec_list,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.booleans(),
)
def test_admission_shedding_never_touches_healthy_or_barrier_traffic(
    healthy, victim, seed, batched
):
    """With admission armed tight, victim cold work is shed — but healthy
    established flows and victim barrier frames are exempt, and the shed
    exit balances in both the guard ledger and the terminus drop counter."""
    attack, clean, combined = _drive_overload(
        healthy, victim, seed, _ShedRig, batched
    )
    _assert_invisible(attack, clean, allow_degrade_peer=False)
    guard = attack.terminus.overload
    stats = attack.terminus.stats
    assert stats.drops_shed == guard.stats.shed_packets
    # Shed + degraded together account for every victim data packet.
    assert (
        guard.stats.shed_packets + guard.stats.degraded_closed
        >= _victim_data_count(combined)
    )
    # Healthy warm flows never enter the miss path, so nothing healthy was
    # shed: the clean rig transmits exactly as many healthy packets.
    assert len(_healthy_egress(attack)) == len(_healthy_egress(clean))

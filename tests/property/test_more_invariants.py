"""Property-based tests: offload engine, QoS specs, media, peering ledger."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.ilp import ILPHeader
from repro.core.offload import (
    ActionKind,
    Match,
    MatchField,
    OffloadAction,
    OffloadError,
    OffloadQuota,
    TerminusOffloadEngine,
)
from repro.econ import PeeringLedger
from repro.libs.media import MediaLibrary, PROFILES
from repro.services.qos import QoSSpec, StreamClass


class TestOffloadProperties:
    @given(
        installs=st.lists(
            st.integers(min_value=1, max_value=8), min_size=0, max_size=40
        ),
        quota=st.integers(min_value=1, max_value=10),
    )
    def test_quota_never_exceeded(self, installs, quota):
        engine = TerminusOffloadEngine(OffloadQuota(max_rules=quota))
        for service_id in installs:
            try:
                engine.install_rule(
                    service_id,
                    (Match(MatchField.PAYLOAD_LEN_GT, 0),),
                    OffloadAction(ActionKind.DROP),
                )
            except OffloadError:
                pass
        for program in engine.programs():
            assert len(program.rules) <= quota

    @given(
        own=st.integers(min_value=1, max_value=100),
        other=st.integers(min_value=1, max_value=100),
    )
    def test_isolation_is_total(self, own, other):
        if own == other:
            other = own + 1
        engine = TerminusOffloadEngine()
        engine.install_rule(
            own, (Match(MatchField.PAYLOAD_LEN_GT, -1),), OffloadAction(ActionKind.DROP)
        )
        header = ILPHeader(service_id=other, connection_id=1)
        assert engine.process("s", header, 100, 0.0).kind is None


class TestQoSSpecProperties:
    classes = st.lists(
        st.builds(
            StreamClass,
            name=st.text(min_size=1, max_size=10, alphabet="abcxyz"),
            src_prefix=st.sampled_from(
                ["10.0.0.0/8", "192.168.1.0/24", "172.16.0.0/12"]
            ),
            priority=st.integers(min_value=0, max_value=7),
            weight=st.floats(min_value=0.1, max_value=10.0),
        ),
        min_size=1,
        max_size=5,
        unique_by=lambda c: c.name,
    )

    @given(link=st.floats(min_value=1e4, max_value=1e9), classes=classes)
    def test_json_roundtrip(self, link, classes):
        spec = QoSSpec(link_bps=link, classes=classes)
        restored = QoSSpec.from_json(spec.to_json())
        assert restored.link_bps == pytest.approx(link)
        assert restored.classes == classes


class TestMediaProperties:
    @given(
        size=st.integers(min_value=1, max_value=4096),
        profile=st.sampled_from(sorted(PROFILES)),
    )
    def test_transcode_describe_roundtrip(self, size, profile):
        lib = MediaLibrary()
        encoded = lib.transcode(bytes(size), profile)
        name, original, body = MediaLibrary.describe(encoded)
        assert name == profile
        assert original == size
        assert 1 <= body <= size

    @given(size=st.integers(min_value=10, max_value=4096))
    def test_lower_bitrate_never_bigger(self, size):
        lib = MediaLibrary()
        chunk = bytes(size)
        sizes = {
            p: len(lib.transcode(chunk, p)) for p in ("1080p", "720p", "480p")
        }
        assert sizes["480p"] <= sizes["720p"] <= sizes["1080p"]


class TestLedgerProperties:
    @given(
        flows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=1, max_value=10_000),
            ),
            max_size=60,
        )
    )
    def test_traffic_accounting_is_exact_and_settlement_free(self, flows):
        ledger = PeeringLedger()
        expected: dict[tuple[str, str], int] = {}
        for src, dst, n_bytes in flows:
            if src == dst:
                continue
            ledger.record_traffic(src, dst, n_bytes)
            expected[(src, dst)] = expected.get((src, dst), 0) + n_bytes
        for (src, dst), total in expected.items():
            assert ledger.traffic(src, dst).bytes_sent == total
        assert ledger.interdomain_balance() == 0.0

"""Property: ILPHeader.encode() memoization is observably transparent.

The wire-form memo (invalidated by field assignment and TLV mutation via
the version-counting TLV map) must never change what ``encode()`` returns:
after ANY sequence of set/mutate/delete/copy/encode operations, the bytes
must equal those of a freshly constructed header with the same final state,
and must round-trip through ``decode``.
"""

from __future__ import annotations

import copy
import pickle

from hypothesis import given, settings, strategies as st

from repro.core.ilp import Flags, ILPHeader

tlv_types = st.integers(min_value=0, max_value=0xFF)
tlv_values = st.binary(min_size=0, max_size=64)

# One mutation step: (op, args). Applied in order to a header under test
# and mirrored into a plain-dict model of the expected final state.
operations = st.one_of(
    st.tuples(st.just("set"), tlv_types, tlv_values),
    st.tuples(st.just("del"), tlv_types),
    st.tuples(st.just("pop"), tlv_types),
    st.tuples(st.just("update"), st.dictionaries(tlv_types, tlv_values, max_size=4)),
    st.tuples(st.just("setdefault"), tlv_types, tlv_values),
    st.tuples(st.just("clear")),
    st.tuples(st.just("flags"), st.integers(min_value=0, max_value=0xFF)),
    st.tuples(st.just("service_id"), st.integers(min_value=0, max_value=0xFFFF)),
    st.tuples(st.just("connection_id"), st.integers(min_value=0, max_value=2**64 - 1)),
    st.tuples(st.just("encode")),  # interleaved encodes populate the memo
    st.tuples(st.just("copy")),  # continue on a copy (memo carried over)
    st.tuples(st.just("assign_tlvs"), st.dictionaries(tlv_types, tlv_values, max_size=4)),
)


def _fresh_encode(header: ILPHeader) -> bytes:
    """What a never-memoized implementation would produce."""
    return ILPHeader(
        service_id=header.service_id,
        connection_id=header.connection_id,
        flags=header.flags,
        tlvs=dict(header.tlvs),
    ).encode()


@settings(max_examples=300, deadline=None)
@given(
    service_id=st.integers(min_value=0, max_value=0xFFFF),
    connection_id=st.integers(min_value=0, max_value=2**64 - 1),
    initial=st.dictionaries(tlv_types, tlv_values, max_size=6),
    ops=st.lists(operations, max_size=20),
)
def test_memoized_encode_equals_fresh_encode(service_id, connection_id, initial, ops):
    header = ILPHeader(
        service_id=service_id, connection_id=connection_id, tlvs=dict(initial)
    )
    for op in ops:
        kind = op[0]
        if kind == "set":
            header.tlvs[op[1]] = op[2]
        elif kind == "del":
            if op[1] in header.tlvs:
                del header.tlvs[op[1]]
        elif kind == "pop":
            header.tlvs.pop(op[1], None)
        elif kind == "update":
            header.tlvs.update(op[1])
        elif kind == "setdefault":
            header.tlvs.setdefault(op[1], op[2])
        elif kind == "clear":
            header.tlvs.clear()
        elif kind == "flags":
            header.flags = op[1]
        elif kind == "service_id":
            header.service_id = op[1]
        elif kind == "connection_id":
            header.connection_id = op[1]
        elif kind == "encode":
            header.encode()
        elif kind == "copy":
            header = header.copy()
        elif kind == "assign_tlvs":
            header.tlvs = op[1]
        # After every step, the memoized encode must match a fresh one.
        assert header.encode() == _fresh_encode(header)
        assert header.encoded_size == len(header.encode())

    # Stability: repeated encodes are identical (and the memo is hit).
    assert header.encode() == header.encode()
    decoded = ILPHeader.decode(header.encode())
    assert decoded.service_id == header.service_id
    assert decoded.connection_id == header.connection_id
    assert decoded.flags == header.flags
    assert dict(decoded.tlvs) == dict(header.tlvs)
    assert decoded.encode() == header.encode()


@settings(max_examples=100, deadline=None)
@given(
    initial=st.dictionaries(tlv_types, tlv_values, max_size=6),
    post=st.dictionaries(tlv_types, tlv_values, max_size=4),
)
def test_memo_does_not_leak_through_pickle_or_copy(initial, post):
    """A header that crosses pickle/copy (the IPC channel marshals headers)
    must stay correct even when mutated on the far side."""
    for clone_of in (
        lambda h: pickle.loads(pickle.dumps(h)),
        copy.copy,  # NB: shares the TLV map with the original, as any
        # shallow copy of a dict-holding dataclass does
        copy.deepcopy,
        lambda h: h.copy(),
    ):
        header = ILPHeader(service_id=7, connection_id=9, tlvs=dict(initial))
        header.encode()  # populate the memo
        clone = clone_of(header)
        assert clone.encode() == header.encode()
        for k, v in post.items():
            clone.tlvs[k] = v
        # Memoization stays transparent on the clone even after mutation...
        assert clone.encode() == _fresh_encode(clone)
        # ...and on the original, whether or not the clone aliases its map.
        assert header.encode() == _fresh_encode(header)


def test_decode_preseeds_memo_only_when_canonical():
    h = ILPHeader(service_id=1, connection_id=2, flags=Flags.FIRST)
    h.tlvs[3] = b"c"
    h.tlvs[1] = b"a"
    wire = h.encode()
    decoded = ILPHeader.decode(wire)
    # Canonical wire (encode() sorts TLVs): memo pre-seeded with the input.
    assert decoded.encode() is wire
    # Mutation invalidates the pre-seeded memo.
    decoded.tlvs[2] = b"b"
    assert decoded.encode() != wire
    assert decoded.encode() == _fresh_encode(decoded)

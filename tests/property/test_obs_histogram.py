"""Properties of the mergeable log-bucketed histogram (repro.obs).

The sketch's whole value rests on three guarantees:

* **Merge is exact and order-free.** Bucket counts are ints, so merging
  is associative and commutative — per-SN sketches roll up to edomain
  and federation level in any grouping without changing a single count.
* **Counts are conserved.** Any merge tree over disjoint sketches holds
  exactly the union's observations: total count, zero count, per-bucket
  counts, min, max.
* **Quantiles are relatively bounded.** Any quantile read back is within
  ``relative_error`` (relative) of a true empirical quantile of the
  recorded multiset.

``total`` is a float sum and float addition is not associative, so the
order-freedom properties compare it approximately while everything
integral must match exactly.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.obs import Histogram

_value = st.one_of(
    st.floats(
        min_value=1e-9,
        max_value=1e9,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.sampled_from([0.0, -1.0, 1e-6, 3.3e-5, 0.25]),
)

_values = st.lists(_value, min_size=0, max_size=60)
_value_parts = st.lists(_values, min_size=1, max_size=6)


def _sketch(values: list[float], relative_error: float = 0.01) -> Histogram:
    h = Histogram(relative_error)
    for v in values:
        h.record(v)
    return h


def _integral_state(h: Histogram) -> tuple:
    return (h.count, h.zeros, h.min, h.max, h.bucket_counts())


@settings(max_examples=100, deadline=None)
@given(_values, _values)
def test_merge_commutes(a_values, b_values):
    a_first = Histogram.merged([_sketch(a_values), _sketch(b_values)])
    b_first = Histogram.merged([_sketch(b_values), _sketch(a_values)])
    assert _integral_state(a_first) == _integral_state(b_first)
    assert math.isclose(
        a_first.total, b_first.total, rel_tol=1e-9, abs_tol=1e-12
    )


@settings(max_examples=100, deadline=None)
@given(_value_parts, st.integers(min_value=0, max_value=2**32 - 1))
def test_merge_tree_shape_is_irrelevant(parts, seed):
    """Any randomized merge tree equals the flat left fold, bucket-exactly.

    Builds a random binary merge tree over the parts (seeded, so the
    example replays): repeatedly pick two sketches, merge one into the
    other, put the result back. Whatever order and nesting, the result's
    integral state must equal merging the parts one by one in order —
    associativity and commutativity in one property.
    """
    flat = Histogram.merged([_sketch(values) for values in parts])
    rng = random.Random(seed)
    pool = [_sketch(values) for values in parts]
    while len(pool) > 1:
        i = rng.randrange(len(pool))
        right = pool.pop(i)
        j = rng.randrange(len(pool))
        pool[j].merge(right)
    assert _integral_state(pool[0]) == _integral_state(flat)
    assert math.isclose(pool[0].total, flat.total, rel_tol=1e-9, abs_tol=1e-12)


@settings(max_examples=100, deadline=None)
@given(_value_parts)
def test_merge_conserves_counts(parts):
    union = [v for values in parts for v in values]
    merged = Histogram.merged([_sketch(values) for values in parts])
    assert _integral_state(merged) == _integral_state(_sketch(union))
    assert merged.count == len(union)
    assert merged.zeros == sum(1 for v in union if v <= 0.0)
    assert merged.zeros + sum(merged.bucket_counts().values()) == merged.count


@settings(max_examples=150, deadline=None)
@given(
    _values,
    st.floats(min_value=0.0, max_value=1.0),
    st.sampled_from([0.01, 0.05]),
)
def test_quantile_within_relative_error(values, q, relative_error):
    """quantile(q) lands within relative_error of the true rank statistic.

    The sketch maps a value to the bucket whose representative is within
    ``relative_error`` (relative) of it, so the answer must be that close
    to the exact empirical quantile at the same rank convention
    (``rank = max(1, ceil(q * n))``). Nonpositive values are exact.
    """
    h = _sketch(values, relative_error)
    got = h.quantile(q)
    if not values:
        assert got == 0.0
        return
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    expect = ordered[rank - 1]
    if expect <= 0.0:
        assert got == 0.0
    else:
        # The 1e-9 slack absorbs float rounding at bucket boundaries
        # (a value an ulp from an edge may land one bucket over).
        assert abs(got - expect) <= relative_error * expect * (1.0 + 1e-9)


@settings(max_examples=100, deadline=None)
@given(_values)
def test_record_many_equals_repeated_record(values):
    repeated = Histogram()
    grouped = Histogram()
    for v in values:
        repeated.record(v)
        repeated.record(v)
        repeated.record(v)
        grouped.record_many(v, 3)
    assert _integral_state(repeated) == _integral_state(grouped)

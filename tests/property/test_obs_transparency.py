"""Property: observability is purely observational.

Arming the flight recorder and metrics registry on an SN must not change
one observable bit of datapath behavior: the transmitted packets (wire
bytes included — so PSP nonce sequencing is untouched), TerminusStats,
decision-cache contents and LRU order, per-peer PSP stats, and offload
counters are all byte-identical with obs on or off. This pins down the
"free when off / passive when on" contract the overhead benchmark and
the instrumentation's guard style depend on.

Reuses the batch-equivalence rig and packet strategies: the same
generated sequences (cache hits, cold storms, barrier punts, bad auth,
malformed headers, fan-out installs) drive a plain rig and an armed one,
through both the scalar and the batched ingress paths, at several
sampling rates (every trace, every 3rd, armed-but-quiet).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from tests.property.test_terminus_batch_equivalence import (
    _Rig,
    _flow_sort,
    _spec_list,
    _storm_spec_list,
    apply_wire_faults,
)


class _ArmedRig(_Rig):
    """The same rig with observability armed at a given sampling rate."""

    sample_every = 1

    def __init__(self) -> None:
        super().__init__()
        self.obs = self.node.enable_observability(
            sample_every=self.sample_every, capacity=1024
        )


class _SampledRig(_ArmedRig):
    sample_every = 3


class _QuietRig(_ArmedRig):
    """Recorder attached but sampling nothing (the benchmark's quiet arm)."""

    sample_every = 0


_RIGS = {"every": _ArmedRig, "third": _SampledRig, "quiet": _QuietRig}


def _drive_pair(specs, armed_factory, batched: bool):
    plain, armed = _Rig(), armed_factory()
    plain_packets = [plain.build_packet(s) for s in specs]
    armed_packets = [armed.build_packet(s) for s in specs]
    if batched:
        plain.terminus.receive_batch(plain_packets)
        armed.terminus.receive_batch(armed_packets)
    else:
        for packet in plain_packets:
            plain.terminus.receive(packet)
        for packet in armed_packets:
            armed.terminus.receive(packet)
    return plain, armed


@settings(max_examples=50, deadline=None)
@given(
    _spec_list,
    st.sampled_from(sorted(_RIGS)),
    st.booleans(),
)
def test_armed_rig_is_byte_identical_to_plain(specs, rig_key, batched):
    specs = _flow_sort(specs)
    plain, armed = _drive_pair(specs, _RIGS[rig_key], batched)
    assert armed.observable_state() == plain.observable_state()
    # The recorder really ran: every ingress event opened a trace
    # (a burst is one ingress event, even an empty one).
    expected_traces = len(specs) if not batched else 1
    assert armed.obs.recorder.traces_started == expected_traces


@settings(max_examples=40, deadline=None)
@given(_storm_spec_list, st.sampled_from(sorted(_RIGS)))
def test_cold_storm_is_byte_identical_with_obs_on(specs, rig_key):
    """The coalesced miss path (punt spans, park/drain/replay events,
    batched invocations) records without perturbing any observable."""
    plain, armed = _drive_pair(specs, _RIGS[rig_key], batched=True)
    assert armed.observable_state() == plain.observable_state()


@settings(max_examples=30, deadline=None)
@given(
    _spec_list,
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_transparency_under_wire_faults(specs, seed):
    """Drops, duplicates, and corrupted auth tags change nothing either:
    the error paths (mid-group bailout, unknown peer, malformed header)
    are exactly as untouched by recording as the happy path."""
    specs = apply_wire_faults(_flow_sort(specs), seed)
    plain, armed = _drive_pair(specs, _ArmedRig, batched=True)
    assert armed.observable_state() == plain.observable_state()


@settings(max_examples=30, deadline=None)
@given(_storm_spec_list)
def test_terminus_stats_identical_with_tiny_recorder_ring(specs):
    """A saturated ring (capacity 1, every span dropped but the last)
    still cannot leak into datapath state."""

    class _TinyRing(_Rig):
        def __init__(self) -> None:
            super().__init__()
            self.obs = self.node.enable_observability(
                sample_every=1, capacity=1
            )

    plain, armed = _drive_pair(specs, _TinyRing, batched=True)
    assert armed.observable_state() == plain.observable_state()

"""Property-based tests on service-layer data structures."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.control.core_store import CoreStore
from repro.sched import TokenBucket
from repro.services.caching import CacheStore
from repro.services.msgqueue import QueueState, queue_home
from repro.wireguard import TunnelMesh


class TestCacheStoreProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),  # object id
                st.booleans(),  # put or get
                st.floats(min_value=0.0, max_value=100.0),  # time
            ),
            max_size=150,
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_capacity_and_consistency(self, operations, capacity):
        store = CacheStore(capacity=capacity, default_ttl=1e6)
        shadow: dict[str, bytes] = {}
        for obj, is_put, now in sorted(operations, key=lambda o: o[2]):
            url = f"/o/{obj}"
            if is_put:
                store.put(url, url.encode(), now=now)
                shadow[url] = url.encode()
            else:
                got = store.get(url, now=now)
                if got is not None:
                    # Anything returned must be the correct body...
                    assert got == shadow.get(url)
            assert len(store) <= capacity

    @given(
        ttl=st.floats(min_value=0.1, max_value=100.0),
        age=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_ttl_is_exact_boundary(self, ttl, age):
        store = CacheStore(default_ttl=ttl)
        store.put("/x", b"b", now=0.0)
        got = store.get("/x", now=age)
        assert (got is not None) == (age < ttl)


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=100.0, max_value=1e6),
        burst=st.integers(min_value=10, max_value=10_000),
        packets=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=2000),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            max_size=100,
        ),
    )
    def test_never_exceeds_rate_plus_burst(self, rate, burst, packets):
        """Long-run admitted bytes ≤ burst + rate*elapsed — the defining
        token-bucket property."""
        bucket = TokenBucket(rate_bps=rate, burst_bytes=burst)
        admitted = 0
        last_time = 0.0
        for size, gap in packets:
            last_time += gap
            if bucket.try_consume(size, now=last_time):
                admitted += size
        assert admitted <= burst + rate * last_time / 8.0 + 1e-6


class TestQueueProperties:
    @given(
        messages=st.lists(st.binary(min_size=1, max_size=16), max_size=120),
        max_log=st.integers(min_value=1, max_value=64),
    )
    def test_bounded_log_keeps_newest(self, messages, max_log):
        state = QueueState("q", max_log=max_log)
        for message in messages:
            state.append(message)
        assert len(state.log) == min(len(messages), max_log)
        assert state.log == messages[-max_log:]

    @given(
        messages=st.lists(st.binary(min_size=1, max_size=8), max_size=80),
        max_log=st.integers(min_value=4, max_value=32),
    )
    def test_cursors_never_out_of_range(self, messages, max_log):
        state = QueueState("q", max_log=max_log)
        state.cursors["c"] = 0
        for i, message in enumerate(messages):
            state.append(message)
            # Consumer consumes everything available each round.
            state.cursors["c"] = len(state.log)
        assert 0 <= state.cursors["c"] <= len(state.log)

    @given(
        queues=st.lists(
            st.text(min_size=1, max_size=12, alphabet="abcdefgh123"),
            min_size=1,
            max_size=30,
        ),
        sns=st.lists(
            st.text(min_size=1, max_size=8, alphabet="0123456789."),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    )
    def test_queue_home_deterministic_and_valid(self, queues, sns):
        for queue in queues:
            home = queue_home(queue, sns)
            assert home in sns
            assert home == queue_home(queue, list(reversed(sns)))


class TestCoreStoreProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=100,
        )
    )
    def test_wal_replay_equals_live_state(self, ops):
        store = CoreStore()
        for op, member in ops:
            if op == "add":
                store.add("k", member)
            else:
                store.remove("k", member)
        rebuilt = store.rebuild_from_wal()
        assert rebuilt.members("k") == store.members("k")

    @given(members=st.sets(st.integers(min_value=0, max_value=50), max_size=30))
    def test_add_remove_roundtrip_empties(self, members):
        store = CoreStore()
        for m in members:
            store.add("g", m)
        for m in members:
            assert store.remove("g", m)
        assert store.members("g") == set()


class TestMeshProperties:
    @given(
        n_tunnels=st.integers(min_value=1, max_value=40),
        splits=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_advance_is_split_invariant(self, n_tunnels, splits):
        """Advancing in k chunks produces the same rekey count as one jump."""
        horizon = 720.0

        def run(steps: int) -> int:
            mesh = TunnelMesh("n", rekey_interval=180.0, keepalives_enabled=False)
            mesh.add_peers(n_tunnels)
            total = 0
            for i in range(1, steps + 1):
                total += mesh.advance(until=horizon * i / steps).rekeys
            return total

        assert run(splits) == run(1) == n_tunnels * 4

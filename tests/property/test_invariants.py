"""Property-based tests (hypothesis) for core invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import crypto
from repro.core.decision_cache import CacheKey, Decision, DecisionCache
from repro.core.ilp import ILPHeader, TLV
from repro.core.psp import PSPContext, pairwise_secret
from repro.netsim import Simulator
from repro.netsim.trace import percentile
from repro.sched import DeficitRoundRobin, WeightedFairQueue


# -- ILP header roundtrip ------------------------------------------------------

tlv_values = st.binary(min_size=0, max_size=128)
tlv_dicts = st.dictionaries(
    st.integers(min_value=1, max_value=255), tlv_values, max_size=8
)


class TestILPRoundtrip:
    @given(
        service_id=st.integers(min_value=0, max_value=0xFFFF),
        connection_id=st.integers(min_value=0, max_value=2**64 - 1),
        flags=st.integers(min_value=0, max_value=0xFF),
        tlvs=tlv_dicts,
    )
    def test_encode_decode_identity(self, service_id, connection_id, flags, tlvs):
        header = ILPHeader(
            service_id=service_id,
            connection_id=connection_id,
            flags=flags,
            tlvs=dict(tlvs),
        )
        decoded = ILPHeader.decode(header.encode())
        assert decoded.service_id == service_id
        assert decoded.connection_id == connection_id
        assert decoded.flags == flags
        assert decoded.tlvs == tlvs

    @given(tlvs=tlv_dicts)
    def test_encoded_size_matches(self, tlvs):
        header = ILPHeader(service_id=1, connection_id=1, tlvs=dict(tlvs))
        assert len(header.encode()) == header.encoded_size


# -- crypto / PSP -----------------------------------------------------------

class TestCryptoProperties:
    @given(plaintext=st.binary(max_size=512), aad=st.binary(max_size=32))
    def test_seal_open_roundtrip(self, plaintext, aad):
        key = crypto.derive_key(b"k" * 32, "test")
        nonce = b"\x00" * 7 + b"\x01"
        assert (
            crypto.open_sealed(key, nonce, crypto.seal(key, nonce, plaintext, aad), aad)
            == plaintext
        )

    @given(
        plaintext=st.binary(min_size=1, max_size=256),
        flip=st.integers(min_value=0),
    )
    def test_any_single_bitflip_detected(self, plaintext, flip):
        key = crypto.derive_key(b"k" * 32, "test")
        nonce = b"\x00" * 7 + b"\x02"
        sealed = bytearray(crypto.seal(key, nonce, plaintext))
        index = flip % len(sealed)
        sealed[index] ^= 0x01
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(key, nonce, bytes(sealed))

    @given(messages=st.lists(st.binary(max_size=64), min_size=1, max_size=20))
    def test_psp_any_arrival_order(self, messages):
        secret = pairwise_secret("10.0.0.1", "10.0.0.2")
        tx, rx = PSPContext(secret), PSPContext(secret)
        blobs = [tx.seal(m) for m in messages]
        # Reverse order is the worst case; all must decrypt.
        for blob, message in zip(reversed(blobs), reversed(messages)):
            assert rx.open(blob) == message


# -- decision cache -----------------------------------------------------------

class TestCacheProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        operations=st.lists(
            st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
            max_size=200,
        ),
    )
    def test_capacity_never_exceeded(self, capacity, operations):
        cache = DecisionCache(capacity=capacity)
        for conn_id, is_install in operations:
            key = CacheKey("10.0.0.1", 1, conn_id)
            if is_install:
                cache.install(key, Decision.drop())
            else:
                cache.lookup(key)
            assert len(cache) <= capacity

    @given(
        installs=st.sets(st.integers(min_value=0, max_value=1000), max_size=50),
        evict_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_eviction_only_loses_performance_not_entries_integrity(
        self, installs, evict_fraction
    ):
        """After arbitrary eviction, every surviving entry still returns its
        original decision, and no phantom entries appear."""
        cache = DecisionCache(capacity=4096)
        for conn_id in installs:
            cache.install(
                CacheKey("10.0.0.1", 1, conn_id), Decision.forward(f"10.0.{conn_id % 250}.1")
            )
        cache.evict_random_fraction(evict_fraction)
        surviving = set(cache.keys())
        for key in surviving:
            decision = cache.lookup(key)
            assert decision.targets[0].peer == f"10.0.{key.connection_id % 250}.1"
        for conn_id in installs:
            key = CacheKey("10.0.0.1", 1, conn_id)
            if key not in surviving:
                assert cache.lookup(key) is None


# -- schedulers ----------------------------------------------------------

class TestSchedulerProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=8.0), min_size=2, max_size=4
        ),
    )
    @settings(max_examples=30)
    def test_wfq_conserves_work(self, weights):
        wfq = WeightedFairQueue()
        for i, w in enumerate(weights):
            wfq.add_flow(f"f{i}", w)
        total = 0
        for i in range(len(weights)):
            for j in range(20):
                wfq.enqueue(f"f{i}", 100, (i, j))
                total += 1
        seen = 0
        while wfq.dequeue() is not None:
            seen += 1
        assert seen == total

    @given(
        weights=st.lists(
            st.floats(min_value=1.0, max_value=4.0), min_size=2, max_size=3
        )
    )
    @settings(max_examples=20)
    def test_wfq_backlogged_service_tracks_weights(self, weights):
        wfq = WeightedFairQueue()
        for i, w in enumerate(weights):
            wfq.add_flow(f"f{i}", w)
        for _ in range(200):
            for i in range(len(weights)):
                wfq.enqueue(f"f{i}", 100, None)
        # Serve half the total; all flows stay backlogged throughout.
        for _ in range(100 * len(weights)):
            wfq.dequeue()
        served = [wfq.bytes_dequeued(f"f{i}") for i in range(len(weights))]
        total_weight = sum(weights)
        total_served = sum(served)
        for got, weight in zip(served, weights):
            expected = total_served * weight / total_weight
            assert got == pytest.approx(expected, rel=0.25)

    @given(
        quanta=st.lists(st.integers(min_value=50, max_value=500), min_size=2, max_size=4)
    )
    @settings(max_examples=30)
    def test_drr_conserves_work(self, quanta):
        drr = DeficitRoundRobin()
        for i, q in enumerate(quanta):
            drr.add_flow(f"f{i}", q)
        total = 0
        for i in range(len(quanta)):
            for _ in range(15):
                drr.enqueue(f"f{i}", 120, None)
                total += 1
        seen = 0
        while drr.dequeue() is not None:
            seen += 1
        assert seen == total


# -- simulator -----------------------------------------------------------

class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


# -- statistics ----------------------------------------------------------

class TestPercentileProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100
        ),
        pct=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_bounded_by_extremes(self, values, pct):
        ordered = sorted(values)
        result = percentile(ordered, pct)
        assert ordered[0] <= result <= ordered[-1]

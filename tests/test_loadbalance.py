"""Tests for proactive domain management (Appendix C load balancing)."""

import pytest

from repro import WellKnownService
from repro.core.loadbalance import EdomainBalancer
from repro.scenarios import metro_federation


def _hot_world():
    """One edomain with a hot SN (3 chatty hosts) and an idle cold SN."""
    handles = metro_federation(n_edomains=1, sns_per_edomain=2, hosts_per_sn=0)
    net = handles.net
    hot_sn, cold_sn = handles.sns
    hosts = {}
    for i in range(3):
        host = net.add_host(hot_sn, name=f"h{i}")
        hosts[host.address] = host
    host_list = list(hosts.values())
    sink = host_list[-1]  # traffic target, also on the hot SN
    return net, hot_sn, cold_sn, hosts, sink


def _drive(net, hosts, sink, n=30):
    for host in hosts.values():
        if host is sink:
            continue
        conn = host.connect(
            WellKnownService.IP_DELIVERY, dest_addr=sink.address, allow_direct=False
        )
        for _ in range(n):
            host.send(conn, b"load")
    net.run(2.0)


class TestBalancer:
    def test_detects_overload_and_migrates(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(
            net.edomains["edomain-0"], hosts, lookup=net.lookup
        )
        _drive(net, hosts, sink)
        plan = balancer.rebalance()
        assert hot_sn.address in plan.overloaded
        assert len(plan.migrations) == 1
        moved = plan.migrations[0]
        assert moved.from_sn == hot_sn.address
        assert moved.to_sn == cold_sn.address
        # The moved host is now associated with both (make-before-break)...
        host = hosts[moved.host_address]
        assert cold_sn.address in host.first_hop_addresses
        assert hot_sn.address in host.first_hop_addresses
        # ...and prefers the cold SN for new connections.
        conn = host.connect(WellKnownService.IP_DELIVERY, dest_addr=sink.address)
        assert conn.via_sn == cold_sn.address

    def test_lookup_record_updated(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(
            net.edomains["edomain-0"], hosts, lookup=net.lookup
        )
        _drive(net, hosts, sink)
        plan = balancer.rebalance()
        moved = plan.migrations[0]
        record = net.lookup.address_record(moved.host_address)
        assert record.associated_sns[0] == cold_sn.address
        assert record.associated_sns.count(cold_sn.address) == 1

    def test_balanced_edomain_is_left_alone(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(net.edomains["edomain-0"], hosts)
        # Symmetric load: equal flows through both SNs.
        other = net.add_host(cold_sn, name="other")
        hosts[other.address] = other
        a = list(hosts.values())[0]
        conn1 = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=sink.address, allow_direct=False
        )
        conn2 = other.connect(
            WellKnownService.IP_DELIVERY, dest_addr=other.address, allow_direct=False
        )
        for _ in range(20):
            a.send(conn1, b"x")
            other.send(conn2, b"y")
        net.run(2.0)
        plan = balancer.rebalance()
        assert plan.migrations == []

    def test_idle_edomain_no_action(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(net.edomains["edomain-0"], hosts)
        plan = balancer.rebalance()
        assert plan.overloaded == []
        assert plan.migrations == []

    def test_load_is_delta_not_cumulative(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(net.edomains["edomain-0"], hosts)
        _drive(net, hosts, sink)
        balancer.rebalance()
        # Nothing new since the last pass: no further migrations.
        plan = balancer.rebalance()
        assert plan.migrations == []

    def test_periodic_rebalancing(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        balancer = EdomainBalancer(net.edomains["edomain-0"], hosts)
        balancer.run_periodic(interval=1.0)
        _drive(net, hosts, sink)
        net.run(3.0)
        assert len(balancer.history) >= 3
        assert any(plan.migrations for plan in balancer.history)

    def test_invalid_factor_rejected(self):
        net, hot_sn, cold_sn, hosts, sink = _hot_world()
        with pytest.raises(ValueError):
            EdomainBalancer(net.edomains["edomain-0"], hosts, imbalance_factor=1.0)

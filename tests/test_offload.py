"""Tests for the pipe-terminus offload engine (Appendix B.1)."""

import pytest

from repro.core.ilp import Flags, ILPHeader, TLV
from repro.core.offload import (
    ActionKind,
    Match,
    MatchField,
    OffloadAction,
    OffloadError,
    OffloadQuota,
    TerminusOffloadEngine,
)


def header(service_id=5, conn=1, flags=0, tlvs=None) -> ILPHeader:
    h = ILPHeader(service_id=service_id, connection_id=conn, flags=flags)
    if tlvs:
        h.tlvs.update(tlvs)
    return h


class TestMatching:
    def test_connection_id_match(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5,
            (Match(MatchField.CONNECTION_ID, 42),),
            OffloadAction(ActionKind.DROP),
        )
        assert engine.process("10.0.0.2", header(conn=42), 100, 0.0).kind is ActionKind.DROP
        assert engine.process("10.0.0.2", header(conn=43), 100, 0.0).kind is None

    def test_tlv_present_and_equals(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5,
            (Match(MatchField.TLV_PRESENT, TLV.TOPIC),),
            OffloadAction(ActionKind.FORWARD, "10.0.0.3"),
        )
        result = engine.process(
            "10.0.0.2", header(tlvs={TLV.TOPIC: b"t"}), 100, 0.0
        )
        assert result.kind is ActionKind.FORWARD
        assert result.peer == "10.0.0.3"
        engine2 = TerminusOffloadEngine()
        engine2.install_rule(
            5,
            (Match(MatchField.TLV_EQUALS, (TLV.TOPIC, b"hot")),),
            OffloadAction(ActionKind.DROP),
        )
        assert (
            engine2.process("s", header(tlvs={TLV.TOPIC: b"hot"}), 1, 0.0).kind
            is ActionKind.DROP
        )
        assert engine2.process("s", header(tlvs={TLV.TOPIC: b"cold"}), 1, 0.0).kind is None

    def test_payload_len_and_src(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5,
            (
                Match(MatchField.SRC_ADDR, "6.6.6.6"),
                Match(MatchField.PAYLOAD_LEN_GT, 500),
            ),
            OffloadAction(ActionKind.DROP),
        )
        assert engine.process("6.6.6.6", header(), 501, 0.0).kind is ActionKind.DROP
        assert engine.process("6.6.6.6", header(), 499, 0.0).kind is None
        assert engine.process("1.1.1.1", header(), 501, 0.0).kind is None

    def test_flags_match(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5,
            (Match(MatchField.FLAGS, Flags.FIRST),),
            OffloadAction(ActionKind.COUNT, "firsts"),
        )
        engine.process("s", header(flags=Flags.FIRST), 1, 0.0)
        engine.process("s", header(flags=0), 1, 0.0)
        assert engine.program_for(5).counters["firsts"] == 1

    def test_rules_first_match_wins(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5, (Match(MatchField.PAYLOAD_LEN_GT, 10),), OffloadAction(ActionKind.DROP)
        )
        engine.install_rule(
            5,
            (Match(MatchField.PAYLOAD_LEN_GT, 0),),
            OffloadAction(ActionKind.FORWARD, "10.0.0.9"),
        )
        assert engine.process("s", header(), 50, 0.0).kind is ActionKind.DROP
        assert engine.process("s", header(), 5, 0.0).kind is ActionKind.FORWARD


class TestIsolation:
    """The Menshen requirement: services cannot see or affect each other."""

    def test_program_applies_only_to_own_service(self):
        engine = TerminusOffloadEngine()
        engine.install_rule(
            5, (Match(MatchField.PAYLOAD_LEN_GT, 0),), OffloadAction(ActionKind.DROP)
        )
        # Service 6's identical-looking packet is untouched.
        assert engine.process("s", header(service_id=6), 100, 0.0).kind is None

    def test_rule_quota_enforced(self):
        engine = TerminusOffloadEngine(OffloadQuota(max_rules=2))
        for _ in range(2):
            engine.install_rule(
                5, (Match(MatchField.PAYLOAD_LEN_GT, 0),), OffloadAction(ActionKind.DROP)
            )
        with pytest.raises(OffloadError):
            engine.install_rule(
                5, (Match(MatchField.PAYLOAD_LEN_GT, 0),), OffloadAction(ActionKind.DROP)
            )
        # Another service still has its own quota.
        engine.install_rule(
            6, (Match(MatchField.PAYLOAD_LEN_GT, 0),), OffloadAction(ActionKind.DROP)
        )

    def test_meter_quota_enforced(self):
        engine = TerminusOffloadEngine(OffloadQuota(max_meters=1))
        engine.provision_meter(5, "m1", 1000, 100)
        with pytest.raises(OffloadError):
            engine.provision_meter(5, "m2", 1000, 100)

    def test_meter_must_exist_before_use(self):
        engine = TerminusOffloadEngine()
        with pytest.raises(OffloadError):
            engine.install_rule(
                5,
                (Match(MatchField.PAYLOAD_LEN_GT, 0),),
                OffloadAction(ActionKind.METER, "ghost"),
            )


class TestMeters:
    def test_meter_drops_over_rate(self):
        engine = TerminusOffloadEngine()
        engine.provision_meter(5, "limit", rate_bps=8000, burst_bytes=200)
        engine.install_rule(
            5,
            (Match(MatchField.SRC_ADDR, "fast-talker"),),
            OffloadAction(ActionKind.METER, "limit"),
        )
        # Burst of 200 B passes, the rest drops (falls through = pass).
        results = [
            engine.process("fast-talker", header(), 100, 0.0).kind
            for _ in range(5)
        ]
        assert results[:2] == [None, None]  # within burst: fall through
        assert all(r is ActionKind.DROP for r in results[2:])
        # After a second, the bucket refills 1000 B.
        assert engine.process("fast-talker", header(), 100, 1.0).kind is None


class TestTerminusIntegration:
    def test_offloaded_drop_skips_slow_path(self, single_sn_net):
        """A DDoS-style source-drop rule executes at the terminus: the
        service module never sees the packets."""
        net = single_sn_net
        dom = net.edomains["solo"]
        sn = dom.sns[dom.sn_addresses()[0]]
        attacker = net.add_host(sn, name="attacker")
        victim = net.add_host(sn, name="victim")
        from repro import WellKnownService

        module = sn.env.service(WellKnownService.IP_DELIVERY)
        engine = sn.terminus.offload
        engine.install_rule(
            WellKnownService.IP_DELIVERY,
            (Match(MatchField.SRC_ADDR, attacker.address),),
            OffloadAction(ActionKind.DROP),
        )
        conn = attacker.connect(
            WellKnownService.IP_DELIVERY, dest_addr=victim.address, allow_direct=False
        )
        for _ in range(10):
            attacker.send(conn, b"flood")
        net.run(1.0)
        assert sn.terminus.stats.drops_by_offload == 10
        assert sn.terminus.stats.punts == 0
        assert module.connections_seen == 0
        assert victim.delivered == []

    def test_cache_hit_beats_offload(self, single_sn_net):
        """Fast-path precedence: cache > offload > slow path."""
        net = single_sn_net
        dom = net.edomains["solo"]
        sn = dom.sns[dom.sn_addresses()[0]]
        a = net.add_host(sn, name="a")
        b = net.add_host(sn, name="b")
        from repro import WellKnownService

        # An offload rule that would drop everything from a...
        sn.terminus.offload.install_rule(
            WellKnownService.IP_DELIVERY,
            (Match(MatchField.SRC_ADDR, a.address),),
            OffloadAction(ActionKind.DROP),
        )
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"first")  # dropped by offload (cache miss path)
        net.run(1.0)
        assert len(b.delivered) == 0
        # ...but once a cache entry exists, the cache wins.
        from repro.core.decision_cache import CacheKey, Decision

        sn.cache.install(
            CacheKey(a.address, WellKnownService.IP_DELIVERY, conn.connection_id),
            Decision.forward(b.address),
        )
        a.send(conn, b"second")
        net.run(1.0)
        assert [p.data for _, p in b.delivered] == [b"second"]

"""Unit tests for the execution-environment libraries."""

import pytest

from repro.core.crypto import CryptoError
from repro.libs import install_standard_libraries, standard_libraries
from repro.libs.cryptolib import CryptoLibrary
from repro.libs.media import MediaError, MediaLibrary, PROFILES
from repro.libs.regexlib import RegexLibrary


class TestCryptoLibrary:
    def test_encrypt_decrypt(self):
        lib = CryptoLibrary()
        key = lib.random_key()
        blob = lib.encrypt(key, b"payload")
        assert lib.decrypt(key, blob) == b"payload"
        assert b"payload" not in blob

    def test_wrong_key_fails(self):
        lib = CryptoLibrary()
        blob = lib.encrypt(lib.random_key(), b"x")
        with pytest.raises(CryptoError):
            lib.decrypt(lib.random_key(), blob)

    def test_short_blob_rejected(self):
        lib = CryptoLibrary()
        with pytest.raises(CryptoError):
            lib.decrypt(lib.random_key(), b"short")

    def test_onion_wrap_peel(self):
        lib = CryptoLibrary()
        keys = [lib.random_key() for _ in range(3)]
        blob = lib.onion_wrap(keys, b"core")
        for key in keys:
            blob = lib.onion_peel(key, blob)
        assert blob == b"core"

    def test_onion_peel_order_matters(self):
        lib = CryptoLibrary()
        keys = [lib.random_key() for _ in range(2)]
        blob = lib.onion_wrap(keys, b"core")
        with pytest.raises(CryptoError):
            lib.onion_peel(keys[1], blob)  # inner key cannot peel outer layer

    def test_operation_counter(self):
        lib = CryptoLibrary()
        lib.sha256(b"x")
        lib.hmac(lib.random_key(), b"x")
        assert lib.operations == 2


class TestRegexLibrary:
    def test_match_and_hits(self):
        lib = RegexLibrary()
        lib.add_rule("sql-injection", rb"(?i)union\s+select")
        assert lib.match("sql-injection", b"x' UNION SELECT password")
        assert not lib.match("sql-injection", b"ordinary payload")
        assert lib.hits("sql-injection") == 1

    def test_scan_all_rules(self):
        lib = RegexLibrary()
        lib.add_rule("a", rb"AAA")
        lib.add_rule("b", rb"BBB")
        assert lib.scan(b"...AAA...BBB...") == ["a", "b"]
        assert lib.scan(b"nothing") == []

    def test_remove_rule(self):
        lib = RegexLibrary()
        lib.add_rule("a", rb"x")
        assert lib.remove_rule("a") is True
        assert lib.remove_rule("a") is False
        assert lib.rule_names() == []

    def test_string_pattern_accepted(self):
        lib = RegexLibrary()
        lib.add_rule("s", "hello")
        assert lib.match("s", b"say hello")


class TestMediaLibrary:
    def test_transcode_shrinks_by_ratio(self):
        lib = MediaLibrary()
        chunk = bytes(1000)
        encoded = lib.transcode(chunk, "480p")
        profile, original, body = MediaLibrary.describe(encoded)
        assert profile == "480p"
        assert original == 1000
        assert body == int(1000 * PROFILES["480p"].bitrate_ratio)

    def test_unknown_profile_rejected(self):
        with pytest.raises(MediaError):
            MediaLibrary().transcode(b"x", "8k-imax")

    def test_describe_rejects_non_transcoded(self):
        with pytest.raises(MediaError):
            MediaLibrary.describe(b"raw bytes")

    def test_counters(self):
        lib = MediaLibrary()
        lib.transcode(bytes(100), "720p")
        assert lib.chunks_encoded == 1
        assert lib.bytes_in == 100
        assert 0 < lib.bytes_out < 100 + 32

    def test_cpu_cost_scales_with_size(self):
        lib = MediaLibrary()
        assert lib.cpu_cost(2000, "720p") == pytest.approx(
            2 * lib.cpu_cost(1000, "720p")
        )


class TestRegistryIntegration:
    def test_standard_set_complete(self):
        libs = standard_libraries()
        assert set(libs) == {"crypto", "regex", "media"}

    def test_install_into_env(self, single_sn_net):
        sn = next(iter(single_sn_net.edomains["solo"].sns.values()))
        for name in ("crypto", "regex", "media"):
            assert sn.env.libs.has(name)

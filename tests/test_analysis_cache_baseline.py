"""Tests for the incremental analysis cache and the findings baseline.

The cache tests prove *behaviorally* that cached results are used (by
tampering with the stored rows and seeing the tampered result come
back on an unchanged tree) and that a content change invalidates
exactly the stale entries. The baseline tests cover the
``--write-baseline`` / ``--since-baseline`` ratchet workflow.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import ENGINE_VERSION


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


DIRTY = """
import random

X = random.random()
"""


class TestCache:
    def test_cache_file_created_and_results_stable(self, tmp_path):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        cache = tmp_path / "cache.json"
        first = analyze_paths([tree], cache_path=cache)
        assert cache.exists()
        second = analyze_paths([tree], cache_path=cache)
        assert first == second
        assert [f.code for f in first] == ["DET001"]

    def test_cached_module_rows_are_actually_used(self, tmp_path):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        cache = tmp_path / "cache.json"
        analyze_paths([tree], cache_path=cache)
        # Tamper with the cached finding message; an unchanged tree must
        # surface the tampered row — proof the cache short-circuits the
        # per-module rules.
        payload = json.loads(cache.read_text(encoding="utf-8"))
        (entry,) = payload["files"].values()
        entry["findings"][0][4] = "TAMPERED"
        cache.write_text(json.dumps(payload), encoding="utf-8")
        findings = analyze_paths([tree], cache_path=cache)
        assert [f.message for f in findings] == ["TAMPERED"]

    def test_edit_invalidates_stale_entry(self, tmp_path):
        tree = tmp_path / "tree"
        path = _write(tree, "dirty.py", DIRTY)
        cache = tmp_path / "cache.json"
        analyze_paths([tree], cache_path=cache)
        path.write_text("X = 1\n", encoding="utf-8")
        assert analyze_paths([tree], cache_path=cache) == []
        # And the fix is re-cached: a tampered stale row cannot return.
        assert analyze_paths([tree], cache_path=cache) == []

    def test_cached_program_rows_are_actually_used(self, tmp_path):
        tree = tmp_path / "tree"
        _write(
            tree,
            "mod.py",
            """
            import time

            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    time.sleep(0.1)
            """,
        )
        cache = tmp_path / "cache.json"
        first = analyze_paths([tree], cache_path=cache)
        assert "EVT001" in [f.code for f in first]
        payload = json.loads(cache.read_text(encoding="utf-8"))
        for row in payload["program"]["findings"]:
            row[4] = "IP-TAMPERED"
        cache.write_text(json.dumps(payload), encoding="utf-8")
        findings = analyze_paths([tree], cache_path=cache)
        ip_messages = [f.message for f in findings if f.code == "EVT001"]
        assert ip_messages == ["IP-TAMPERED"]

    def test_new_file_invalidates_program_pass(self, tmp_path):
        tree = tmp_path / "tree"
        _write(
            tree,
            "engine.py",
            """
            class Engine:
                def schedule(self, delay, callback):
                    pass
            """,
        )
        _write(
            tree,
            "worker.py",
            """
            from engine import Engine
            from util import helper

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    helper()
            """,
        )
        _write(tree, "util.py", "def helper():\n    pass\n")
        cache = tmp_path / "cache.json"
        assert analyze_paths([tree], cache_path=cache) == []
        # Making an untouched-but-reachable helper blocking must be seen
        # even though worker.py itself did not change.
        _write(
            tree,
            "util.py",
            """
            import time

            def helper():
                time.sleep(0.5)
            """,
        )
        findings = analyze_paths([tree], cache_path=cache)
        assert "EVT001" in [f.code for f in findings]

    def test_rules_key_mismatch_cold_starts(self, tmp_path):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        cache = tmp_path / "cache.json"
        analyze_paths([tree], cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["rules_key"].endswith(f"|{ENGINE_VERSION}")
        # A different rule subset must not reuse the full-set entries:
        # tamper first, then run a subset — the tampered row must NOT
        # surface because the rules_key no longer matches.
        (entry,) = payload["files"].values()
        entry["findings"][0][4] = "TAMPERED"
        cache.write_text(json.dumps(payload), encoding="utf-8")
        from repro.analysis.rules import rule_det001

        findings = analyze_paths([tree], rules=[rule_det001], cache_path=cache)
        assert findings and findings[0].message != "TAMPERED"

    def test_removed_files_pruned_from_cache(self, tmp_path):
        tree = tmp_path / "tree"
        keep = _write(tree, "keep.py", "X = 1\n")
        drop = _write(tree, "drop.py", "Y = 2\n")
        cache = tmp_path / "cache.json"
        analyze_paths([tree], cache_path=cache)
        drop.unlink()
        keep.write_text("X = 3\n", encoding="utf-8")  # force a dirty save
        analyze_paths([tree], cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert not any("drop.py" in rel for rel in payload["files"])

    def test_corrupt_cache_tolerated(self, tmp_path):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        findings = analyze_paths([tree], cache_path=cache)
        assert [f.code for f in findings] == ["DET001"]

    def test_cli_cache_flag(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        _write(tree, "clean.py", "X = 1\n")
        cache = tmp_path / "cache.json"
        assert analysis_main(["--cache", str(cache), str(tree)]) == 0
        assert cache.exists()
        assert analysis_main(["--cache", str(cache), str(tree)]) == 0


class TestBaseline:
    def test_write_then_compare_clean(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            analysis_main(
                [str(tree), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        # Same tree, known debt: --since-baseline reports nothing new.
        assert (
            analysis_main(
                [str(tree), "--baseline", str(baseline), "--since-baseline"]
            )
            == 0
        )

    def test_new_finding_breaks_the_ratchet(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        _write(tree, "dirty.py", DIRTY)
        baseline = tmp_path / "baseline.json"
        analysis_main([str(tree), "--baseline", str(baseline), "--write-baseline"])
        _write(
            tree,
            "fresh.py",
            """
            import random

            Y = random.random()
            """,
        )
        capsys.readouterr()
        assert (
            analysis_main(
                [str(tree), "--baseline", str(baseline), "--since-baseline"]
            )
            == 1
        )
        out = capsys.readouterr().out
        # Only the new finding is reported; the baselined one stays quiet.
        assert "fresh.py" in out
        assert "dirty.py" not in out

    def test_fixed_finding_does_not_resurrect(self, tmp_path):
        tree = tmp_path / "tree"
        path = _write(tree, "dirty.py", DIRTY)
        baseline = tmp_path / "baseline.json"
        analysis_main([str(tree), "--baseline", str(baseline), "--write-baseline"])
        path.write_text("X = 1\n", encoding="utf-8")
        assert (
            analysis_main(
                [str(tree), "--baseline", str(baseline), "--since-baseline"]
            )
            == 0
        )

    def test_line_drift_does_not_break_the_ratchet(self, tmp_path):
        # Baseline identity is (path, code, message): inserting lines
        # above a known finding must not resurrect it.
        tree = tmp_path / "tree"
        path = _write(tree, "dirty.py", DIRTY)
        baseline = tmp_path / "baseline.json"
        analysis_main([str(tree), "--baseline", str(baseline), "--write-baseline"])
        path.write_text(
            "# a comment pushing everything down\n\n"
            + path.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert (
            analysis_main(
                [str(tree), "--baseline", str(baseline), "--since-baseline"]
            )
            == 0
        )

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        _write(tree, "clean.py", "X = 1\n")
        assert (
            analysis_main(
                [
                    str(tree),
                    "--baseline",
                    str(tmp_path / "missing.json"),
                    "--since-baseline",
                ]
            )
            == 2
        )
        assert "no readable baseline" in capsys.readouterr().err

"""Unit tests for the execution environment itself (WORA runtime)."""

import pytest

from repro.core.execution_env import ConfigStore, OffPathStorage
from repro.core.ilp import Flags, ILPHeader
from repro.core.service_module import ServiceError, ServiceModule, Verdict
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator


class _Probe(ServiceModule):
    SERVICE_ID = 0x0AAA
    NAME = "probe"

    def __init__(self) -> None:
        super().__init__()
        self.attached = False
        self.data_calls = 0
        self.control_calls = 0

    def on_attach(self) -> None:
        self.attached = True

    def handle_packet(self, header, packet) -> Verdict:
        self.data_calls += 1
        return Verdict.drop()

    def handle_control(self, header, packet) -> Verdict:
        self.control_calls += 1
        return Verdict.drop()


@pytest.fixture
def env():
    return ServiceNode(Simulator(), "sn", "10.0.0.1").env


class TestLoading:
    def test_attach_hook_runs_with_context(self, env):
        module = _Probe()
        env.load(module)
        assert module.attached
        assert module.ctx is not None
        assert module.ctx.node_address == "10.0.0.1"
        assert module.ctx.service_id == _Probe.SERVICE_ID

    def test_double_load_rejected(self, env):
        env.load(_Probe())
        with pytest.raises(ServiceError):
            env.load(_Probe())

    def test_unload_allows_reload(self, env):
        env.load(_Probe())
        env.unload(_Probe.SERVICE_ID)
        assert not env.has_service(_Probe.SERVICE_ID)
        env.load(_Probe())  # no error

    def test_service_lookup_errors(self, env):
        with pytest.raises(ServiceError):
            env.service(0x0AAA)

    def test_loading_measures_into_tpm(self, env):
        log_before = len(env.tpm.extend_log)
        env.load(_Probe())
        assert len(env.tpm.extend_log) == log_before + 1

    def test_explicit_enclave_override(self, env):
        env.load(_Probe(), use_enclave=True)
        assert env.enclave_for(_Probe.SERVICE_ID) is not None


class TestDispatch:
    def test_data_vs_control_routing(self, env):
        module = env.load(_Probe())
        data_header = ILPHeader(service_id=_Probe.SERVICE_ID, connection_id=1)
        ctrl_header = ILPHeader(
            service_id=_Probe.SERVICE_ID, connection_id=1, flags=Flags.CONTROL
        )
        env.dispatch(data_header, None)
        env.dispatch(ctrl_header, None)
        assert module.data_calls == 1
        assert module.control_calls == 1

    def test_dispatch_unknown_service_raises(self, env):
        with pytest.raises(ServiceError):
            env.dispatch(ILPHeader(service_id=0x0BBB, connection_id=1), None)

    def test_enclaved_dispatch_still_returns_verdict(self, env):
        env.load(_Probe(), use_enclave=True)
        header = ILPHeader(service_id=_Probe.SERVICE_ID, connection_id=1)
        verdict = env.dispatch(header, None)
        assert verdict.dropped


class _SecondProbe(_Probe):
    SERVICE_ID = 0x0BBB
    NAME = "probe-2"


class _FaultyProbe(ServiceModule):
    SERVICE_ID = 0x0CCC
    NAME = "faulty"

    def handle_packet(self, header, packet) -> Verdict:
        if header.connection_id % 2:
            raise ServiceError("odd connections rejected")
        return Verdict.drop()


class _VectorProbe(_Probe):
    SERVICE_ID = 0x0DDD
    NAME = "vector"

    def __init__(self) -> None:
        super().__init__()
        self.batch_sizes: list[int] = []

    def handle_batch(self, punts):
        self.batch_sizes.append(len(punts))
        return super().handle_batch(punts)


class TestDispatchBatch:
    def _punt(self, service_id, conn):
        return (ILPHeader(service_id=service_id, connection_id=conn), None)

    def test_groups_by_service_preserving_order(self, env):
        a, b = env.load(_Probe()), env.load(_SecondProbe())
        punts = [
            self._punt(_Probe.SERVICE_ID, 0),
            self._punt(_SecondProbe.SERVICE_ID, 1),
            self._punt(_Probe.SERVICE_ID, 2),
        ]
        results = env.dispatch_batch(punts)
        assert len(results) == 3
        assert all(v is not None and v.dropped for v in results)
        assert a.data_calls == 2
        assert b.data_calls == 1

    def test_per_punt_error_isolation(self, env):
        env.load(_FaultyProbe())
        punts = [self._punt(_FaultyProbe.SERVICE_ID, c) for c in range(4)]
        results = env.dispatch_batch(punts)
        assert [v is None for v in results] == [False, True, False, True]

    def test_handle_batch_override_sees_whole_group(self, env):
        module = env.load(_VectorProbe())
        punts = [self._punt(_VectorProbe.SERVICE_ID, c) for c in range(5)]
        env.dispatch_batch(punts)
        assert module.batch_sizes == [5]

    def test_missing_service_raises(self, env):
        env.load(_Probe())
        with pytest.raises(ServiceError):
            env.dispatch_batch(
                [self._punt(_Probe.SERVICE_ID, 0), self._punt(0x0EEE, 1)]
            )

    def test_enclaved_group_pays_one_crossing_pair(self, env):
        env.load(_Probe(), use_enclave=True)
        enclave = env.enclave_for(_Probe.SERVICE_ID)
        punts = [self._punt(_Probe.SERVICE_ID, c) for c in range(8)]
        before = enclave.stats.crossings
        results = env.dispatch_batch(punts)
        assert all(v is not None for v in results)
        assert enclave.stats.crossings == before + 2  # in + out, once

    def test_control_punts_route_to_handle_control(self, env):
        module = env.load(_Probe())
        header = ILPHeader(
            service_id=_Probe.SERVICE_ID, connection_id=1, flags=Flags.CONTROL
        )
        env.dispatch_batch([(header, None)])
        assert module.control_calls == 1
        assert module.data_calls == 0

    def test_wrong_length_batch_fails_group(self, env):
        class _Short(_Probe):
            SERVICE_ID = 0x0FFF

            def handle_batch(self, punts):
                return []  # violates one-entry-per-punt

        env.load(_Short())
        results = env.dispatch_batch([self._punt(0x0FFF, 0)])
        assert results == [None]


class TestConfigStore:
    def test_scope_items_and_scopes(self):
        config = ConfigStore()
        config.set(1, "cust-a", "x", 1)
        config.set(1, "cust-a", "y", 2)
        config.set(1, "cust-b", "x", 3)
        config.set(2, "cust-a", "x", 4)
        assert config.scope_items(1, "cust-a") == {"x": 1, "y": 2}
        assert config.scopes(1) == {"cust-a", "cust-b"}

    def test_default_on_missing(self):
        assert ConfigStore().get(1, "s", "k", default="fallback") == "fallback"


class TestOffPathStorage:
    def test_crud_and_counters(self):
        storage = OffPathStorage()
        storage.put("a/1", b"x")
        storage.put("a/2", b"y")
        storage.put("b/1", b"z")
        assert storage.get("a/1") == b"x"
        assert storage.get("missing") is None
        assert sorted(storage.keys("a/")) == ["a/1", "a/2"]
        assert storage.delete("a/1") is True
        assert storage.delete("a/1") is False
        assert len(storage) == 2
        assert storage.reads == 2
        assert storage.writes == 3

"""Tests for the privacy services: oDNS, private relay, mixnet (§6.2)."""

import pytest

from repro import WellKnownService
from repro.core.crypto import random_key
from repro.libs.cryptolib import CryptoLibrary
from repro.services.mixnet import build_circuit, send_via_mixnet
from repro.services.odns import ODNSClient, ODNSResolver
from repro.services.private_relay import (
    reply_via_relay,
    send_via_relay,
    wrap_for_relay,
)


def sn_of(net, edomain, index):
    dom = net.edomains[edomain]
    return dom.sns[dom.sn_addresses()[index]]


def payloads(host):
    return [p.data for _, p in host.delivered if p.data]


class TestODNS:
    def _world(self, net):
        proxy_sn = sn_of(net, "west", 0)
        client = net.add_host(proxy_sn, name="client")
        resolver_host = net.add_host(sn_of(net, "east", 0), name="resolver")
        key = random_key()
        resolver = ODNSResolver(
            host=resolver_host,
            zone={"example.com": "93.184.216.34"},
            shared_key=key,
        )
        resolver.install()
        client_agent = ODNSClient(
            host=client, resolver_addr=resolver_host.address, shared_key=key
        )
        client_agent.install()
        return proxy_sn, client, client_agent, resolver

    def test_query_resolves(self, two_edomain_net):
        net = two_edomain_net
        _, _, client_agent, resolver = self._world(net)
        client_agent.query("example.com")
        net.run(1.0)
        assert client_agent.answers == {"example.com": "93.184.216.34"}
        assert resolver.queries_served == 1

    def test_unknown_name_gets_null_answer(self, two_edomain_net):
        net = two_edomain_net
        _, _, client_agent, _ = self._world(net)
        client_agent.query("nonexistent.example")
        net.run(1.0)
        assert client_agent.answers == {"nonexistent.example": "0.0.0.0"}

    def test_resolver_never_sees_client_address(self, two_edomain_net):
        """The core oDNS property: asker and question are unlinkable."""
        net = two_edomain_net
        _, client, client_agent, resolver = self._world(net)
        client_agent.query("example.com")
        net.run(1.0)
        assert resolver.observed_sources == [None]

    def test_proxy_never_sees_plaintext_query(self, two_edomain_net):
        net = two_edomain_net
        proxy_sn, client, client_agent, _ = self._world(net)
        captured = []
        module = proxy_sn.env.service(WellKnownService.ODNS)
        original = module.handle_packet

        def spy(header, packet):
            captured.append(packet.payload.data)
            return original(header, packet)

        module.handle_packet = spy
        client_agent.query("secret-site.example")
        net.run(1.0)
        assert captured
        assert all(b"secret-site" not in blob for blob in captured)

    def test_proxy_runs_in_enclave(self, two_edomain_net):
        proxy_sn = sn_of(two_edomain_net, "west", 0)
        assert proxy_sn.env.enclave_for(WellKnownService.ODNS) is not None


class TestPrivateRelay:
    def _world(self, net):
        ingress_sn = sn_of(net, "west", 0)
        egress_sn = sn_of(net, "east", 0)
        client = net.add_host(ingress_sn, name="client")
        site = net.add_host(sn_of(net, "east", 1), name="site")
        return ingress_sn, egress_sn, client, site

    def test_outbound_delivery(self, two_edomain_net):
        net = two_edomain_net
        ingress_sn, egress_sn, client, site = self._world(net)
        send_via_relay(
            client, ingress_sn.address, egress_sn.address, site.address, b"GET /"
        )
        net.run(1.0)
        assert payloads(site) == [b"GET /"]

    def test_site_never_learns_client(self, two_edomain_net):
        net = two_edomain_net
        ingress_sn, egress_sn, client, site = self._world(net)
        send_via_relay(
            client, ingress_sn.address, egress_sn.address, site.address, b"x"
        )
        net.run(1.0)
        from repro.core.ilp import TLV

        sources = [h.get_str(TLV.SRC_HOST) for h, p in site.delivered if p.data]
        assert sources == [None]

    def test_ingress_never_sees_destination(self, two_edomain_net):
        """Split trust: the ingress peels only its own layer."""
        net = two_edomain_net
        ingress_sn, egress_sn, client, site = self._world(net)
        lib = CryptoLibrary()
        blob = wrap_for_relay(
            lib, ingress_sn.address, egress_sn.address, site.address, b"data"
        )
        # The ingress layer decrypts to {egress, blob}; assert the
        # destination appears nowhere in what ingress can read.
        import json
        from repro.services.private_relay import relay_key

        peeled = json.loads(lib.decrypt(relay_key(ingress_sn.address), blob).decode())
        assert set(peeled) == {"egress", "blob"}
        assert site.address not in json.dumps(peeled)

    def test_return_path(self, two_edomain_net):
        net = two_edomain_net
        ingress_sn, egress_sn, client, site = self._world(net)
        conn = send_via_relay(
            client, ingress_sn.address, egress_sn.address, site.address, b"ping"
        )
        net.run(1.0)
        # The site answers on the relayed connection id via the egress.
        site_conn_ids = [
            h.connection_id for h, p in site.delivered if p.data == b"ping"
        ]
        reply_via_relay(site, site_conn_ids[0], egress_sn.address, b"pong")
        net.run(1.0)
        assert b"pong" in payloads(client)

    def test_relay_requires_enclave(self, two_edomain_net):
        sn = sn_of(two_edomain_net, "west", 0)
        assert sn.env.enclave_for(WellKnownService.PRIVATE_RELAY) is not None


class TestMixnet:
    def test_three_hop_delivery(self, two_edomain_net):
        net = two_edomain_net
        circuit = [
            sn_of(net, "west", 0).address,
            sn_of(net, "west", 1).address,
            sn_of(net, "east", 0).address,
        ]
        client = net.add_host(sn_of(net, "west", 0), name="client")
        dest = net.add_host(sn_of(net, "east", 1), name="dest")
        send_via_mixnet(client, circuit, dest.address, b"anonymous")
        net.run(2.0)
        assert payloads(dest) == [b"anonymous"]
        # Every mix peeled exactly one layer.
        for addr in circuit:
            module = net.sn_at(addr).env.service(WellKnownService.MIXNET)
            assert module.peeled >= 1

    def test_single_hop_circuit(self, two_edomain_net):
        net = two_edomain_net
        entry = sn_of(net, "west", 0)
        client = net.add_host(entry, name="client")
        dest = net.add_host(sn_of(net, "west", 1), name="dest")
        send_via_mixnet(client, [entry.address], dest.address, b"short")
        net.run(1.0)
        assert payloads(dest) == [b"short"]

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError):
            build_circuit(CryptoLibrary(), [], "1.2.3.4", b"x")

    def test_layers_hide_destination_from_entry(self, two_edomain_net):
        net = two_edomain_net
        circuit = [
            sn_of(net, "west", 0).address,
            sn_of(net, "east", 0).address,
        ]
        dest_addr = "198.51.100.77"
        lib = CryptoLibrary()
        blob = build_circuit(lib, circuit, dest_addr, b"data")
        import json
        from repro.services.mixnet import mix_key

        entry_view = json.loads(lib.decrypt(mix_key(circuit[0]), blob).decode())
        assert entry_view["next"] == circuit[1]
        assert dest_addr not in json.dumps(entry_view)

    def test_mix_delay_applied(self, two_edomain_net):
        """Packets are held up to MIX_DELAY per hop (timing decorrelation)."""
        net = two_edomain_net
        entry = sn_of(net, "west", 0)
        client = net.add_host(entry, name="client")
        dest = net.add_host(sn_of(net, "west", 1), name="dest")
        send_via_mixnet(client, [entry.address], dest.address, b"delayed")
        net.run(0.0005)  # less than typical mixing delay
        assert payloads(dest) == []
        net.run(2.0)
        assert payloads(dest) == [b"delayed"]

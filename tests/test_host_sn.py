"""Unit tests for the host stack and service node behaviors."""

import pytest

from repro.core.host import Host, HostError
from repro.core.ilp import Flags, ILPHeader, TLV
from repro.core.ipc import InvocationMode
from repro.core.packet import make_payload
from repro.core.service_node import ServiceNode
from repro.core.service_module import Verdict, WellKnownService
from repro.netsim import Link, Simulator
from repro.services import IPDeliveryService, NullService


def _basic(sim=None):
    sim = sim or Simulator()
    sn = ServiceNode(sim, "sn", "10.0.0.1")
    a = Host(sim, "a", "192.168.0.1", subnet="192.168.0.0/24")
    b = Host(sim, "b", "192.168.0.2", subnet="192.168.0.0/24")
    Link(sim, a, sn, latency=0.001)
    Link(sim, b, sn, latency=0.001)
    sn.associate_host(a)
    sn.associate_host(b)
    return sim, sn, a, b


class TestAssociation:
    def test_association_creates_psp_both_sides(self):
        _, sn, a, _ = _basic()
        assert sn.keystore.has(a.address)
        assert a.keystore.has(sn.address)
        assert a.first_hop_addresses == [sn.address]
        assert a.address in sn.associated_hosts

    def test_connect_requires_first_hop(self):
        sim = Simulator()
        orphan = Host(sim, "o", "192.168.5.5")
        with pytest.raises(HostError):
            orphan.connect(1)

    def test_first_hop_prefers_sn_with_service(self):
        sim = Simulator()
        sn1 = ServiceNode(sim, "sn1", "10.0.0.1")
        sn2 = ServiceNode(sim, "sn2", "10.0.0.2")
        sn2.load_service(NullService())
        host = Host(sim, "h", "192.168.0.1")
        Link(sim, host, sn1)
        Link(sim, host, sn2)
        sn1.associate_host(host)
        sn2.associate_host(host)
        assert host.first_hop_for(NullService.SERVICE_ID) is sn2
        # Unknown service: falls back to the first association.
        assert host.first_hop_for(0x7777) is sn1


class TestSendReceive:
    def test_delivery_via_sn(self):
        sim, sn, a, b = _basic()
        sn.load_service(NullService())
        conn = a.connect(
            WellKnownService.NULL, dest_addr=b.address, allow_direct=False
        )
        a.send(conn, b"ping")
        sim.run()
        assert [p.data for _, p in b.delivered] == [b"ping"]
        assert conn.packets_sent == 1

    def test_first_flag_only_on_first_packet(self):
        sim, sn, a, b = _basic()
        sn.load_service(NullService())
        conn = a.connect(WellKnownService.NULL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"one")
        a.send(conn, b"two")
        sim.run()
        flags = [h.flags & Flags.FIRST for h, _ in b.delivered]
        assert flags == [Flags.FIRST, 0]

    def test_service_handler_dispatch(self):
        sim, sn, a, b = _basic()
        sn.load_service(NullService())
        got = []
        b.on_service_data(WellKnownService.NULL, lambda cid, h, p: got.append(p.data))
        conn = a.connect(WellKnownService.NULL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"x")
        sim.run()
        assert got == [b"x"]

    def test_default_handler_fallback(self):
        sim, sn, a, b = _basic()
        sn.load_service(NullService())
        got = []
        b.default_handler = lambda cid, h, p: got.append(h.service_id)
        conn = a.connect(WellKnownService.NULL, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"x")
        sim.run()
        assert got == [WellKnownService.NULL]

    def test_closed_connection_rejects_send(self):
        sim, sn, a, b = _basic()
        sn.load_service(NullService())
        conn = a.connect(WellKnownService.NULL, dest_addr=b.address, allow_direct=False)
        a.close(conn)
        with pytest.raises(HostError):
            a.send(conn, b"late")

    def test_undecryptable_counted(self):
        sim, sn, a, b = _basic()
        # b receives a frame sealed with a key it does not know.
        from repro.core.packet import ILPPacket, L3Header
        from repro.core.psp import PSPContext, pairwise_secret

        rogue = PSPContext(pairwise_secret("10.0.0.1", "4.4.4.4"))
        pkt = ILPPacket(
            l3=L3Header(src="10.0.0.1", dst=b.address),
            ilp_wire=rogue.seal(ILPHeader(service_id=1, connection_id=1).encode()),
            payload=make_payload(b""),
        )
        sn.register_peer_node(b.address, b)
        sn.send_frame(pkt, b)
        sim.run()
        assert b.undeliverable == 1


class TestDirectConnectivity:
    def test_same_subnet_direct_path(self):
        """§3.2: same-subnet hosts with a direct link bypass SNs."""
        sim, sn, a, b = _basic()
        Link(sim, a, b, latency=0.0005)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        assert conn.direct_peer == b.address
        a.send(conn, b"direct!")
        sim.run()
        assert [p.data for _, p in b.delivered] == [b"direct!"]
        assert sn.terminus.stats.packets_in == 0  # SN never touched

    def test_no_direct_without_link(self):
        sim, sn, a, b = _basic()
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        assert conn.direct_peer is None

    def test_no_direct_across_subnets(self):
        sim = Simulator()
        sn = ServiceNode(sim, "sn", "10.0.0.1")
        a = Host(sim, "a", "192.168.0.1", subnet="192.168.0.0/24")
        c = Host(sim, "c", "172.16.0.1", subnet="172.16.0.0/24")
        Link(sim, a, sn)
        Link(sim, c, sn)
        Link(sim, a, c)  # physical adjacency but different subnets
        sn.associate_host(a)
        sn.associate_host(c)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=c.address)
        assert conn.direct_peer is None

    def test_direct_disabled_by_flag(self):
        sim, sn, a, b = _basic()
        Link(sim, a, b)
        conn = a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False
        )
        assert conn.direct_peer is None


class TestControlPlaneMessages:
    def test_out_of_band_control_reaches_service(self):
        sim, sn, a, b = _basic()
        service = NullService()
        sn.load_service(service)
        seen = []
        service.handle_control = lambda h, p: (seen.append(h), Verdict.drop())[1]
        a.send_control(WellKnownService.NULL, {TLV.SERVICE_OPTS: b"hello"})
        sim.run()
        assert len(seen) == 1
        assert seen[0].is_control


class TestFailover:
    def test_checkpoint_transfer(self):
        sim, sn, a, b = _basic()
        service = NullService()
        sn.load_service(service)
        service.packets_seen = 17
        standby = ServiceNode(sim, "standby", "10.0.0.99")
        standby_svc = NullService()
        standby.load_service(standby_svc)
        count = sn.failover_to(standby)
        assert count == 1
        assert standby_svc.packets_seen == 17

"""Unit tests for links, nodes, and topology helpers."""

import random

import pytest

from repro.netsim import (
    EchoNode,
    Link,
    LinkError,
    NetNode,
    NodeError,
    Simulator,
    SinkNode,
    Topology,
    build_full_mesh,
    build_line,
    build_star,
)


class _Frame:
    def __init__(self, size: int) -> None:
        self.wire_size = size


class TestLink:
    def test_delivers_after_latency(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        Link(sim, a, b, latency=0.010)
        a.send_frame(_Frame(100), b)
        sim.run()
        assert len(b.received) == 1
        assert sim.now == pytest.approx(0.010)

    def test_serialization_delay_at_bandwidth(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        Link(sim, a, b, latency=0.0, bandwidth_bps=8000.0)  # 1000 B/s
        a.send_frame(_Frame(500), b)
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_back_to_back_frames_queue_on_bandwidth(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        Link(sim, a, b, latency=0.0, bandwidth_bps=8000.0)
        arrivals = []
        b.rx_tap = lambda frame, link: arrivals.append(sim.now)
        a.send_frame(_Frame(500), b)
        a.send_frame(_Frame(500), b)
        sim.run()
        assert arrivals == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_mtu_enforced(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), NetNode(sim, "b")
        Link(sim, a, b, mtu=100)
        with pytest.raises(LinkError):
            a.send_frame(_Frame(101), b)

    def test_loss_rate_drops_frames(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        link = Link(sim, a, b, loss_rate=0.5, rng=random.Random(42))
        for _ in range(200):
            a.send_frame(_Frame(10), b)
        sim.run()
        stats = link.stats[a]
        assert stats.frames_dropped_loss > 50
        assert len(b.received) == stats.frames_sent - stats.frames_dropped_loss

    def test_down_link_drops(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        link = Link(sim, a, b)
        link.set_down()
        assert a.send_frame(_Frame(10), b) is False
        sim.run()
        assert b.received == []
        link.set_up()
        assert a.send_frame(_Frame(10), b) is True

    def test_stats_count_bytes(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        link = Link(sim, a, b)
        a.send_frame(_Frame(100), b)
        a.send_frame(_Frame(50), b)
        sim.run()
        assert link.stats[a].bytes_sent == 150
        assert link.stats[a].bytes_delivered == 150

    def test_invalid_parameters(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), NetNode(sim, "b")
        with pytest.raises(LinkError):
            Link(sim, a, b, latency=-1.0)
        with pytest.raises(LinkError):
            Link(sim, a, b, loss_rate=1.5)

    def test_raw_bytes_frames_allowed(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), SinkNode(sim, "b")
        Link(sim, a, b)
        a.send_frame(b"hello", b)
        sim.run()
        assert b.received == [b"hello"]


class TestNode:
    def test_neighbor_bookkeeping(self):
        sim = Simulator()
        a, b, c = (NetNode(sim, n) for n in "abc")
        Link(sim, a, b)
        Link(sim, a, c)
        assert set(a.neighbors()) == {b, c}
        assert a.has_link_to(b)
        assert not b.has_link_to(c)

    def test_send_to_non_neighbor_raises(self):
        sim = Simulator()
        a, b = NetNode(sim, "a"), NetNode(sim, "b")
        with pytest.raises(NodeError):
            a.send_frame(_Frame(1), b)

    def test_echo_node_bounces(self):
        sim = Simulator()
        a, echo = SinkNode(sim, "a"), EchoNode(sim, "echo")
        Link(sim, a, echo, latency=0.001)
        frame = _Frame(10)
        a.send_frame(frame, echo)
        sim.run()
        assert a.received == [frame]


class TestTopology:
    def test_star_shape(self):
        sim = Simulator()
        topo = build_star(sim, NetNode, SinkNode, n_leaves=4)
        center = topo.node("center")
        assert len(center.neighbors()) == 4
        assert len(topo.links) == 4

    def test_full_mesh_link_count(self):
        sim = Simulator()
        topo = build_full_mesh(sim, NetNode, [f"n{i}" for i in range(5)])
        assert len(topo.links) == 10  # C(5,2)

    def test_line_shape(self):
        sim = Simulator()
        topo = build_line(sim, NetNode, 4)
        assert len(topo.links) == 3
        assert len(topo.node("n0").neighbors()) == 1
        assert len(topo.node("n1").neighbors()) == 2

    def test_duplicate_node_name_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_node(NetNode(sim, "x"))
        with pytest.raises(ValueError):
            topo.add_node(NetNode(sim, "x"))

    def test_shortest_path_respects_latency(self):
        sim = Simulator()
        topo = Topology(sim)
        for name in "abc":
            topo.add_node(NetNode(sim, name))
        topo.connect("a", "b", latency=0.001)
        topo.connect("b", "c", latency=0.001)
        topo.connect("a", "c", latency=0.010)
        assert topo.shortest_path("a", "c") == ["a", "b", "c"]

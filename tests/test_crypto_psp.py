"""Unit tests for the crypto primitives and PSP contexts."""

import pytest

from repro.core import crypto
from repro.core.psp import PSPContext, PSPError, PeerKeyStore, pairwise_secret


class TestSealOpen:
    def test_roundtrip(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sealed = crypto.seal(key, nonce, b"hello world")
        assert crypto.open_sealed(key, nonce, sealed) == b"hello world"

    def test_ciphertext_differs_from_plaintext(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sealed = crypto.seal(key, nonce, b"secret header bytes")
        assert b"secret header bytes" not in sealed

    def test_tamper_detected(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sealed = bytearray(crypto.seal(key, nonce, b"payload"))
        sealed[0] ^= 0xFF
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(key, nonce, bytes(sealed))

    def test_wrong_key_rejected(self):
        nonce = crypto.NonceGenerator().next()
        sealed = crypto.seal(crypto.random_key(), nonce, b"x")
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(crypto.random_key(), nonce, sealed)

    def test_wrong_nonce_rejected(self):
        key = crypto.random_key()
        gen = crypto.NonceGenerator()
        sealed = crypto.seal(key, gen.next(), b"x")
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(key, gen.next(), sealed)

    def test_aad_binding(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sealed = crypto.seal(key, nonce, b"x", aad=b"ctx-1")
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(key, nonce, sealed, aad=b"ctx-2")

    def test_empty_plaintext(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        assert crypto.open_sealed(key, nonce, crypto.seal(key, nonce, b"")) == b""


class TestDerivation:
    def test_deterministic(self):
        master = crypto.random_key()
        assert crypto.derive_key(master, "a") == crypto.derive_key(master, "a")

    def test_label_separation(self):
        master = crypto.random_key()
        assert crypto.derive_key(master, "a") != crypto.derive_key(master, "b")

    def test_context_separation(self):
        master = crypto.random_key()
        assert crypto.derive_key(master, "a", b"1") != crypto.derive_key(
            master, "a", b"2"
        )

    def test_short_master_rejected(self):
        with pytest.raises(crypto.CryptoError):
            crypto.derive_key(b"short", "a")


class TestKeyPairRegistry:
    def test_sign_verify_via_registry(self):
        registry = crypto.SignatureRegistry()
        kp = crypto.KeyPair.generate()
        registry.register(kp)
        sig = kp.sign(b"msg")
        assert registry.verify(kp.public, b"msg", sig)
        assert not registry.verify(kp.public, b"other", sig)

    def test_unknown_public_fails(self):
        registry = crypto.SignatureRegistry()
        kp = crypto.KeyPair.generate()
        assert not registry.verify(kp.public, b"m", kp.sign(b"m"))


class TestNonceGenerator:
    def test_monotonic_unique(self):
        gen = crypto.NonceGenerator()
        nonces = {gen.next() for _ in range(1000)}
        assert len(nonces) == 1000

    def test_exhaustion_raises_at_wraparound(self):
        gen = crypto.NonceGenerator(start=2**64 - 2)
        assert gen.next() == b"\xff" * 8  # the last valid counter value
        with pytest.raises(crypto.CryptoError):
            gen.next()

    def test_exhausted_generator_stays_exhausted(self):
        gen = crypto.NonceGenerator(start=2**64 - 1)
        for _ in range(3):
            with pytest.raises(crypto.CryptoError):
                gen.next()


class TestSealingKeySchedule:
    def test_schedule_matches_module_functions(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sk = crypto.SealingKey(key)
        blob = sk.seal(nonce, b"hello", aad=b"a")
        assert blob == crypto.seal(key, nonce, b"hello", aad=b"a")
        assert sk.open(nonce, blob, aad=b"a") == b"hello"

    def test_schedule_cache_returns_same_object(self):
        key = crypto.random_key()
        assert crypto.sealing_key(key) is crypto.sealing_key(key)

    def test_seal_into_appends_in_place(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        sk = crypto.sealing_key(key)
        out = bytearray(b"prefix")
        sk.seal_into(out, nonce, b"payload")
        assert bytes(out[:6]) == b"prefix"
        assert crypto.open_sealed(key, nonce, bytes(out[6:])) == b"payload"

    def test_bad_nonce_length_rejected(self):
        sk = crypto.SealingKey(crypto.random_key())
        with pytest.raises(crypto.CryptoError):
            sk.seal(b"short", b"x")
        with pytest.raises(crypto.CryptoError):
            sk.seal_into(bytearray(), b"toolongnonce", b"x")


class TestPSPContext:
    def _pair(self):
        secret = pairwise_secret("10.0.0.1", "10.0.0.2")
        return PSPContext(secret), PSPContext(secret)

    def test_seal_open_between_peers(self):
        a, b = self._pair()
        blob = a.seal(b"ilp header")
        assert b.open(blob) == b"ilp header"

    def test_out_of_order_packets_decrypt(self):
        """PSP's per-packet independence: arrival order is irrelevant."""
        a, b = self._pair()
        blobs = [a.seal(f"pkt{i}".encode()) for i in range(5)]
        for i in (4, 0, 2, 1, 3):
            assert b.open(blobs[i]) == f"pkt{i}".encode()

    def test_rotation_keeps_old_epoch_valid(self):
        a, b = self._pair()
        old = a.seal(b"before rekey")
        a.rotate()
        new = a.seal(b"after rekey")
        # Receiver has not rotated yet; both must decrypt.
        assert b.open(new) == b"after rekey"
        assert b.open(old) == b"before rekey"

    def test_receiver_derives_one_epoch_ahead(self):
        a, b = self._pair()
        a.rotate()
        assert b.open(a.seal(b"x")) == b"x"
        assert b.stats.packets_opened == 1

    def test_far_future_epoch_rejected(self):
        a, b = self._pair()
        for _ in range(3):
            a.rotate()
        with pytest.raises(PSPError):
            b.open(a.seal(b"x"))

    def test_tampered_blob_rejected_and_counted(self):
        a, b = self._pair()
        blob = bytearray(a.seal(b"x"))
        blob[-1] ^= 0x01
        with pytest.raises(PSPError):
            b.open(bytes(blob))
        assert b.stats.auth_failures == 1

    def test_wrong_pair_secret_fails(self):
        a = PSPContext(pairwise_secret("10.0.0.1", "10.0.0.2"))
        c = PSPContext(pairwise_secret("10.0.0.1", "10.0.0.3"))
        with pytest.raises(PSPError):
            c.open(a.seal(b"x"))

    def test_overhead_is_constant(self):
        a, _ = self._pair()
        small = a.seal(b"x")
        large = a.seal(b"x" * 500)
        assert len(small) == PSPContext.overhead() + 1
        assert (len(large) - len(small)) == 499

    def test_epoch_wraps_mod_256(self):
        secret = pairwise_secret("a.example", "b.example", realm=b"test")
        ctx = PSPContext(secret, epoch=255)
        assert ctx.rotate() == 0


class TestEpochRotationEdgeCases:
    """Wraparound, forward derivation, and rejection boundaries."""

    def _pair(self, epoch: int = 0):
        secret = pairwise_secret("10.0.0.1", "10.0.0.2")
        return PSPContext(secret, epoch=epoch), PSPContext(secret, epoch=epoch)

    def test_wraparound_traffic_flows_across_0xff_to_0x00(self):
        """Rotation across the 0xFF→0x00 boundary behaves like any other."""
        a, b = self._pair(epoch=0xFF)
        before = a.seal(b"sealed at 0xff")
        assert a.rotate() == 0x00
        after = a.seal(b"sealed at 0x00")
        # Receiver still at 0xFF: 0x00 is its (epoch+1) & 0xFF, derived forward.
        assert b.open(after) == b"sealed at 0x00"
        assert b.open(before) == b"sealed at 0xff"

    def test_wraparound_receiver_rotated_first(self):
        a, b = self._pair(epoch=0xFF)
        b.rotate()  # receiver at 0x00, still accepts 0xFF
        assert b.open(a.seal(b"late 0xff packet")) == b"late 0xff packet"

    def test_forward_derivation_caches_the_key(self):
        a, b = self._pair()
        a.rotate()
        assert b.open(a.seal(b"first")) == b"first"
        assert a.epoch in b.known_epochs()  # derived once, retained
        schedule = b.cached_schedule(a.epoch)
        assert schedule is not None
        assert b.open(a.seal(b"second")) == b"second"
        assert b.cached_schedule(a.epoch) is schedule  # not re-derived

    def test_two_epochs_ahead_rejected(self):
        a, b = self._pair()
        a.rotate()
        a.rotate()  # a is now two ahead of b
        blob = a.seal(b"too far ahead")
        with pytest.raises(PSPError, match="unknown PSP epoch"):
            b.open(blob)
        assert b.stats.auth_failures == 1
        # The rejected epoch must not have been cached.
        assert a.epoch not in b.known_epochs()

    def test_two_behind_rejected_after_double_rotation(self):
        """The receiver only keeps current + previous epochs."""
        a, b = self._pair()
        stale = a.seal(b"epoch 0")
        for _ in range(2):
            a.rotate()
            b.rotate()
        with pytest.raises(PSPError):
            b.open(stale)

    def test_rotation_builds_schedule_once(self):
        a, _ = self._pair()
        a.rotate()
        assert a.cached_schedule(a.epoch) is a.seal_schedule
        assert len(a.known_epochs()) == 2  # current + previous only, forever


class TestPairwiseSecret:
    def test_symmetric(self):
        assert pairwise_secret("10.0.0.1", "10.0.0.2") == pairwise_secret(
            "10.0.0.2", "10.0.0.1"
        )

    def test_pair_separation(self):
        assert pairwise_secret("10.0.0.1", "10.0.0.2") != pairwise_secret(
            "10.0.0.1", "10.0.0.3"
        )


class TestPeerKeyStore:
    def test_establish_and_get(self):
        store = PeerKeyStore()
        ctx = store.establish("10.0.0.9", crypto.random_key())
        assert store.get("10.0.0.9") is ctx
        assert store.has("10.0.0.9")
        assert len(store) == 1

    def test_missing_peer_raises(self):
        with pytest.raises(PSPError):
            PeerKeyStore().get("10.9.9.9")

    def test_remove(self):
        store = PeerKeyStore()
        store.establish("10.0.0.9", crypto.random_key())
        store.remove("10.0.0.9")
        assert not store.has("10.0.0.9")

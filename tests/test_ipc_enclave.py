"""Unit tests for invocation channels and the enclave model."""

import pytest

from repro.core.attestation import PCR_ENCLAVE, SoftwareTPM
from repro.core.enclave import Enclave, EnclaveError, module_image
from repro.core.ilp import ILPHeader
from repro.core.ipc import CostModel, InvocationChannel, InvocationMode


class TestInvocationChannel:
    def _header(self):
        return ILPHeader(service_id=1, connection_id=5)

    def test_ipc_roundtrip_preserves_values(self):
        channel = InvocationChannel(InvocationMode.IPC)
        result = channel.invoke(
            lambda header, pkt: (header.connection_id, pkt), self._header(), "pkt"
        )
        assert result == (5, "pkt")

    def test_ipc_marshals_bytes(self):
        channel = InvocationChannel(InvocationMode.IPC)
        channel.invoke(lambda h, p: None, self._header(), b"x" * 100)
        assert channel.stats.invocations == 1
        assert channel.stats.bytes_marshalled > 100

    def test_shm_passes_references(self):
        channel = InvocationChannel(InvocationMode.SHARED_MEMORY)
        marker = object()
        received = []
        channel.invoke(lambda h, p: received.append(p), self._header(), marker)
        assert received[0] is marker

    def test_ipc_copies_not_references(self):
        """The IPC hop crosses a process boundary: objects are copied."""
        channel = InvocationChannel(InvocationMode.IPC)
        payload = {"k": [1, 2]}
        received = []
        channel.invoke(lambda h, p: received.append(p), self._header(), payload)
        assert received[0] == payload
        assert received[0] is not payload


class TestInvokeBatch:
    def _punts(self, n):
        return [
            (ILPHeader(service_id=1, connection_id=i), f"pkt-{i}")
            for i in range(n)
        ]

    def test_ipc_batch_roundtrip_preserves_order(self):
        channel = InvocationChannel(InvocationMode.IPC)
        results = channel.invoke_batch(
            lambda punts: [h.connection_id for h, _p in punts], self._punts(5)
        )
        assert results == [0, 1, 2, 3, 4]

    def test_ipc_batch_copies_not_references(self):
        channel = InvocationChannel(InvocationMode.IPC)
        marker = {"k": [1]}
        received = []
        channel.invoke_batch(
            lambda punts: [received.append(p) for _h, p in punts],
            [(ILPHeader(service_id=1, connection_id=0), marker)],
        )
        assert received[0] == marker
        assert received[0] is not marker

    def test_shm_batch_passes_references(self):
        channel = InvocationChannel(InvocationMode.SHARED_MEMORY)
        marker = object()
        received = []
        channel.invoke_batch(
            lambda punts: [received.append(p) for _h, p in punts],
            [(ILPHeader(service_id=1, connection_id=0), marker)],
        )
        assert received[0] is marker

    def test_batch_counters(self):
        channel = InvocationChannel(InvocationMode.IPC)
        channel.invoke_batch(lambda punts: [None] * len(punts), self._punts(7))
        channel.invoke_batch(lambda punts: [None] * len(punts), self._punts(3))
        stats = channel.stats
        assert stats.invocations == 10
        assert stats.batches == 2
        assert stats.max_batch == 7

    def test_ipc_batch_amortizes_marshalling(self):
        """One batch round trip costs fewer bytes than n scalar ones."""
        scalar = InvocationChannel(InvocationMode.IPC)
        for header, pkt in self._punts(16):
            scalar.invoke(lambda h, p: None, header, pkt)
        batched = InvocationChannel(InvocationMode.IPC)
        batched.invoke_batch(lambda punts: [None] * len(punts), self._punts(16))
        assert batched.stats.ipc_bytes < scalar.stats.ipc_bytes

    def test_per_mode_byte_accounting(self):
        header = ILPHeader(service_id=1, connection_id=5)
        ipc = InvocationChannel(InvocationMode.IPC)
        ipc.invoke(lambda h, p: None, header, "p")
        assert ipc.stats.ipc_bytes == ipc.stats.bytes_marshalled > 0
        assert ipc.stats.shm_bytes == 0
        shm = InvocationChannel(InvocationMode.SHARED_MEMORY)
        shm.invoke(lambda h, p: None, header, "p")
        # shm mode counts the header copy its ring write makes
        assert shm.stats.shm_bytes == shm.stats.bytes_marshalled
        assert shm.stats.shm_bytes == len(bytes(header.encode()))
        assert shm.stats.ipc_bytes == 0

    def test_shm_batch_counts_one_ring_write_per_punt(self):
        channel = InvocationChannel(InvocationMode.SHARED_MEMORY)
        punts = self._punts(4)
        channel.invoke_batch(lambda ps: [None] * len(ps), punts)
        expected = sum(len(bytes(h.encode())) for h, _p in punts)
        assert channel.stats.shm_bytes == expected


class TestCostModel:
    def test_ipc_slower_than_shm(self):
        cost = CostModel()
        assert cost.invocation_latency(
            InvocationMode.IPC, enclave=False
        ) > cost.invocation_latency(InvocationMode.SHARED_MEMORY, enclave=False)

    def test_enclave_adds_two_crossings(self):
        cost = CostModel()
        plain = cost.invocation_latency(InvocationMode.IPC, enclave=False)
        enclaved = cost.invocation_latency(InvocationMode.IPC, enclave=True)
        assert enclaved == pytest.approx(plain + 2 * cost.enclave_io)

    def test_single_punt_batch_latency_equals_scalar(self):
        """A batch of one non-enclaved punt costs exactly one invocation."""
        cost = CostModel()
        for mode in (InvocationMode.IPC, InvocationMode.SHARED_MEMORY):
            assert cost.batch_invocation_latency(
                mode, enclave_services=0
            ) == pytest.approx(cost.invocation_latency(mode, enclave=False))

    def test_batch_latency_charges_per_enclave_service(self):
        cost = CostModel()
        base = cost.batch_invocation_latency(InvocationMode.IPC, 0)
        assert cost.batch_invocation_latency(InvocationMode.IPC, 3) == (
            pytest.approx(base + 3 * 2 * cost.enclave_io)
        )

    def test_failed_invocation_billing_is_explicit(self):
        assert CostModel().bill_failed_invocations is True
        assert CostModel(bill_failed_invocations=False).bill_failed_invocations is False

    def test_table1_shape(self):
        """The defaults reproduce Table 1's ratios."""
        cost = CostModel()
        no_service = cost.terminus_latency
        null_service = (
            cost.terminus_latency
            + cost.invocation_latency(InvocationMode.IPC, enclave=False)
            + cost.service_packet
        )
        assert null_service / no_service == pytest.approx(33.0 / 12.4, rel=0.15)


class TestEnclave:
    def test_call_passes_through(self):
        enclave = Enclave("svc", b"image-bytes")
        assert enclave.call(lambda a, b: a + b, 2, 3) == 5

    def test_crossings_counted(self):
        enclave = Enclave("svc", b"image")
        enclave.call(lambda x: x, 1)
        assert enclave.stats.crossings == 2  # in + out
        assert enclave.stats.bytes_crossed > 0

    def test_arguments_are_copied_across_boundary(self):
        enclave = Enclave("svc", b"image")
        payload = {"a": [1]}
        received = []
        enclave.call(lambda p: received.append(p) or p, payload)
        assert received[0] == payload
        assert received[0] is not payload

    def test_tpm_measured_on_creation(self):
        tpm = SoftwareTPM()
        before = tpm.pcr(PCR_ENCLAVE)
        Enclave("svc", b"image", tpm=tpm)
        assert tpm.pcr(PCR_ENCLAVE) != before

    def test_quote_requires_tpm(self):
        with pytest.raises(EnclaveError):
            Enclave("svc", b"image").quote(b"nonce")

    def test_quote_with_tpm(self):
        tpm = SoftwareTPM()
        enclave = Enclave("svc", b"image", tpm=tpm)
        quote = enclave.quote(b"nonce-1")
        assert quote.nonce == b"nonce-1"


class TestModuleImage:
    def test_deterministic(self):
        class Fake:
            VERSION = "1.0"

        assert module_image(Fake) == module_image(Fake)

    def test_version_changes_image(self):
        class V1:
            VERSION = "1.0"

        class V2:
            VERSION = "2.0"

        V2.__qualname__ = V1.__qualname__
        V2.__module__ = V1.__module__
        assert module_image(V1) != module_image(V2)

"""Boundary-condition tests across modules (exact edges, not typical paths)."""

import pytest

from repro.core.ilp import ILPError, ILPHeader, TLV
from repro.econ import RateCard, ServiceRate, VolumeTier
from repro.netsim import Simulator
from repro.sched import TokenBucket
from repro.wireguard import MeshReport, TunnelMesh, WireGuardTunnel


class TestILPBoundaries:
    def test_tlv_max_length_ok_one_over_rejected(self):
        header = ILPHeader(service_id=1, connection_id=1)
        header.tlvs[0x90] = b"x" * 0xFFFF
        decoded = ILPHeader.decode(header.encode())
        assert len(decoded.tlvs[0x90]) == 0xFFFF
        header.tlvs[0x90] = b"x" * 0x10000
        with pytest.raises(ILPError):
            header.encode()

    def test_service_and_connection_id_extremes(self):
        header = ILPHeader(service_id=0xFFFF, connection_id=2**64 - 1)
        decoded = ILPHeader.decode(header.encode())
        assert decoded.service_id == 0xFFFF
        assert decoded.connection_id == 2**64 - 1

    def test_empty_tlv_value_roundtrips(self):
        header = ILPHeader(service_id=1, connection_id=1)
        header.tlvs[TLV.SERVICE_OPTS] = b""
        decoded = ILPHeader.decode(header.encode())
        assert decoded.tlvs[TLV.SERVICE_OPTS] == b""


class TestRateBoundaries:
    def _card(self):
        card = RateCard("x")
        card.set_rate(
            ServiceRate(
                service_id=1,
                base_monthly=0.0,
                tiers=[VolumeTier(0.0, 1.0), VolumeTier(100.0, 0.5)],
            )
        )
        card.publish()
        return card

    def test_price_exactly_at_tier_boundary(self):
        card = self._card()
        # 100 GB: entirely in tier 1 (the second tier starts above 100).
        assert card.price(1, "r", 100.0) == pytest.approx(100.0)
        # One GB past the boundary is billed at the marginal rate.
        assert card.price(1, "r", 101.0) == pytest.approx(100.5)

    def test_fractional_volumes(self):
        card = self._card()
        assert card.price(1, "r", 0.25) == pytest.approx(0.25)


class TestTokenBucketBoundaries:
    def test_exact_burst_consumable(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=100)
        assert bucket.try_consume(100, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_time_never_flows_backwards(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=100)
        bucket.try_consume(100, now=10.0)
        # An out-of-order (earlier) timestamp must not mint tokens.
        assert not bucket.try_consume(50, now=5.0)


class TestWireGuardBoundaries:
    def test_zero_duration_report(self):
        report = MeshReport(
            tunnels=1,
            virtual_duration=0.0,
            cpu_seconds=0.0,
            control_bytes=0,
            rekeys=0,
            keepalives=0,
        )
        assert report.bandwidth_mbps == 0.0
        assert report.core_equivalents == 0.0

    def test_advance_to_same_time_is_noop(self):
        mesh = TunnelMesh("n", keepalives_enabled=False)
        mesh.add_peers(3)
        mesh.advance(until=100.0)
        report = mesh.advance(until=100.0)
        assert report.rekeys == 0
        assert report.control_bytes == 0

    def test_transport_counts_bytes(self):
        tunnel = WireGuardTunnel("a", "b")
        tunnel.handshake(0.0)
        tunnel.encrypt(b"q" * 100)
        assert tunnel.stats.data_packets == 1
        assert tunnel.stats.data_bytes > 100


class TestSimulatorBoundaries:
    def test_zero_delay_event_runs_after_current(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))
            order.append("still-first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "still-first", "nested"]

    def test_run_until_exact_event_time_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run(until=5.0)
        assert fired == [1]

"""Tests for null, IP-delivery, and the caching bundle."""

import pytest

from repro import WellKnownService
from repro.core.ilp import TLV
from repro.services.caching import (
    CacheStore,
    CachingBundleService,
    make_response,
    parse_request,
    parse_response,
)


def hosts_on(net, *sns):
    return [net.add_host(sn, name=f"h{i}") for i, sn in enumerate(sns)]


def w_sns(net):
    dom = net.edomains["west"]
    return [dom.sns[a] for a in dom.sn_addresses()]


def e_sns(net):
    dom = net.edomains["east"]
    return [dom.sns[a] for a in dom.sn_addresses()]


class TestIPDelivery:
    def test_same_sn_delivery(self, two_edomain_net):
        net = two_edomain_net
        sn = w_sns(net)[0]
        a, b = hosts_on(net, sn, sn)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"hi")
        net.run(1.0)
        assert [p.data for _, p in b.delivered] == [b"hi"]

    def test_cross_edomain_delivery(self, two_edomain_net):
        net = two_edomain_net
        a, b = hosts_on(net, w_sns(net)[1], e_sns(net)[1])
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        for i in range(3):
            a.send(conn, f"m{i}".encode())
        net.run(1.0)
        assert sorted(p.data for _, p in b.delivered) == [b"m0", b"m1", b"m2"]

    def test_dest_sn_resolved_from_lookup(self, two_edomain_net):
        """The sender names only the destination host; DEST_SN comes from
        the lookup service (§3.2 name services)."""
        net = two_edomain_net
        a, b = hosts_on(net, w_sns(net)[0], e_sns(net)[0])
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
        assert conn.dest_sn is None
        a.send(conn, b"x")
        net.run(1.0)
        assert len(b.delivered) == 1

    def test_steady_state_rides_fast_path(self, two_edomain_net):
        net = two_edomain_net
        sn = w_sns(net)[0]
        a, b = hosts_on(net, sn, sn)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        for i in range(10):
            a.send(conn, b"x")
        net.run(1.0)
        assert sn.terminus.stats.punts == 1
        assert sn.terminus.stats.fast_path == 9

    def test_close_invalidates_cache(self, two_edomain_net):
        net = two_edomain_net
        sn = w_sns(net)[0]
        a, b = hosts_on(net, sn, sn)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
        a.send(conn, b"x")
        net.run(1.0)
        assert len(sn.cache) == 1
        a.close(conn)
        net.run(1.0)
        assert len(sn.cache) == 0

    def test_unroutable_dest_dropped(self, two_edomain_net):
        net = two_edomain_net
        sn = w_sns(net)[0]
        (a,) = hosts_on(net, sn)
        conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr="9.9.9.9")
        a.send(conn, b"x")
        net.run(1.0)
        assert sn.terminus.stats.drops_by_service == 1


class TestCacheStore:
    def test_ttl_expiry(self):
        store = CacheStore(default_ttl=10.0)
        store.put("u", b"body", now=0.0)
        assert store.get("u", now=5.0) == b"body"
        assert store.get("u", now=11.0) is None

    def test_lru_eviction(self):
        store = CacheStore(capacity=2)
        store.put("a", b"1", now=0.0)
        store.put("b", b"2", now=0.0)
        store.get("a", now=0.1)
        store.put("c", b"3", now=0.2)
        assert store.get("b", now=0.3) is None
        assert store.get("a", now=0.3) == b"1"

    def test_hit_rate(self):
        store = CacheStore()
        store.put("u", b"x", now=0.0)
        store.get("u", now=0.0)
        store.get("v", now=0.0)
        assert store.hit_rate == 0.5

    def test_protocol_parsers(self):
        assert parse_request(b"GET /a/b") == "/a/b"
        assert parse_request(b"PUT /a") is None
        url, body = parse_response(make_response("/a", b"payload"))
        assert (url, body) == ("/a", b"payload")
        assert parse_response(b"junk") is None


class TestCachingBundle:
    def _world(self, net):
        client_sn = w_sns(net)[1]
        origin_sn = e_sns(net)[1]
        client = net.add_host(client_sn, name="client")
        origin = net.add_host(origin_sn, name="origin")

        # The origin host answers GETs.
        def serve(conn_id, header, payload):
            url = parse_request(payload.data)
            if url is None:
                return
            requester = header.get_str(TLV.SRC_HOST)
            conn = origin.connect(
                WellKnownService.CACHING_BUNDLE,
                dest_addr=requester,
                allow_direct=False,
            )
            origin.adopt_connection(conn, conn_id)
            origin.send(conn, make_response(url, b"ORIGIN-BODY"), first=False)

        origin.on_service_data(WellKnownService.CACHING_BUNDLE, serve)
        return client, origin, client_sn, origin_sn

    def _get(self, net, client, origin, url=b"GET /video/1"):
        conn = client.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=origin.address,
            allow_direct=False,
        )
        client.send(conn, url)
        net.run(1.0)

    def test_miss_fetches_origin_then_hit_serves_edge(self, two_edomain_net):
        net = two_edomain_net
        client, origin, client_sn, _ = self._world(net)
        module = client_sn.env.service(WellKnownService.CACHING_BUNDLE)

        self._get(net, client, origin)
        assert module.origin_fetches == 1
        first = [p.data for _, p in client.delivered if p.data.startswith(b"DATA")]
        assert first and b"ORIGIN-BODY" in first[0]

        # Second client on the same SN: served from the edge cache.
        client2 = net.add_host(client_sn, name="client2")
        self._get(net, client2, origin)
        assert module.origin_fetches == 1  # unchanged: cache hit
        assert module.cache.hits == 1
        got = [p.data for _, p in client2.delivered if p.data.startswith(b"DATA")]
        assert got and b"ORIGIN-BODY" in got[0]

    def test_no_cache_option_bypasses(self, two_edomain_net):
        net = two_edomain_net
        client, origin, client_sn, _ = self._world(net)
        module = client_sn.env.service(WellKnownService.CACHING_BUNDLE)
        for _ in range(2):
            conn = client.connect(
                WellKnownService.CACHING_BUNDLE,
                dest_addr=origin.address,
                tlvs={TLV.BUNDLE: b"no-cache"},
                allow_direct=False,
            )
            client.send(conn, b"GET /private")
            net.run(1.0)
        assert module.origin_fetches == 2
        assert len(module.cache) == 0

    def test_transcode_option_applies(self, two_edomain_net):
        net = two_edomain_net
        client, origin, client_sn, _ = self._world(net)
        conn = client.connect(
            WellKnownService.CACHING_BUNDLE,
            dest_addr=origin.address,
            tlvs={TLV.BUNDLE: b"transcode=480p"},
            allow_direct=False,
        )
        client.send(conn, b"GET /video/hd")
        net.run(1.0)
        responses = [p.data for _, p in client.delivered if p.data.startswith(b"DATA")]
        assert responses
        _, body = parse_response(responses[0])
        from repro.libs.media import MediaLibrary

        profile, original, encoded = MediaLibrary.describe(body)
        assert profile == "480p"
        assert encoded < original

    def test_cached_body_expires(self, two_edomain_net):
        net = two_edomain_net
        client, origin, client_sn, _ = self._world(net)
        module = client_sn.env.service(WellKnownService.CACHING_BUNDLE)
        module.cache.default_ttl = 0.5
        self._get(net, client, origin)
        net.run(2.0)  # let the entry age out
        client2 = net.add_host(client_sn, name="client2")
        self._get(net, client2, origin)
        assert module.origin_fetches == 2

"""Tests for the whole-program symbol table and call graph.

The interprocedural rules are only as good as the graph under them, so
the resolution machinery gets its own suite: module naming, symbol
indexing, method-call edges through annotated receivers, dataclass-field
and ``self.x = ...`` type inference, callback-registration edges
(including ``Timer``/``PeriodicTask`` constructors, ``watch_prefix`` on
untyped receivers, ``set_transmit`` lambdas, and nested closures), and
the soundness contract that an un-inferable receiver produces *no* edge
rather than a guessed one.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import ModuleContext, build_program_for_paths
from repro.analysis.graph import build_program, module_name_for


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def _program(tmp_path: Path, **modules: str):
    contexts = []
    for name, body in modules.items():
        path = _write(tmp_path, f"{name}.py", body)
        contexts.append(
            ModuleContext(path, f"{name}.py", path.read_text(encoding="utf-8"))
        )
    return build_program(contexts)


def _edges(program, qualname: str) -> set[str]:
    info = program.functions[qualname]
    return {edge.target for edge in info.calls}


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/core/ilp.py") == "repro.core.ilp"

    def test_package_init_names_package(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_plain_relative_path(self):
        assert module_name_for("tests/test_ilp_packet.py") == "tests.test_ilp_packet"

    def test_absolute_path_falls_back_to_stem(self):
        assert module_name_for("/tmp/anywhere/mod.py") == "mod"


class TestSymbolTable:
    def test_functions_classes_and_methods_indexed(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            def helper():
                pass

            class Box:
                def get(self):
                    return 1
            """,
        )
        assert "mod.helper" in program.functions
        assert "mod.Box" in program.classes
        assert program.classes["mod.Box"].methods["get"] == "mod.Box.get"

    def test_nested_def_qualname(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            def outer():
                def inner():
                    pass
                inner()
            """,
        )
        assert "mod.outer.<locals>.inner" in program.functions
        assert _edges(program, "mod.outer") == {"mod.outer.<locals>.inner"}

    def test_dataclass_fields_recorded(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            from dataclasses import dataclass

            @dataclass
            class FooStats:
                hits: int = 0
                notes: list = None
            """,
        )
        cls = program.classes["mod.FooStats"]
        assert cls.is_dataclass
        assert set(cls.fields) == {"hits", "notes"}
        assert cls.fields["hits"][0] == "int"


class TestMethodEdges:
    def test_annotated_parameter_receiver(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Cache:
                def get(self):
                    return None

            def probe(cache: Cache):
                return cache.get()
            """,
        )
        assert _edges(program, "mod.probe") == {"mod.Cache.get"}

    def test_cross_module_annotated_receiver(self, tmp_path):
        program = _program(
            tmp_path,
            store="""
            class Store:
                def lookup(self, key):
                    return None
            """,
            user="""
            from store import Store

            def fetch(store: Store, key):
                return store.lookup(key)
            """,
        )
        assert _edges(program, "user.fetch") == {"store.Store.lookup"}

    def test_self_attribute_from_annotated_param(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Clock:
                def now(self):
                    return 0.0

            class Node:
                def __init__(self, clock: Clock):
                    self.clock = clock

                def stamp(self):
                    return self.clock.now()
            """,
        )
        assert _edges(program, "mod.Node.stamp") == {"mod.Clock.now"}

    def test_self_attribute_from_constructor_assignment(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Queue:
                def push(self, item):
                    pass

            class Node:
                def __init__(self):
                    self.queue = Queue()

                def enqueue(self, item):
                    self.queue.push(item)
            """,
        )
        assert "mod.Queue.push" in _edges(program, "mod.Node.enqueue")

    def test_attribute_chain_through_typed_fields(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Sim:
                def now(self):
                    return 0.0

            class Net:
                sim: Sim

            class Node:
                net: Net

                def stamp(self):
                    return self.net.sim.now()
            """,
        )
        assert _edges(program, "mod.Node.stamp") == {"mod.Sim.now"}

    def test_constructor_call_edges_to_init(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Widget:
                def __init__(self):
                    self.n = 0

            def make():
                return Widget()
            """,
        )
        assert _edges(program, "mod.make") == {"mod.Widget.__init__"}

    def test_inherited_method_resolves_through_base(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Base:
                def run(self):
                    pass

            class Child(Base):
                pass

            def go(c: Child):
                c.run()
            """,
        )
        assert _edges(program, "mod.go") == {"mod.Base.run"}

    def test_untyped_receiver_produces_no_edge(self, tmp_path):
        # Soundness: never guess an edge from an un-inferable receiver.
        program = _program(
            tmp_path,
            mod="""
            class Cache:
                def get(self):
                    return None

            def probe(cache):
                return cache.get()
            """,
        )
        assert _edges(program, "mod.probe") == set()

    def test_external_call_recorded_with_dotted_name(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            import zlib

            def digest(data):
                return zlib.crc32(data)
            """,
        )
        info = program.functions["mod.digest"]
        assert [c.dotted for c in info.external_calls] == ["zlib.crc32"]


class TestRegistrations:
    def test_typed_engine_schedule(self, tmp_path):
        program = _program(
            tmp_path,
            engine="""
            class Engine:
                def schedule(self, delay, callback):
                    pass
            """,
            worker="""
            from engine import Engine

            class Worker:
                def start(self, eng: Engine):
                    eng.schedule(1.0, self.tick)

                def tick(self):
                    pass
            """,
        )
        regs = {(r.api, r.callback) for r in program.registrations}
        assert ("schedule", "worker.Worker.tick") in regs
        # The registration is also a call edge into the engine.
        assert "engine.Engine.schedule" in _edges(program, "worker.Worker.start")

    def test_timer_and_periodic_task_constructors(self, tmp_path):
        program = _program(
            tmp_path,
            timers="""
            class Timer:
                def __init__(self, delay, callback):
                    pass

            class PeriodicTask:
                def __init__(self, engine, period, callback):
                    pass
            """,
            user="""
            from timers import PeriodicTask, Timer

            class Daemon:
                def arm(self, engine):
                    Timer(0.5, self.fire)
                    PeriodicTask(engine, 1.0, self.poll)

                def fire(self):
                    pass

                def poll(self):
                    pass
            """,
        )
        regs = {(r.api, r.callback) for r in program.registrations}
        assert ("Timer", "user.Daemon.fire") in regs
        assert ("PeriodicTask", "user.Daemon.poll") in regs

    def test_watch_prefix_on_untyped_receiver_over_approximates(self, tmp_path):
        # The receiver's type is unknown, but watch_prefix is
        # registration-shaped: the root set must include the callback.
        program = _program(
            tmp_path,
            mod="""
            class Agent:
                def attach(self, store):
                    store.watch_prefix("resilience/", self.on_update)

                def on_update(self, key, op, value):
                    pass
            """,
        )
        regs = {(r.api, r.callback) for r in program.registrations}
        assert ("watch_prefix", "mod.Agent.on_update") in regs

    def test_set_transmit_lambda(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Bridge:
                def wire(self, pipe):
                    pipe.set_transmit(lambda data: self.push(data))

                def push(self, data):
                    pass
            """,
        )
        lambdas = [
            r.callback
            for r in program.registrations
            if r.api == "set_transmit" and r.callback is not None
        ]
        assert len(lambdas) == 1
        assert "<lambda:" in lambdas[0]
        # The lambda body's calls were graphed under the lambda node.
        assert _edges(program, lambdas[0]) == {"mod.Bridge.push"}

    def test_nested_closure_callback(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Engine:
                def schedule(self, delay, callback):
                    pass

            class Monitor:
                def start(self, eng: Engine):
                    def tick():
                        self.poll()
                    eng.schedule(1.0, tick)

                def poll(self):
                    pass
            """,
        )
        regs = {(r.api, r.callback) for r in program.registrations}
        assert ("schedule", "mod.Monitor.start.<locals>.tick") in regs
        assert _edges(program, "mod.Monitor.start.<locals>.tick") == {
            "mod.Monitor.poll"
        }

    def test_callback_by_keyword_argument(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Engine:
                def post(self, delay, callback):
                    pass

            class Worker:
                def start(self, eng: Engine):
                    eng.post(1.0, callback=self.tick)

                def tick(self):
                    pass
            """,
        )
        regs = {(r.api, r.callback) for r in program.registrations}
        assert ("post", "mod.Worker.tick") in regs

    def test_opaque_callback_recorded_as_unresolved(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Relay:
                def attach(self, store, handler):
                    store.watch("key", handler)
            """,
        )
        regs = [(r.api, r.callback) for r in program.registrations]
        assert ("watch", None) in regs


class TestGraphExport:
    def test_json_dict_shape(self, tmp_path):
        program = _program(
            tmp_path,
            mod="""
            class Engine:
                def schedule(self, delay, callback):
                    pass

            def boot(eng: Engine):
                eng.schedule(0.0, boot)
            """,
        )
        payload = program.to_json_dict()
        assert "mod.boot" in payload["functions"]
        assert any(e["to"] == "mod.Engine.schedule" for e in payload["edges"])
        assert any(
            r["api"] == "schedule" and r["callback"] == "mod.boot"
            for r in payload["registrations"]
        )
        # Deterministic: a second export is byte-identical.
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            program.to_json_dict(), sort_keys=True
        )

    def test_build_program_for_paths(self, tmp_path):
        _write(tmp_path, "pkg/a.py", "def f():\n    pass\n")
        _write(tmp_path, "pkg/broken.py", "def oops(:\n")
        program = build_program_for_paths([tmp_path], root=tmp_path)
        # The broken file is skipped, the good one indexed.
        assert any(q.endswith("a.f") for q in program.functions)

    def test_cli_graph_json_stdout(self, tmp_path, capsys):
        _write(
            tmp_path,
            "mod.py",
            """
            def f():
                g()

            def g():
                pass
            """,
        )
        assert analysis_main(["--graph-json", "-", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(e["to"] == "mod.g" for e in payload["edges"])

    def test_cli_graph_json_file(self, tmp_path):
        _write(tmp_path, "mod.py", "def f():\n    pass\n")
        out = tmp_path / "graph.json"
        assert analysis_main(["--graph-json", str(out), str(tmp_path)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert "mod.f" in payload["functions"]

"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import PeriodicTask, SimulationError, Simulator, Timer


class TestSchedule:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunControls:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        processed = sim.run(max_events=10)
        assert processed == 10

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i * 0.1, lambda: None)
        assert sim.run() == 7
        assert sim.events_processed == 7

    def test_cancelled_event_not_run(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.1, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.armed


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        task.start()
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_halts(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        task.start()
        sim.run(until=2.5)
        task.stop()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)

    def test_initial_delay(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 5.0, lambda: fired.append(sim.now))
        task.start(initial_delay=1.0)
        sim.run(until=7.0)
        assert fired == [1.0, 6.0]


class TestPendingAndCompaction:
    def test_pending_counts_only_live(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(10)]
        assert sim.pending == 10
        assert sim.pending_raw == 10
        handles[3].cancel()
        handles[7].cancel()
        assert sim.pending == 8
        assert sim.pending_raw == 10  # lazily-cancelled entries not yet reaped

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        assert sim.pending == 0
        assert sim.pending_raw == 1

    def test_run_reaps_cancelled_entries(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(2.0, fired.append, "keep")
        sim.schedule(1.0, fired.append, "dead").cancel()
        assert (sim.pending, sim.pending_raw) == (1, 2)
        sim.run()
        assert fired == ["keep"]
        assert (sim.pending, sim.pending_raw) == (0, 0)
        assert not keep.cancelled  # fired, not cancelled

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(20)]
        for handle in handles:
            handle.cancel()
        assert sim.pending == 0
        assert sim.pending_raw == 20  # below the floor: left for run() to reap
        assert sim.run() == 0
        assert sim.pending_raw == 0

    def test_compaction_bounds_raw_queue(self):
        # A workload that arms and cancels events continuously must not
        # grow the heap without bound: once dead entries pass the floor
        # and outnumber live ones, the heap compacts.
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(1000)]
        for handle in handles[:900]:
            handle.cancel()
        assert sim.pending == 100
        assert sim.pending_raw < 1000
        assert sim.run() == 100

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        expected = []
        for i in range(300):
            handle = sim.schedule(float(i), fired.append, i)
            if i % 3:
                handle.cancel()  # crosses the compaction threshold mid-loop
            else:
                expected.append(i)
        sim.run()
        assert fired == expected


class TestPost:
    def test_post_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.post(2.0, fired.append, "late")
        sim.post(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_post_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.post_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_post_interleaves_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.post(1.0, fired.append, "b")  # tie: insertion order wins
        sim.schedule(0.5, fired.append, "c")
        sim.run()
        assert fired == ["c", "a", "b"]

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().post(-1.0, lambda: None)

    def test_post_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at(0.5, lambda: None)

"""Unit tests for the AS-level underlay and hijack modeling."""

import pytest

from repro.netsim.ipnet import ASGraph, IPNetError, build_random_as_graph


def line_graph(n: int) -> ASGraph:
    graph = ASGraph()
    for i in range(n):
        graph.add_as(i)
    for i in range(n - 1):
        graph.peer(i, i + 1)
    return graph


class TestRouting:
    def test_origin_resolves_locally(self):
        graph = line_graph(2)
        graph.originate(0, "10.0.0.0/24")
        graph.converge()
        assert graph.resolve_origin(0, "10.0.0.5") == 0

    def test_learned_route_resolves(self):
        graph = line_graph(4)
        graph.originate(0, "10.0.0.0/24")
        graph.converge()
        assert graph.resolve_origin(3, "10.0.0.5") == 0

    def test_as_path_lengths(self):
        graph = line_graph(4)
        graph.originate(0, "10.0.0.0/24")
        graph.converge()
        import ipaddress

        route = graph.ases[3].rib[ipaddress.IPv4Network("10.0.0.0/24")]
        assert route.length == 3
        assert route.origin == 0
        assert route.next_hop == 2

    def test_unroutable_returns_none(self):
        graph = line_graph(2)
        graph.converge()
        assert graph.resolve_origin(1, "99.99.99.99") is None

    def test_longest_prefix_match(self):
        graph = line_graph(3)
        graph.originate(0, "10.0.0.0/8")
        graph.originate(2, "10.0.1.0/24")
        graph.converge()
        # AS1 sees both; the /24 must win for its addresses.
        assert graph.resolve_origin(1, "10.0.1.7") == 2
        assert graph.resolve_origin(1, "10.9.9.9") == 0

    def test_withdraw(self):
        graph = line_graph(3)
        graph.originate(0, "10.0.0.0/24")
        graph.converge()
        graph.withdraw(0, "10.0.0.0/24")
        graph.converge()
        assert graph.resolve_origin(2, "10.0.0.5") is None

    def test_peer_requires_existing_ases(self):
        graph = ASGraph()
        graph.add_as(1)
        with pytest.raises(IPNetError):
            graph.peer(1, 2)

    def test_duplicate_as_rejected(self):
        graph = ASGraph()
        graph.add_as(1)
        with pytest.raises(IPNetError):
            graph.add_as(1)


class TestHijack:
    def test_hijacker_captures_closer_ases(self):
        # 0 -- 1 -- 2 -- 3 -- 4 ; victim at 0, hijacker at 4
        graph = line_graph(5)
        graph.originate(0, "10.0.0.0/24")
        graph.originate(4, "10.0.0.0/24")  # the hijack
        graph.converge()
        # AS3 is closer to the hijacker; AS1 closer to the victim.
        assert graph.resolve_origin(3, "10.0.0.5") == 4
        assert graph.resolve_origin(1, "10.0.0.5") == 0

    def test_capture_fraction(self):
        graph = line_graph(5)
        graph.originate(0, "10.0.0.0/24")
        graph.originate(4, "10.0.0.0/24")
        graph.converge()
        fraction = graph.capture_fraction(0, 4, "10.0.0.0/24", range(5))
        # Observers 1,2,3: AS3 captured, AS1 safe, AS2 tie -> lower ASN (0) wins.
        assert fraction == pytest.approx(1 / 3)

    def test_no_hijack_zero_capture(self):
        graph = line_graph(5)
        graph.originate(0, "10.0.0.0/24")
        graph.converge()
        assert graph.capture_fraction(0, 4, "10.0.0.0/24", range(5)) == 0.0

    def test_random_graph_builds_connected(self):
        graph = build_random_as_graph(30, degree=2, seed=7)
        import networkx as nx

        assert nx.is_connected(graph.graph)
        graph.originate(0, "1.2.3.0/24")
        graph.converge()
        assert all(
            graph.resolve_origin(asn, "1.2.3.4") == 0 for asn in range(1, 30)
        )

    def test_random_graph_too_small(self):
        with pytest.raises(IPNetError):
            build_random_as_graph(3, degree=3)

"""InterEdge host support (§3.1 "Host support", §3.2 invocation modes).

The host component implements:

* ILP: sealing/opening headers with the first-hop SN's PSP context;
* the **extended host network API**: applications open connections naming a
  desired InterEdge service (exactly one — no ad-hoc composition, §3.2) and
  optional settings carried as ILP TLVs;
* **out-of-band invocation**: control messages to the first-hop SN that
  apply a service to portions of the host's traffic (e.g. last-hop QoS);
* client-side logic for services that need it (pub/sub, anycast, multicast
  joins, relay wrapping) via per-service *host agents*;
* **direct connectivity**: two InterEdge hosts on the same subnet exchange
  ILP packets directly, SNs uninvolved (§3.2).
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..netsim.engine import Simulator
from ..netsim.link import Link
from ..netsim.node import NetNode
from .crypto import KeyPair
from .ilp import Flags, ILPHeader, TLV, new_connection_id
from .overload import RetryStats, retry_call
from .packet import ILPPacket, L3Header, Payload, RawIPPacket, make_payload
from .psp import PSPError, PeerKeyStore, pairwise_secret


class HostError(Exception):
    """Raised for invalid host API usage."""


@dataclass
class HostConnection:
    """One application connection using exactly one InterEdge service."""

    connection_id: int
    service_id: int
    dest_addr: Optional[str]
    dest_sn: Optional[str]
    via_sn: str
    tlvs: dict[int, bytes] = field(default_factory=dict)
    packets_sent: int = 0
    packets_received: int = 0
    closed: bool = False
    direct_peer: Optional[str] = None  # set when same-subnet direct path used


#: Application receive callback: (connection_id, header, payload) -> None
DataHandler = Callable[[int, ILPHeader, Payload], None]


class Host(NetNode):
    """An InterEdge-aware endpoint."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address: str,
        subnet: str = "0.0.0.0/0",
        keypair: Optional[KeyPair] = None,
    ) -> None:
        super().__init__(sim, name)
        self.address = address
        self.subnet = ipaddress.IPv4Network(subnet)
        self.keypair = keypair or KeyPair.generate()
        self.keystore = PeerKeyStore()
        self._first_hops: list[Any] = []  # ServiceNode references
        self._addr_to_node: dict[str, NetNode] = {}
        self._connections: dict[int, HostConnection] = {}
        self._service_handlers: dict[int, DataHandler] = {}
        self._control_handlers: dict[int, DataHandler] = {}
        self.default_handler: Optional[DataHandler] = None
        self.delivered: list[tuple[ILPHeader, Payload]] = []
        self.undeliverable = 0
        #: Backoff bookkeeping for retried first-hop lookups.
        self.retry_stats = RetryStats()

    # -- association ---------------------------------------------------------
    def register_first_hop(self, sn: Any) -> None:
        """Called by :meth:`ServiceNode.associate_host`."""
        if sn not in self._first_hops:
            self._first_hops.append(sn)
        self._addr_to_node[sn.address] = sn

    @property
    def first_hop_addresses(self) -> list[str]:
        return [sn.address for sn in self._first_hops]

    def reassociate(self, new_sn: Any, drop_old: bool = False) -> None:
        """Move this host's primary association to ``new_sn`` (§3.3
        host-driven recovery / mobility handoff).

        Make-before-break: the new association is created (with a link if
        needed) and promoted to primary; old associations are kept unless
        ``drop_old`` — in-flight connections through them keep working.
        """
        from ..netsim.link import Link

        if not self.has_link_to(new_sn):
            Link(self.sim, self, new_sn, latency=0.001)
        if new_sn not in self._first_hops:
            new_sn.associate_host(self)
        if drop_old:
            for old in list(self._first_hops):
                if old is not new_sn:
                    self._first_hops.remove(old)
        self._first_hops.sort(key=lambda sn: sn is not new_sn)

    def first_hop_for(self, service_id: int) -> Any:
        """Pick the first-hop SN for a service.

        §3.1: the choice depends on who pays for the service. We model this
        as: prefer an SN that actually deploys the service, else the first
        associated SN (pass-through SNs deploy nothing but forward onward).
        One bounded retry (host-driven recovery, §3.3): a reassociation in
        flight may land between the attempts.
        """
        return retry_call(
            lambda: self._first_hop_for(service_id),
            attempts=2,
            retry_on=(HostError,),
            stats=self.retry_stats,
        )

    def _first_hop_for(self, service_id: int) -> Any:
        if not self._first_hops:
            raise HostError(f"host {self.name} has no first-hop SN")
        for sn in self._first_hops:
            if sn.pass_through is not None or sn.env.has_service(service_id):
                return sn
        return self._first_hops[0]

    # -- extended network API (§3.2 explicit invocation) -------------------
    def connect(
        self,
        service_id: int,
        dest_addr: Optional[str] = None,
        dest_sn: Optional[str] = None,
        tlvs: Optional[dict[int, bytes]] = None,
        allow_direct: bool = True,
    ) -> HostConnection:
        """Open a connection that invokes a single InterEdge service."""
        via = self.first_hop_for(service_id)
        conn = HostConnection(
            connection_id=new_connection_id(),
            service_id=service_id,
            dest_addr=dest_addr,
            dest_sn=dest_sn,
            via_sn=via.address,
            tlvs=dict(tlvs or {}),
        )
        if allow_direct and dest_addr is not None:
            direct = self._direct_candidate(dest_addr)
            if direct is not None:
                conn.direct_peer = dest_addr
                self._ensure_direct_association(direct)
        self._connections[conn.connection_id] = conn
        return conn

    def adopt_connection(self, conn: HostConnection, connection_id: int) -> None:
        """Re-key a connection under a caller-chosen ID and register it.

        Relay-style services (oDNS, private relay) answer an inbound
        connection by opening a fresh outbound one that must carry the
        *original* connection ID so the far end can correlate the reply.
        """
        self._connections.pop(conn.connection_id, None)
        conn.connection_id = connection_id
        self._connections[connection_id] = conn

    def connection(self, connection_id: int) -> Optional[HostConnection]:
        """The registered connection with this ID, if any."""
        return self._connections.get(connection_id)

    def prefer_first_hop(self, address: str) -> None:
        """Promote the associated SN with ``address`` to primary first hop.

        Used by the load balancer after migrating a host association: new
        connections pick the promoted SN, existing ones keep working.
        """
        self._first_hops.sort(key=lambda sn: sn.address != address)

    def _direct_candidate(self, dest_addr: str) -> Optional[NetNode]:
        """Same-subnet neighbor reachable without an SN (§3.2)."""
        try:
            if ipaddress.IPv4Address(dest_addr) not in self.subnet:
                return None
        except ValueError:
            return None
        for neighbor in self.neighbors():
            if getattr(neighbor, "address", None) == dest_addr and isinstance(
                neighbor, Host
            ):
                return neighbor
        return None

    def _ensure_direct_association(self, other: "Host") -> None:
        if not self.keystore.has(other.address):
            secret = pairwise_secret(self.address, other.address)
            self.keystore.establish(other.address, secret)
            other.keystore.establish(self.address, secret)
        self._addr_to_node[other.address] = other
        other._addr_to_node[self.address] = self

    def send(
        self,
        conn: HostConnection,
        data: bytes,
        extra_tlvs: Optional[dict[int, bytes]] = None,
        first: Optional[bool] = None,
        payload: Optional[Payload] = None,
        extra_flags: int = 0,
    ) -> bool:
        """Send application data on a connection.

        ``extra_flags`` ORs additional ILP flags into the header (e.g.
        ``Flags.MORE_HEADER`` when connection-setup info spans packets,
        §B.2).
        """
        if conn.closed:
            raise HostError("connection is closed")
        header = self._build_header(conn, extra_tlvs, first)
        header.flags |= extra_flags
        body = payload if payload is not None else make_payload(data)
        conn.packets_sent += 1
        target = conn.direct_peer or conn.via_sn
        return self._seal_and_send(target, header, body)

    def _build_header(
        self,
        conn: HostConnection,
        extra_tlvs: Optional[dict[int, bytes]],
        first: Optional[bool],
    ) -> ILPHeader:
        flags = Flags.NONE
        is_first = conn.packets_sent == 0 if first is None else first
        if is_first:
            flags |= Flags.FIRST
        header = ILPHeader(
            service_id=conn.service_id,
            connection_id=conn.connection_id,
            flags=flags,
            tlvs=dict(conn.tlvs),
        )
        header.set_str(TLV.SRC_HOST, self.address)
        if conn.dest_addr is not None:
            header.set_str(TLV.DEST_ADDR, conn.dest_addr)
        if conn.dest_sn is not None:
            header.set_str(TLV.DEST_SN, conn.dest_sn)
        if extra_tlvs:
            header.tlvs.update(extra_tlvs)
        return header

    def close(self, conn: HostConnection) -> None:
        """Close a connection, telling the service via a LAST-flagged packet."""
        if conn.closed:
            return
        conn.closed = True
        header = ILPHeader(
            service_id=conn.service_id,
            connection_id=conn.connection_id,
            flags=Flags.LAST,
        )
        header.set_str(TLV.SRC_HOST, self.address)
        target = conn.direct_peer or conn.via_sn
        self._seal_and_send(target, header, Payload(l4=None))

    # -- out-of-band invocation (§3.2 second mode) -------------------------
    def send_control(
        self,
        service_id: int,
        tlvs: dict[int, bytes],
        via: Optional[str] = None,
        connection_id: int = 0,
    ) -> bool:
        """Ask the first-hop SN to apply a service out of band."""
        header = ILPHeader(
            service_id=service_id,
            connection_id=connection_id or new_connection_id(),
            flags=Flags.CONTROL,
            tlvs=dict(tlvs),
        )
        header.set_str(TLV.SRC_HOST, self.address)
        target = via or self.first_hop_for(service_id).address
        return self._seal_and_send(target, header, Payload(l4=None))

    # -- receive side ---------------------------------------------------------
    def on_service_data(self, service_id: int, handler: DataHandler) -> None:
        self._service_handlers[service_id] = handler

    def on_service_control(self, service_id: int, handler: DataHandler) -> None:
        self._control_handlers[service_id] = handler

    def handle_frame(self, frame: Any, link: Link) -> None:
        if isinstance(frame, RawIPPacket):
            # Legacy traffic to an InterEdge host still lands (§3.3).
            self.delivered.append(
                (ILPHeader(service_id=0, connection_id=0), frame.payload)
            )
            return
        if not isinstance(frame, ILPPacket):
            return
        peer = frame.l3.src
        if not self.keystore.has(peer):
            self.undeliverable += 1
            return
        try:
            header = ILPHeader.decode(self.keystore.get(peer).open(frame.ilp_wire))
        except PSPError:
            self.undeliverable += 1
            return
        self._deliver(header, frame.payload)

    def _deliver(self, header: ILPHeader, payload: Payload) -> None:
        conn = self._connections.get(header.connection_id)
        if conn is not None:
            conn.packets_received += 1
        self.delivered.append((header, payload))
        if header.is_control:
            handler = self._control_handlers.get(header.service_id)
        else:
            handler = self._service_handlers.get(header.service_id)
        if handler is None:
            handler = self.default_handler
        if handler is not None:
            handler(header.connection_id, header, payload)

    # -- transport ----------------------------------------------------------
    def _seal_and_send(self, peer: str, header: ILPHeader, payload: Payload) -> bool:
        if not self.keystore.has(peer):
            raise HostError(f"no PSP association with {peer}")
        node = self._addr_to_node.get(peer)
        if node is None or not self.has_link_to(node):
            return False
        wire = self.keystore.get(peer).seal(header.encode())
        packet = ILPPacket(
            l3=L3Header(src=self.address, dst=peer),
            ilp_wire=wire,
            payload=payload,
            created_at=self.sim.now,
        )
        return self.send_frame(packet, node)

    def send_raw_ip(self, dest: str, data: bytes, via: Optional[NetNode] = None) -> bool:
        """Send a legacy (non-ILP) packet — backwards-compatibility path."""
        packet = RawIPPacket(
            l3=L3Header(src=self.address, dst=dest, proto=17),
            payload=make_payload(data),
        )
        target = via
        if target is None:
            if not self._first_hops:
                raise HostError("no route for raw IP")
            target = self._first_hops[0]
        return self.send_frame(packet, target)

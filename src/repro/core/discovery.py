"""First-hop SN discovery (§3.1 "Host-SN association").

Hosts find the first-hop SNs of an IESP "using a variety of standard
techniques (e.g., configuration, anycast, lookup, etc.)". All three are
implemented against a per-IESP directory of advertised SNs:

* **configuration**: the operator pins an SN address;
* **anycast**: the directory returns the topologically nearest advertised
  SN (we use link-latency distance, as IP anycast approximates);
* **lookup**: a registry query filtered by IESP and region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..netsim.node import NetNode
from .host import Host
from .service_node import ServiceNode


class DiscoveryError(Exception):
    """Raised when no suitable SN can be found."""


@dataclass
class Advertisement:
    sn: ServiceNode
    iesp: str
    region: str
    load: float = 0.0  # advertised load in [0, 1]; ties broken on this


class DiscoveryDirectory:
    """Advertised first-hop SNs across IESPs."""

    def __init__(self) -> None:
        self._ads: list[Advertisement] = []

    def advertise(
        self, sn: ServiceNode, iesp: str, region: str, load: float = 0.0
    ) -> None:
        self._ads.append(Advertisement(sn=sn, iesp=iesp, region=region, load=load))

    def withdraw(self, sn: ServiceNode) -> None:
        self._ads = [ad for ad in self._ads if ad.sn is not sn]

    def set_load(self, sn: ServiceNode, load: float) -> None:
        for ad in self._ads:
            if ad.sn is sn:
                ad.load = load

    # -- configuration -----------------------------------------------------
    def by_config(self, address: str) -> ServiceNode:
        for ad in self._ads:
            if ad.sn.address == address:
                return ad.sn
        raise DiscoveryError(f"configured SN {address} is not advertised")

    # -- lookup --------------------------------------------------------------
    def by_lookup(
        self, iesp: Optional[str] = None, region: Optional[str] = None
    ) -> list[ServiceNode]:
        result = [
            ad.sn
            for ad in self._ads
            if (iesp is None or ad.iesp == iesp)
            and (region is None or ad.region == region)
        ]
        if not result:
            raise DiscoveryError(
                f"no advertised SN for iesp={iesp!r} region={region!r}"
            )
        return result

    # -- anycast ----------------------------------------------------------
    def by_anycast(
        self, host: Host, iesp: Optional[str] = None
    ) -> ServiceNode:
        """Nearest advertised SN by latency-weighted hop distance."""
        candidates = [
            ad for ad in self._ads if iesp is None or ad.iesp == iesp
        ]
        if not candidates:
            raise DiscoveryError(f"no advertised SN for iesp={iesp!r}")
        graph = _reachability_graph(host, [ad.sn for ad in candidates])
        best: Optional[Advertisement] = None
        best_key: tuple[float, float] = (float("inf"), float("inf"))
        for ad in candidates:
            try:
                dist = nx.shortest_path_length(
                    graph, host.name, ad.sn.name, weight="latency"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            key = (dist, ad.load)
            if key < best_key:
                best_key = key
                best = ad
        if best is None:
            raise DiscoveryError(f"host {host.name} cannot reach any SN")
        return best.sn


def _reachability_graph(host: Host, sns: list[ServiceNode]) -> nx.Graph:
    """BFS outward from the host over links, collecting a latency graph."""
    graph = nx.Graph()
    seen: set[NetNode] = set()
    frontier: list[NetNode] = [host]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        for link in node.links:
            other = link.other(node)
            graph.add_edge(node.name, other.name, latency=link.latency)
            if other not in seen:
                frontier.append(other)
    return graph


def associate_via_anycast(
    host: Host, directory: DiscoveryDirectory, iesp: Optional[str] = None
) -> ServiceNode:
    """Discover the nearest SN and complete the host association."""
    sn = directory.by_anycast(host, iesp=iesp)
    if not host.has_link_to(sn):
        from ..netsim.link import Link

        Link(host.sim, host, sn, latency=0.001)
    sn.associate_host(host)
    return sn

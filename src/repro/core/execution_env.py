"""The common execution environment (WORA runtime) of a service node.

§3.1: all SNs run a common execution environment exposing a few basic
primitives — sending/receiving packets over ILP, reading and updating
configuration, checkpointing state for fault tolerance — plus an extensible
library registry (cryptography, regex matching, media re-encoding). Every
service module is written against exactly this surface, which is what makes
the ecosystem write-once-run-anywhere.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs.recorder import NULL_RECORDER
from .attestation import PCR_SERVICES, SoftwareTPM
from .decision_cache import CacheKey, Decision
from .enclave import Enclave, module_image
from .ilp import ILPHeader
from .packet import Payload
from .service_module import ServiceError, ServiceModule, ServiceTimeout, Verdict

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import FlightRecorder, NullRecorder
    from .service_node import ServiceNode


class ConfigStore:
    """Per-service configuration, standardized alongside semantics (§5).

    Keys are (service_id, customer_scope, name). Standardizing the schema is
    what gives customers portability between IESPs — tests assert that a
    config written for one SN applies unchanged on another IESP's SN.
    """

    def __init__(self) -> None:
        self._data: dict[tuple[int, str, str], Any] = {}
        self._watchers: list[Callable[[int, str, str, Any], None]] = []

    def set(self, service_id: int, scope: str, name: str, value: Any) -> None:
        self._data[(service_id, scope, name)] = value
        for watcher in self._watchers:
            watcher(service_id, scope, name, value)

    def get(self, service_id: int, scope: str, name: str, default: Any = None) -> Any:
        return self._data.get((service_id, scope, name), default)

    def scope_items(self, service_id: int, scope: str) -> dict[str, Any]:
        return {
            name: value
            for (sid, sc, name), value in self._data.items()
            if sid == service_id and sc == scope
        }

    def scopes(self, service_id: int) -> set[str]:
        return {sc for (sid, sc, _name) in self._data if sid == service_id}

    def watch(self, callback: Callable[[int, str, str, Any], None]) -> None:
        self._watchers.append(callback)

    def unwatch(self, callback: Callable[[int, str, str, Any], None]) -> bool:
        """Remove one registration of ``callback``; True if removed."""
        try:
            self._watchers.remove(callback)
        except ValueError:
            return False
        return True

    def export(self) -> dict[tuple[int, str, str], Any]:
        """Snapshot used to port a customer's config to another IESP."""
        return dict(self._data)

    def import_config(self, snapshot: dict[tuple[int, str, str], Any]) -> None:
        for (service_id, scope, name), value in snapshot.items():
            self.set(service_id, scope, name, value)


class OffPathStorage:
    """Off-path persistent KV storage (§3.1 datapath: the slow, durable tier).

    Reads/writes are synchronous here; the simulated-time cost model charges
    them separately from fast-path work.
    """

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self.reads = 0
        self.writes = 0

    def put(self, key: str, value: bytes) -> None:
        self.writes += 1
        self._data[key] = value

    def get(self, key: str) -> Optional[bytes]:
        self.reads += 1
        return self._data.get(key)

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        return [k for k in self._data if k.startswith(prefix)]

    def __len__(self) -> int:
        return len(self._data)


class CheckpointManager:
    """Checkpoint/restore of module state for standby replication (§3.3)."""

    def __init__(self) -> None:
        self._checkpoints: dict[int, dict[str, Any]] = {}

    def save(self, service_id: int, state: dict[str, Any]) -> None:
        self._checkpoints[service_id] = state

    def load(self, service_id: int) -> Optional[dict[str, Any]]:
        return self._checkpoints.get(service_id)

    def transfer_to(self, other: "CheckpointManager") -> int:
        """Ship all checkpoints to a standby node's manager."""
        other._checkpoints.update(self._checkpoints)
        return len(self._checkpoints)


class LibraryRegistry:
    """The extensible library set of the execution environment (§3.1)."""

    def __init__(self) -> None:
        self._libs: dict[str, Any] = {}

    def provide(self, name: str, library: Any) -> None:
        self._libs[name] = library

    def get(self, name: str) -> Any:
        try:
            return self._libs[name]
        except KeyError:
            raise ServiceError(f"execution environment lacks library {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._libs

    def names(self) -> list[str]:
        return sorted(self._libs)


@dataclass
class ServiceContext:
    """The capability handle a module receives at attach time.

    Everything a module may do flows through here; modules never touch the
    node, links, or keystore directly (that is the WORA contract).
    """

    node: "ServiceNode"
    service_id: int
    config: ConfigStore
    storage: OffPathStorage
    libs: LibraryRegistry
    checkpoints: CheckpointManager

    @property
    def node_address(self) -> str:
        return self.node.address

    @property
    def edomain_name(self) -> str:
        return self.node.edomain_name

    def now(self) -> float:
        return self.node.sim.now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any):
        return self.node.sim.schedule(delay, callback, *args)

    def send_ilp(self, peer: str, header: ILPHeader, payload: Payload) -> bool:
        """Originate an ILP packet from this SN (control or data)."""
        return self.node.emit(peer, header, payload)

    def install_decision(self, key: CacheKey, decision: Decision) -> None:
        self.node.terminus.cache.install(key, decision, now=self.now())

    def invalidate_connection(self, connection_id: int) -> int:
        return self.node.terminus.cache.invalidate_connection(
            self.service_id, connection_id
        )

    def decision_recently_used(self, key: CacheKey, window: float) -> bool:
        return self.node.terminus.cache.recently_used(key, self.now(), window)

    def peer_for_edomain(self, edomain: str) -> Optional[str]:
        """Border SN (in this edomain) that reaches the given edomain."""
        return self.node.border_peer_for(edomain)

    def peer_for_host(self, host_address: str) -> Optional[str]:
        """Next-hop peer toward a host, if this node knows one."""
        return self.node.route_to_host(host_address)

    def next_hop_for_sn(self, dest_sn: str) -> Optional[str]:
        """Next ILP peer toward a destination SN (§3.2 forwarding)."""
        return self.node.next_hop_for_sn(dest_sn)

    def control_plane(self) -> Any:
        """This edomain's core store client (§6 membership protocols)."""
        return self.node.core_client

    def offload_engine(self) -> Any:
        """The terminus offload programs (Appendix B.1) — services install
        match+action rules and meters here, within their quota."""
        return self.node.terminus.offload


@dataclass
class _LoadedService:
    module: ServiceModule
    enclave: Optional[Enclave]


@dataclass(slots=True)
class ServiceFault:
    """Injected misbehavior of one loaded service (netsim fault surface).

    ``slowdown`` adds virtual seconds to every invocation; ``hung`` makes
    the service never answer. Both are compared against the punt's
    slow-path deadline by :meth:`ExecutionEnvironment.dispatch` /
    :meth:`~ExecutionEnvironment.dispatch_batch`.
    """

    slowdown: float = 0.0
    hung: bool = False


@dataclass(frozen=True, slots=True)
class PuntTimeout:
    """Marker verdict slot: the punt exceeded its slow-path deadline.

    Returned (not raised) by :meth:`ExecutionEnvironment.dispatch_batch`
    so one timed-out punt does not poison its batch. Instances survive the
    IPC pickle round trip, so callers must test with ``isinstance``, never
    identity.
    """


#: Shared marker instance for the common (in-process) case.
PUNT_TIMEOUT = PuntTimeout()


class ExecutionEnvironment:
    """Hosts the service modules of one SN."""

    def __init__(self, node: "ServiceNode", tpm: Optional[SoftwareTPM] = None) -> None:
        self.node = node
        self.config = ConfigStore()
        self.storage = OffPathStorage()
        self.libs = LibraryRegistry()
        self.checkpoints = CheckpointManager()
        self.tpm = tpm or SoftwareTPM()
        #: Flight recorder for dispatch spans; the shared no-op until
        #: :meth:`set_recorder` installs a real one.
        self.recorder: "FlightRecorder | NullRecorder" = NULL_RECORDER
        self._services: dict[int, _LoadedService] = {}
        #: Injected per-service faults (netsim fault plans); empty in
        #: healthy operation, so the fast checks below are one dict probe.
        self._service_faults: dict[int, ServiceFault] = {}
        # Every SN ships the standard library set (§3.1); operators may
        # later swap in accelerated variants via libs.provide().
        from ..libs import install_standard_libraries

        install_standard_libraries(self)

    def load(
        self,
        module: ServiceModule,
        use_enclave: Optional[bool] = None,
    ) -> ServiceModule:
        """Deploy a module, measure it into the TPM, attach its context."""
        service_id = module.SERVICE_ID
        if service_id in self._services:
            raise ServiceError(f"service {service_id} already loaded")
        in_enclave = (
            module.REQUIRES_ENCLAVE if use_enclave is None else use_enclave
        )
        image = module_image(type(module))
        self.tpm.extend(PCR_SERVICES, hashlib.sha256(image).digest())
        enclave = (
            Enclave(module.NAME, image, tpm=self.tpm) if in_enclave else None
        )
        if enclave is not None:
            enclave.recorder = self.recorder
        ctx = ServiceContext(
            node=self.node,
            service_id=service_id,
            config=self.config,
            storage=self.storage,
            libs=self.libs,
            checkpoints=self.checkpoints,
        )
        module.attach(ctx)
        self._services[service_id] = _LoadedService(module=module, enclave=enclave)
        return module

    def unload(self, service_id: int) -> None:
        self._services.pop(service_id, None)

    def has_service(self, service_id: int) -> bool:
        return service_id in self._services

    def service(self, service_id: int) -> ServiceModule:
        try:
            return self._services[service_id].module
        except KeyError:
            raise ServiceError(f"service {service_id} not deployed") from None

    def enclave_for(self, service_id: int) -> Optional[Enclave]:
        loaded = self._services.get(service_id)
        return loaded.enclave if loaded else None

    def set_recorder(self, recorder: "FlightRecorder | NullRecorder") -> None:
        """Thread a flight recorder through dispatch and loaded enclaves.

        Modules loaded later inherit it at :meth:`load` time.
        """
        self.recorder = recorder
        for loaded in self._services.values():
            if loaded.enclave is not None:
                loaded.enclave.recorder = recorder

    def service_ids(self) -> list[int]:
        return sorted(self._services)

    # -- fault injection ---------------------------------------------------
    def inject_slowdown(self, service_id: int, extra: float) -> None:
        """Every invocation of ``service_id`` now takes ``extra`` more
        virtual seconds (timing out when a deadline is tighter)."""
        fault = self._service_faults.setdefault(service_id, ServiceFault())
        fault.slowdown = float(extra)

    def inject_hang(self, service_id: int) -> None:
        """``service_id`` stops answering punts until cleared."""
        fault = self._service_faults.setdefault(service_id, ServiceFault())
        fault.hung = True

    def clear_service_fault(self, service_id: int) -> bool:
        """Heal a service; True when a fault was actually present."""
        return self._service_faults.pop(service_id, None) is not None

    def service_fault(self, service_id: int) -> Optional[ServiceFault]:
        return self._service_faults.get(service_id)

    @property
    def has_faults(self) -> bool:
        return bool(self._service_faults)

    def fault_latency(self, service_id: int) -> float:
        """Extra virtual latency an invocation of this service pays now."""
        fault = self._service_faults.get(service_id)
        return fault.slowdown if fault is not None else 0.0

    def _fault_times_out(
        self, fault: Optional[ServiceFault], deadline: Optional[float]
    ) -> bool:
        if fault is None:
            return False
        if fault.hung:
            # A hung service never answers; in a discrete-event simulation
            # the punt resolves as a timeout regardless of the deadline.
            return True
        return deadline is not None and fault.slowdown > deadline

    def dispatch(
        self, header: ILPHeader, packet: Any, deadline: Optional[float] = None
    ) -> Verdict:
        """Run the slow path for a punted packet (enclave-aware).

        ``deadline`` is the punt's slow-path budget in virtual seconds:
        when the service is hung, or its injected slowdown exceeds the
        budget, the punt resolves with :class:`ServiceTimeout` instead of
        a verdict.
        """
        loaded = self._services.get(header.service_id)
        if loaded is None:
            raise ServiceError(f"service {header.service_id} not deployed")
        if self._service_faults and self._fault_times_out(
            self._service_faults.get(header.service_id), deadline
        ):
            raise ServiceTimeout(
                f"service {header.service_id} missed its slow-path deadline"
            )
        if header.is_control:
            handler = loaded.module.handle_control
        else:
            handler = loaded.module.handle_packet
        recorder = self.recorder
        span = recorder.begin_span(
            "env.dispatch", service=header.service_id, n=1
        )
        try:
            if loaded.enclave is not None:
                return loaded.enclave.call(handler, header, packet)
            return handler(header, packet)
        finally:
            recorder.end_span(span)

    def dispatch_batch(
        self,
        punts: list[tuple[ILPHeader, Any]],
        deadlines: Optional[list[Optional[float]]] = None,
    ) -> list[Any]:
        """Run the slow path for a whole batch of punts, grouped by service.

        Each service module sees one vectorized
        :meth:`~repro.core.service_module.ServiceModule.handle_batch` call
        covering all of its punts (in punt order); an enclave-hosted module
        pays **one** boundary crossing pair for its whole group instead of
        one per punt. The result has one entry per punt, in order; ``None``
        marks a punt whose handling raised :class:`ServiceError` (the
        terminus accounts those as service drops). A missing service raises
        — callers filter with :meth:`has_service` per punt, exactly as the
        scalar :meth:`dispatch` path expects.

        ``deadlines`` supplies one optional slow-path budget per punt
        (same order). A punt whose service is hung — or slowed beyond its
        budget — gets a :class:`PuntTimeout` marker in its slot instead of
        poisoning the batch; the rest of its service group is dispatched
        normally.
        """
        results: list[Any] = [None] * len(punts)
        groups: dict[int, list[int]] = {}
        for i, (header, _packet) in enumerate(punts):
            groups.setdefault(header.service_id, []).append(i)
        recorder = self.recorder
        span = recorder.begin_span(
            "env.dispatch", n=len(punts), services=len(groups)
        )
        faults = self._service_faults
        for service_id, indices in groups.items():
            loaded = self._services.get(service_id)
            if loaded is None:
                raise ServiceError(f"service {service_id} not deployed")
            fault = faults.get(service_id) if faults else None
            if fault is not None:
                live = []
                for i in indices:
                    budget = deadlines[i] if deadlines is not None else None
                    if self._fault_times_out(fault, budget):
                        results[i] = PUNT_TIMEOUT
                    else:
                        live.append(i)
                indices = live
                if not indices:
                    continue
            items = [punts[i] for i in indices]
            try:
                if loaded.enclave is not None:
                    verdicts = loaded.enclave.call(
                        loaded.module.handle_batch, items
                    )
                else:
                    verdicts = loaded.module.handle_batch(items)
                if len(verdicts) != len(items):
                    raise ServiceError(
                        f"service {service_id} handle_batch returned "
                        f"{len(verdicts)} verdicts for {len(items)} punts"
                    )
            except ServiceError:
                continue  # whole group errored; its entries stay None
            for i, verdict in zip(indices, verdicts):
                results[i] = verdict
        recorder.end_span(span)
        return results

    def checkpoint_all(self) -> None:
        for service_id, loaded in self._services.items():
            self.checkpoints.save(service_id, loaded.module.checkpoint())

    def restore_all(self) -> None:
        for service_id, loaded in self._services.items():
            state = self.checkpoints.load(service_id)
            if state is not None:
                loaded.module.restore(state)

"""Federation-wide monitoring and operational metrics.

IESPs operate SNs; operating them needs observability. This module
aggregates the counters every component already keeps (terminus stats,
cache stats, PSP stats, per-service counters, enclave crossings) into
uniform snapshots — per SN, per edomain, and federation-wide — suitable
for dashboards, capacity planning (the §5 "volume and location" pricing
inputs), and the neutrality audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs import MetricsRegistry, merged_registry, to_json, to_table
from .federation import InterEdge
from .overload import BreakerState
from .service_node import ServiceNode


@dataclass(frozen=True)
class SNSnapshot:
    """One SN's health at a point in (virtual) time."""

    name: str
    address: str
    edomain: str
    taken_at: float
    packets_in: int
    packets_out: int
    fast_path: int
    punts: int
    drops: int
    cache_entries: int
    cache_hit_rate: float
    psp_peers: int
    services: int
    storage_keys: int
    associated_hosts: int
    # Pipe health (zeros when the SN runs without a health monitor).
    pipes_up: int = 0
    pipes_suspect: int = 0
    pipes_dead: int = 0
    keepalives_sent: int = 0
    keepalives_received: int = 0
    crashed: bool = False
    # Miss-queue accounting (parked is cumulative; dropped feeds `drops`).
    miss_parked: int = 0
    miss_dropped: int = 0
    # Latency percentiles from the obs histograms (seconds; zeros when the
    # SN runs without observability — see ServiceNode.enable_observability).
    lat_p50: float = 0.0
    lat_p99: float = 0.0
    lat_p999: float = 0.0
    punt_p50: float = 0.0
    punt_p99: float = 0.0
    punt_p999: float = 0.0
    # Overload-resilience surface (all zeros on an unconfigured guard).
    breakers_open: int = 0
    breakers_half_open: int = 0
    shed: int = 0
    deadline_misses: int = 0
    stale_entries: int = 0

    @property
    def fast_path_fraction(self) -> float:
        total = self.fast_path + self.punts
        return self.fast_path / total if total else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Deadline misses per punt (0 when nothing was punted)."""
        return self.deadline_misses / self.punts if self.punts else 0.0

    @property
    def pipes_watched(self) -> int:
        return self.pipes_up + self.pipes_suspect + self.pipes_dead


def snapshot_sn(sn: ServiceNode) -> SNSnapshot:
    from .resilience import PeerState

    stats = sn.terminus.stats
    miss_stats = sn.terminus.miss_queue.stats
    guard = sn.terminus.overload
    # Every drop exit the datapath has: terminus counters (including the
    # offload stage and the overload layer's shed/degraded exits) plus
    # packets discarded from the miss queue on crash. Shed *followers* are
    # already inside drops_shed, so miss_stats.shed is not added again.
    drops = (
        stats.drops_no_peer
        + stats.drops_auth
        + stats.drops_malformed
        + stats.drops_no_service
        + stats.drops_by_decision
        + stats.drops_by_offload
        + stats.drops_by_service
        + stats.drops_shed
        + stats.drops_degraded
        + miss_stats.dropped
    )
    breaker_states = guard.state_counts()
    if sn.health is not None:
        states = sn.health.state_counts()
        pipes_up = states[PeerState.UP]
        pipes_suspect = states[PeerState.SUSPECT]
        pipes_dead = states[PeerState.DEAD]
        keepalives_sent = sn.health.stats.keepalives_sent
        keepalives_received = sn.health.stats.keepalives_received
    else:
        pipes_up = pipes_suspect = pipes_dead = 0
        keepalives_sent = keepalives_received = 0
    if sn.obs is not None:
        lat = sn.obs.terminus_latency
        punt = sn.obs.punt_latency
        lat_p50 = lat.quantile(0.50)
        lat_p99 = lat.quantile(0.99)
        lat_p999 = lat.quantile(0.999)
        punt_p50 = punt.quantile(0.50)
        punt_p99 = punt.quantile(0.99)
        punt_p999 = punt.quantile(0.999)
    else:
        lat_p50 = lat_p99 = lat_p999 = 0.0
        punt_p50 = punt_p99 = punt_p999 = 0.0
    return SNSnapshot(
        name=sn.name,
        address=sn.address,
        edomain=sn.edomain_name,
        taken_at=sn.sim.now,
        packets_in=stats.packets_in,
        packets_out=stats.packets_out,
        fast_path=stats.fast_path,
        punts=stats.punts,
        drops=drops,
        cache_entries=len(sn.cache),
        cache_hit_rate=sn.cache.stats.hit_rate,
        psp_peers=len(sn.keystore),
        services=len(sn.env.service_ids()),
        storage_keys=len(sn.env.storage),
        associated_hosts=len(sn.associated_hosts),
        pipes_up=pipes_up,
        pipes_suspect=pipes_suspect,
        pipes_dead=pipes_dead,
        keepalives_sent=keepalives_sent,
        keepalives_received=keepalives_received,
        crashed=sn.failed,
        miss_parked=miss_stats.parked,
        miss_dropped=miss_stats.dropped,
        lat_p50=lat_p50,
        lat_p99=lat_p99,
        lat_p999=lat_p999,
        punt_p50=punt_p50,
        punt_p99=punt_p99,
        punt_p999=punt_p999,
        breakers_open=breaker_states[BreakerState.OPEN],
        breakers_half_open=breaker_states[BreakerState.HALF_OPEN],
        shed=guard.stats.shed_packets,
        deadline_misses=guard.stats.deadline_misses,
        stale_entries=sn.cache.stale_count,
    )


@dataclass
class FederationReport:
    """Aggregated snapshot across every SN in a federation."""

    taken_at: float
    snapshots: list[SNSnapshot]

    @property
    def total_packets(self) -> int:
        return sum(s.packets_in for s in self.snapshots)

    @property
    def total_drops(self) -> int:
        return sum(s.drops for s in self.snapshots)

    @property
    def drop_rate(self) -> float:
        total = self.total_packets
        return self.total_drops / total if total else 0.0

    @property
    def overall_fast_path_fraction(self) -> float:
        fast = sum(s.fast_path for s in self.snapshots)
        punts = sum(s.punts for s in self.snapshots)
        total = fast + punts
        return fast / total if total else 0.0

    @property
    def dead_pipes(self) -> int:
        """Pipes currently judged dead across the federation."""
        return sum(s.pipes_dead for s in self.snapshots)

    @property
    def suspect_pipes(self) -> int:
        return sum(s.pipes_suspect for s in self.snapshots)

    @property
    def crashed_sns(self) -> int:
        return sum(1 for s in self.snapshots if s.crashed)

    def unhealthy_sns(self) -> list[SNSnapshot]:
        """SNs that are crashed or see at least one non-UP pipe."""
        return [
            s
            for s in self.snapshots
            if s.crashed or s.pipes_suspect or s.pipes_dead
        ]

    def by_edomain(self) -> dict[str, list[SNSnapshot]]:
        grouped: dict[str, list[SNSnapshot]] = {}
        for snap in self.snapshots:
            grouped.setdefault(snap.edomain, []).append(snap)
        return grouped

    def hottest_sns(self, n: int = 5) -> list[SNSnapshot]:
        """The load-balancing input (§C: 'proactive domain management')."""
        return sorted(
            self.snapshots, key=lambda s: s.packets_in, reverse=True
        )[:n]

    def to_rows(self) -> list[dict[str, Any]]:
        """Flat rows for tabular export."""
        return [
            {
                "sn": s.name,
                "edomain": s.edomain,
                "in": s.packets_in,
                "out": s.packets_out,
                "fastpath%": round(100 * s.fast_path_fraction, 1),
                "drops": s.drops,
                "shed": s.shed,
                "cache": s.cache_entries,
                "hosts": s.associated_hosts,
                "pipes!": s.pipes_suspect + s.pipes_dead,
                "brk!": s.breakers_open + s.breakers_half_open,
                "p50(µs)": round(s.lat_p50 * 1e6, 2),
                "p99(µs)": round(s.lat_p99 * 1e6, 2),
                "p999(µs)": round(s.lat_p999 * 1e6, 2),
                "punt_p99(µs)": round(s.punt_p99 * 1e6, 2),
            }
            for s in self.snapshots
        ]


class FederationMonitor:
    """Periodic or on-demand snapshotting over an :class:`InterEdge`."""

    def __init__(self, net: InterEdge) -> None:
        self.net = net
        self.history: list[FederationReport] = []

    def collect(self) -> FederationReport:
        report = FederationReport(
            taken_at=self.net.sim.now,
            snapshots=[snapshot_sn(sn) for sn in self.net.all_sns()],
        )
        self.history.append(report)
        return report

    def start_periodic(self, interval: float) -> None:
        """Collect every ``interval`` virtual seconds until sim ends."""

        def tick() -> None:
            self.collect()
            self.net.sim.schedule(interval, tick)

        self.net.sim.schedule(interval, tick)

    # -- observability export ---------------------------------------------
    def obs_registry(self) -> Optional[MetricsRegistry]:
        """The merged metrics of every obs-armed SN (None when none are).

        Histograms merge bucket-exactly, so the federation-level
        percentiles carry the same error bound as any single SN's.
        """
        registries = [
            sn.obs.registry
            for sn in self.net.all_sns()
            if sn.obs is not None
        ]
        if not registries:
            return None
        return merged_registry(registries)

    def obs_json(self) -> Optional[str]:
        """JSON snapshot of the federation-wide merged obs metrics."""
        merged = self.obs_registry()
        return to_json(merged) if merged is not None else None

    def obs_table(self) -> Optional[str]:
        """Human-readable table of the federation-wide merged obs metrics."""
        merged = self.obs_registry()
        if merged is None:
            return None
        return to_table(merged, title="federation observability")

    def deltas(self) -> Optional[dict[str, int]]:
        """Packet/drop growth between the last two reports."""
        if len(self.history) < 2:
            return None
        prev, curr = self.history[-2], self.history[-1]
        return {
            "packets": curr.total_packets - prev.total_packets,
            "drops": curr.total_drops - prev.total_drops,
            "interval": int(curr.taken_at - prev.taken_at),
        }

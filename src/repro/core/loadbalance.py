"""Proactive domain management: SN load balancing (Appendix C).

Appendix C closes: "the likely bottleneck is the total traffic being
handled by any SN, which can be load-balanced by proactive domain
management." This module is that management: an edomain-level balancer
that watches per-SN load (via :mod:`repro.core.monitoring` snapshots) and
migrates host associations from overloaded SNs to underloaded ones in the
same edomain.

Migration uses only architecturally-sanctioned moves: a fresh host↔SN
association (the host keeps its old one until the new one works — make
before break) plus a lookup-service record update so future connections
resolve to the new SN. In-flight connections keep working because the old
association is never torn down mid-move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..netsim.link import Link
from .edomain import Edomain
from .host import Host
from .monitoring import snapshot_sn
from .service_node import ServiceNode


@dataclass
class Migration:
    """One host moved between SNs."""

    host_address: str
    from_sn: str
    to_sn: str
    at: float


@dataclass
class BalancePlan:
    """What the balancer decided in one pass."""

    overloaded: list[str] = field(default_factory=list)
    migrations: list[Migration] = field(default_factory=list)


class EdomainBalancer:
    """Watches one edomain's SNs and rebalances host associations.

    Load is measured as packets handled since the last pass; an SN is
    overloaded when its share exceeds ``imbalance_factor`` times the
    edomain mean. One host moves per overloaded SN per pass (gentle,
    convergent rebalancing).
    """

    def __init__(
        self,
        edomain: Edomain,
        hosts: dict[str, Host],
        lookup=None,
        imbalance_factor: float = 2.0,
    ) -> None:
        if imbalance_factor <= 1.0:
            raise ValueError("imbalance_factor must exceed 1.0")
        self.edomain = edomain
        self.hosts = hosts  # address -> Host, the balancer's inventory
        self.lookup = lookup
        self.imbalance_factor = imbalance_factor
        self._last_packets: dict[str, int] = {}
        self.history: list[BalancePlan] = []

    # -- measurement ----------------------------------------------------------
    def _load_since_last(self) -> dict[str, int]:
        loads = {}
        for address, sn in self.edomain.sns.items():
            total = snapshot_sn(sn).packets_in
            loads[address] = total - self._last_packets.get(address, 0)
            self._last_packets[address] = total
        return loads

    # -- planning -----------------------------------------------------------
    def plan(self, loads: dict[str, int]) -> BalancePlan:
        plan = BalancePlan()
        if len(loads) < 2:
            return plan
        mean = sum(loads.values()) / len(loads)
        if mean == 0:
            return plan
        coldest = min(loads, key=lambda a: loads[a])
        for address, load in sorted(
            loads.items(), key=lambda kv: kv[1], reverse=True
        ):
            if load < self.imbalance_factor * mean or address == coldest:
                continue
            plan.overloaded.append(address)
            sn = self.edomain.sns[address]
            candidates = [
                h for h in sorted(sn.associated_hosts) if h in self.hosts
            ]
            if candidates:
                plan.migrations.append(
                    Migration(
                        host_address=candidates[0],
                        from_sn=address,
                        to_sn=coldest,
                        at=sn.sim.now,
                    )
                )
        return plan

    # -- execution -----------------------------------------------------------
    def _migrate(self, migration: Migration) -> None:
        host = self.hosts[migration.host_address]
        target = self.edomain.sns[migration.to_sn]
        if not host.has_link_to(target):
            Link(host.sim, host, target, latency=0.001)
        target.associate_host(host)
        # Prefer the new SN for future connections: reorder first hops.
        host.prefer_first_hop(target.address)
        if self.lookup is not None:
            record = self.lookup.address_record(host.address)
            if record is not None:
                record.associated_sns.insert(0, target.address)
                while record.associated_sns.count(target.address) > 1:
                    record.associated_sns.reverse()
                    record.associated_sns.remove(target.address)
                    record.associated_sns.reverse()

    def rebalance(self) -> BalancePlan:
        """One measurement + migration pass; returns what was done."""
        loads = self._load_since_last()
        plan = self.plan(loads)
        for migration in plan.migrations:
            self._migrate(migration)
        self.history.append(plan)
        return plan

    def run_periodic(self, interval: float) -> None:
        """Rebalance every ``interval`` virtual seconds."""
        sim = next(iter(self.edomain.sns.values())).sim

        def tick() -> None:
            self.rebalance()
            sim.schedule(interval, tick)

        sim.schedule(interval, tick)

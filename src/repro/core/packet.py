"""Packet and header model.

Per Figure 2 of the paper, an ILP packet on the wire is::

    | L2/L3 header | encrypted ILP header | L4 header + data (opaque) |

The outer L2/L3 headers are plaintext (the underlay routes on them), the
ILP header is encrypted hop-by-hop with the pairwise PSP key, and the
payload (the endpoints' L4 header plus application data) is opaque to SNs
unless a service legitimately operates on it.

Addresses use the stdlib :mod:`ipaddress` types, stored here as strings for
hashability and cheap equality.
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

L2_HEADER_SIZE = 14
L3_HEADER_SIZE = 20
L4_HEADER_SIZE = 8

# IP protocol number we pretend IANA assigned to ILP-over-UDP encap.
PROTO_ILP = 0x99
PROTO_UDP = 17
PROTO_TCP = 6

_packet_ids = itertools.count(1)


class PacketError(Exception):
    """Raised for malformed packets or invalid header fields."""


def normalize_address(address: str) -> str:
    """Validate and canonicalize an IPv4 address string."""
    try:
        return str(ipaddress.IPv4Address(address))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise PacketError(f"invalid address {address!r}") from exc


@dataclass(frozen=True, slots=True)
class L3Header:
    """Outer IP header (the only part the legacy underlay looks at)."""

    src: str
    dst: str
    proto: int = PROTO_ILP
    ttl: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", normalize_address(self.src))
        object.__setattr__(self, "dst", normalize_address(self.dst))
        if not 0 < self.ttl <= 255:
            raise PacketError(f"invalid ttl {self.ttl}")

    def decrement_ttl(self) -> "L3Header":
        if self.ttl <= 1:
            raise PacketError("TTL expired")
        return replace(self, ttl=self.ttl - 1)

    def reversed(self) -> "L3Header":
        return replace(self, src=self.dst, dst=self.src)


@dataclass(frozen=True, slots=True)
class L4Header:
    """Endpoint transport header; opaque to SNs, modeled for end hosts."""

    sport: int
    dport: int
    proto: int = PROTO_UDP

    def __post_init__(self) -> None:
        for port in (self.sport, self.dport):
            if not 0 <= port <= 65535:
                raise PacketError(f"invalid port {port}")


@dataclass(slots=True)
class Payload:
    """The end-to-end portion: L4 header + application bytes.

    End hosts build and consume this; SNs treat :attr:`data` as opaque unless
    a service module (with endpoint consent, e.g. caching) parses it.
    """

    l4: Optional[L4Header]
    data: bytes = b""

    @property
    def wire_size(self) -> int:
        return (L4_HEADER_SIZE if self.l4 is not None else 0) + len(self.data)


@dataclass(slots=True)
class ILPPacket:
    """A packet traveling between ILP speakers (host↔SN or SN↔SN).

    ``ilp_wire`` is the PSP-encrypted ILP header as produced by
    :mod:`repro.core.psp`; decrypted forms live only transiently inside the
    pipe-terminus (mirroring how a real SN never forwards plaintext ILP).
    """

    l3: L3Header
    ilp_wire: bytes
    payload: Payload
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    #: Classification hint for egress QoS shapers: the original sending
    #: host, known to the SN post-decrypt (SRC_HOST TLV) but opaque on the
    #: wire. Set by the pipe-terminus on egress; None elsewhere.
    qos_src: Optional[str] = None

    @property
    def wire_size(self) -> int:
        return (
            L2_HEADER_SIZE
            + L3_HEADER_SIZE
            + len(self.ilp_wire)
            + self.payload.wire_size
        )


@dataclass(slots=True)
class RawIPPacket:
    """A legacy (non-ILP) packet for backwards-compatibility tests.

    The paper requires InterEdge-unaware endpoints to keep working; these
    packets traverse the same links but bypass every SN service path.
    """

    l3: L3Header
    payload: Payload
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_size(self) -> int:
        return L2_HEADER_SIZE + L3_HEADER_SIZE + self.payload.wire_size


def make_payload(data: bytes, sport: int = 40000, dport: int = 443) -> Payload:
    """Convenience constructor used widely in tests and examples."""
    return Payload(l4=L4Header(sport=sport, dport=dport), data=data)

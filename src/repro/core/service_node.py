"""Service nodes (SNs): the InterEdge's edge compute elements.

An SN (§3.1) is a commodity cluster at a network edge, operated by an IESP,
that terminates ILP pipes from hosts and other SNs, runs the common
execution environment with the standardized service modules, and forwards
via its pipe-terminus.

This class composes the pieces built elsewhere (keystore, decision cache,
execution environment, pipe-terminus) onto a :class:`~repro.netsim.node.NetNode`
so SNs participate in simulated topologies. It also implements:

* host association (the host↔SN PSP handshake + routing state);
* SN↔SN pipes, including on-demand direct pipes across edomains (§3.2);
* the border-SN mapping used for inter-edomain forwarding (§3.2);
* pass-through operation for operator-imposed services (§3.2);
* simulated-time processing delays from the :class:`CostModel`, so netsim
  experiments observe Table 1-shaped latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol

from ..netsim.engine import Simulator
from ..netsim.link import Link
from ..netsim.node import NetNode
from ..obs import FlightRecorder, MetricsRegistry, NodeObs
from ..obs import enabled_from_env as _obs_enabled_from_env
from .attestation import SoftwareTPM
from .decision_cache import CacheKey, Decision, DecisionCache
from .execution_env import ExecutionEnvironment
from .ilp import ILPHeader, TLV
from .ipc import CostModel, InvocationMode
from .overload import AdmissionConfig, ServicePolicy
from .packet import ILPPacket, Payload, RawIPPacket
from .pipe_terminus import PipeTerminus
from .psp import PeerKeyStore, pairwise_secret
from .resilience import KeepaliveFrame, PipeHealthMonitor


class ImposedModule(Protocol):
    """Operator-imposed service applied by a pass-through SN (§3.2)."""

    NAME: str

    def impose(
        self, header: ILPHeader, payload: Payload, inbound: bool
    ) -> Optional[ILPHeader]:
        """Return the (possibly rewritten) header to forward, or None to drop."""


@dataclass
class PassThroughConfig:
    next_hop: str
    chain: list[Any]  # ImposedModule instances, applied in order


class ServiceNode(NetNode):
    """One InterEdge service node."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address: str,
        edomain_name: str = "default",
        cache_capacity: int = 65536,
        invocation_mode: InvocationMode = InvocationMode.IPC,
        cost_model: Optional[CostModel] = None,
        tpm: Optional[SoftwareTPM] = None,
    ) -> None:
        super().__init__(sim, name)
        self.address = address
        self.edomain_name = edomain_name
        self.cost_model = cost_model or CostModel()
        self.keystore = PeerKeyStore()
        self.cache = DecisionCache(capacity=cache_capacity)
        self.env = ExecutionEnvironment(self, tpm=tpm)
        self.terminus = PipeTerminus(
            node_address=address,
            keystore=self.keystore,
            cache=self.cache,
            env=self.env,
            transmit=self._transmit,
            invocation_mode=invocation_mode,
            clock=lambda: self.sim.now,
            cost_model=self.cost_model,
        )
        self._addr_to_node: dict[str, NetNode] = {}
        self._associated_hosts: set[str] = set()
        self._border_peers: dict[str, str] = {}  # edomain name -> peer SN addr
        self.core_client: Any = None  # set by Edomain wiring
        self.directory: Any = None  # SN address -> edomain directory (federation)
        #: optional PeeringLedger; cross-edomain transmissions are recorded
        #: so the settlement-free accounting (§5) has ground-truth volumes.
        self.ledger: Any = None
        self.pass_through: Optional[PassThroughConfig] = None
        #: pipe health monitor (keepalives + failure detection); created by
        #: :meth:`enable_health_monitor`, None when resilience is off.
        self.health: Optional[PipeHealthMonitor] = None
        #: core-store watcher that remaps border peers on failover events;
        #: set by :meth:`InterEdge.enable_resilience`.
        self.resilience_agent: Any = None
        self.crashes = 0
        self.raw_packets_forwarded = 0
        #: host address -> egress shaper; installed by the last-hop QoS
        #: service, consulted for every packet leaving toward that host.
        self._egress_shapers: dict[str, Any] = {}
        #: observability bundle (flight recorder + metrics registry);
        #: created by :meth:`enable_observability`, None when obs is off.
        self.obs: Optional[NodeObs] = None
        if _obs_enabled_from_env():
            self.enable_observability()

    # -- wiring -----------------------------------------------------------
    def register_peer_node(self, address: str, node: NetNode) -> None:
        self._addr_to_node[address] = node

    def associate_host(self, host: "Any") -> None:
        """Create the host↔SN PSP association and routing state.

        ``host`` is a :class:`repro.core.host.Host`; typed as Any to avoid a
        circular import.
        """
        secret = pairwise_secret(self.address, host.address)
        self.keystore.establish(host.address, secret)
        host.keystore.establish(self.address, secret)
        self._addr_to_node[host.address] = host
        host.register_first_hop(self)
        self._associated_hosts.add(host.address)

    def establish_pipe(self, other: "ServiceNode", latency: float = 0.005) -> None:
        """Create (or reuse) an SN↔SN pipe with a fresh PSP association."""
        if not self.has_link_to(other):
            Link(self.sim, self, other, latency=latency)
        secret = pairwise_secret(self.address, other.address)
        self.keystore.establish(other.address, secret)
        other.keystore.establish(self.address, secret)
        self._addr_to_node[other.address] = other
        other._addr_to_node[self.address] = self
        # Pipes created after monitoring started are watched immediately
        # (e.g. the failover coordinator pre-establishing border pipes).
        if self.health is not None:
            self.health.watch_peer(other.address)
        if other.health is not None:
            other.health.watch_peer(self.address)

    def has_pipe_to(self, address: str) -> bool:
        return self.keystore.has(address) and address in self._addr_to_node

    def peer_node(self, address: str) -> Optional[NetNode]:
        """The node object registered for a peer address, if any."""
        return self._addr_to_node.get(address)

    def teardown_pipe(self, address: str) -> None:
        """Drop the PSP association and routing entry for a peer.

        Cache entries forwarding via the peer are the caller's concern
        (:meth:`~repro.core.decision_cache.DecisionCache.invalidate_by_target`);
        this only removes the association-level state.
        """
        self.keystore.remove(address)
        self._addr_to_node.pop(address, None)

    def set_border_peer(self, edomain: str, via_address: str) -> None:
        """Record which local peer reaches ``edomain`` (§3.2 mapping)."""
        self._border_peers[edomain] = via_address

    def border_peer_for(self, edomain: str) -> Optional[str]:
        if edomain == self.edomain_name:
            return None
        return self._border_peers.get(edomain)

    def next_hop_for_sn(self, dest_sn: str) -> Optional[str]:
        """Next ILP peer toward a destination SN (§3.2 forwarding mechanics).

        Direct pipes (same edomain mesh, long-lived border pipes, or
        on-demand inter-edomain pipes) win; otherwise traffic relays through
        this edomain's border SN for the destination's edomain.
        """
        if dest_sn == self.address:
            return None
        if self.has_pipe_to(dest_sn):
            return dest_sn
        if self.directory is None:
            return None
        edomain = self.directory.edomain_of(dest_sn)
        if edomain is None:
            return None
        if edomain == self.edomain_name:
            # No direct pipe (checked above), so the destination is not in
            # the mesh (e.g. a customer-premise gateway): route toward its
            # registered uplink SN instead.
            via = self.directory.via_of(dest_sn)
            if via is not None and via != self.address:
                return self.next_hop_for_sn(via)
            return None
        return self.border_peer_for(edomain)

    def route_to_host(self, host_address: str) -> Optional[str]:
        """Return the host address itself if it is associated locally."""
        if host_address in self._associated_hosts:
            return host_address
        return None

    @property
    def associated_hosts(self) -> set[str]:
        return set(self._associated_hosts)

    def configure_pass_through(self, next_hop: str, chain: list[Any]) -> None:
        self.pass_through = PassThroughConfig(next_hop=next_hop, chain=chain)

    # -- observability -----------------------------------------------------
    def enable_observability(
        self, sample_every: int = 1, capacity: int = 4096
    ) -> NodeObs:
        """Arm the flight recorder and metrics registry on this SN.

        Threads one sim-clocked :class:`~repro.obs.FlightRecorder` through
        the terminus, the invocation channel, the execution environment,
        and every loaded enclave (modules loaded later inherit it), and
        attaches the latency histograms the terminus egress records into.
        Idempotent; also armed at construction when ``REPRO_OBS`` is set
        in the environment. ``sample_every=N`` records every Nth ingress
        trace (0 keeps the recorder attached but samples nothing); the
        histograms always see every packet.
        """
        if self.obs is None:
            recorder = FlightRecorder(
                clock=lambda: self.sim.now,
                capacity=capacity,
                sample_every=sample_every,
            )
            self.obs = NodeObs(recorder, MetricsRegistry())
            self.terminus.obs = self.obs
            self.terminus.recorder = recorder
            self.terminus.channel.recorder = recorder
            self.env.set_recorder(recorder)
        return self.obs

    # -- resilience ---------------------------------------------------------
    def enable_health_monitor(
        self,
        interval: float = 0.25,
        suspect_multiple: float = 3.0,
        dead_multiple: float = 6.0,
        initial_delay: Optional[float] = None,
    ) -> PipeHealthMonitor:
        """Start keepalive-based pipe health monitoring on this SN.

        Every current SN↔SN pipe (keystore peer that is not an associated
        host) is watched; pipes established later are watched as they are
        created. Data traffic counts as liveness via the terminus
        ``peer_activity`` hook, so keepalives only flow over idle pipes.
        """
        if self.health is None:
            self.health = PipeHealthMonitor(
                self,
                interval=interval,
                suspect_multiple=suspect_multiple,
                dead_multiple=dead_multiple,
            )
            self.terminus.peer_activity = self.health.heard
            for peer in self.keystore.contexts:
                node = self._addr_to_node.get(peer)
                if peer not in self._associated_hosts and isinstance(
                    node, ServiceNode
                ):
                    self.health.watch_peer(peer)
        self.health.start(initial_delay=initial_delay)
        return self.health

    def set_service_policy(self, service_id: int, policy: ServicePolicy) -> None:
        """Declare a slow-path overload policy for one deployed service.

        Arms the deadline, degradation mode, and circuit breaker for
        ``service_id`` on this SN's terminus. Services without a policy
        keep the pre-overload behavior exactly (failures drop, no breaker).
        """
        self.terminus.overload.set_policy(service_id, policy)

    def enable_admission_control(self, config: AdmissionConfig) -> None:
        """Arm the terminus overload detector (miss-queue depth + punt rate).

        Under pressure it sheds *true-cold* leads only — CONTROL/LAST
        barriers and established (cached) flows are never shed.
        """
        self.terminus.overload.enable_admission(config)

    def crash(self) -> None:
        """Fail this SN: links down, frames dropped, volatile state lost.

        The decision cache is wiped (it is table state in the terminus
        ASIC/soft-switch — gone on power loss); service-module state
        survives only through explicit checkpoints (§3.3), exercised by
        :meth:`failover_to`.
        """
        if self.failed:
            return
        self.crashes += 1
        self.fail()
        self.cache.evict_random_fraction(1.0)
        # The stale shelf and the breakers' EWMA state are volatile too:
        # a rebooted terminus must not serve pre-crash decisions via
        # fail_static or start life with a tripped circuit.
        self.cache.clear_stale()
        self.terminus.overload.reset()
        # Packets parked in the miss queue are in-flight datapath state —
        # lost with the rest of the terminus, accounted as dropped.
        self.terminus.miss_queue.discard_all()

    def restart(self) -> None:
        """Recover from :meth:`crash`: links up, health and routing resynced.

        The health monitor grants every peer a fresh grace period (the
        restarted SN has heard nobody *since boot*, which is not evidence
        of their death), and the resilience agent re-reads the core store
        to pick up any border failover it slept through.
        """
        if not self.failed:
            return
        self.recover()
        if self.health is not None:
            self.health.reset()
        if self.resilience_agent is not None:
            self.resilience_agent.resync()

    # -- datapath -----------------------------------------------------------
    def handle_frame(self, frame: Any, link: Link) -> None:
        if isinstance(frame, KeepaliveFrame):
            if self.health is not None:
                self.health.handle_keepalive(frame)
            return
        if isinstance(frame, RawIPPacket):
            # Backwards compatibility (§3.3): legacy IP traffic is forwarded
            # untouched — the InterEdge changes nothing for unaware hosts.
            self._forward_raw(frame)
            return
        if not isinstance(frame, ILPPacket):
            return
        if self.pass_through is not None:
            self._handle_pass_through(frame)
            return
        self.terminus.receive(frame)

    def receive_burst(self, frames: Any, link: Link) -> None:
        """Feed a coalesced link burst through the terminus batch ingress.

        Consecutive ILP packets in the burst become one
        :meth:`PipeTerminus.receive_batch` call, which amortizes clock,
        stats, and flow-run work across the burst; other frame kinds (raw
        IP, control objects) dispatch individually in arrival order.
        Pass-through SNs and tapped nodes keep strict per-frame semantics.
        """
        if self.failed:
            self.frames_dropped_failed += len(frames)
            return
        if self.pass_through is not None or self.rx_tap is not None:
            for frame in frames:
                self.receive_frame(frame, link)
            return
        self.frames_received += len(frames)
        batch: list[ILPPacket] = []
        for frame in frames:
            if isinstance(frame, ILPPacket):
                batch.append(frame)
                continue
            if batch:
                self.terminus.receive_batch(batch)
                batch = []
            self.handle_frame(frame, link)
        if batch:
            self.terminus.receive_batch(batch)

    def _forward_raw(self, packet: RawIPPacket) -> None:
        node = self._addr_to_node.get(packet.l3.dst)
        if node is not None and self.has_link_to(node):
            self.send_frame(packet, node)
            self.raw_packets_forwarded += 1

    def _handle_pass_through(self, packet: ILPPacket) -> None:
        """Terminate ILP, run imposed services, forward (§3.2)."""
        assert self.pass_through is not None
        self.terminus.stats.packets_in += 1
        cfg = self.pass_through
        peer = packet.l3.src
        if not self.keystore.has(peer):
            self.terminus.stats.drops_no_peer += 1
            return
        try:
            header = ILPHeader.decode(self.keystore.get(peer).open(packet.ilp_wire))
        except Exception:
            self.terminus.stats.drops_auth += 1
            return
        inbound = peer == cfg.next_hop
        key = CacheKey(peer, header.service_id, header.connection_id)
        cached = self.cache.lookup(key, now=self.sim.now)
        self.terminus.pending_delay = self.cost_model.terminus_latency
        if cached is not None:
            self.terminus.apply_decision(cached, header, packet.payload)
            return
        current = header
        for module in cfg.chain:
            result = module.impose(current, packet.payload, inbound)
            if result is None:
                self.cache.install(key, Decision.drop(), now=self.sim.now)
                self.terminus.stats.drops_by_decision += 1
                return
            current = result
        if inbound:
            target = current.get_str(TLV.DEST_ADDR)
            if target is None or target not in self._associated_hosts:
                self.terminus.stats.drops_no_peer += 1
                return
        else:
            target = cfg.next_hop
        self.cache.install(key, Decision.forward(target), now=self.sim.now)
        self.terminus.send(target, current, packet.payload)

    def emit(self, peer: str, header: ILPHeader, payload: Payload) -> bool:
        """Originate a packet from this SN (used by service modules)."""
        self.terminus.pending_delay = 0.0
        return self.terminus.send(peer, header, payload)

    def set_egress_shaper(self, host_address: str, shaper: Any) -> None:
        """Install a QoS shaper on the pipe toward an associated host (§6.2)."""
        self._egress_shapers[host_address] = shaper

    def clear_egress_shaper(self, host_address: str) -> None:
        self._egress_shapers.pop(host_address, None)

    def _transmit(self, peer: str, packet: ILPPacket) -> bool:
        node = self._addr_to_node.get(peer)
        if node is None or not self.has_link_to(node):
            return False
        if self.ledger is not None and self.directory is not None:
            peer_edomain = self.directory.edomain_of(peer)
            if peer_edomain is not None and peer_edomain != self.edomain_name:
                self.ledger.record_traffic(
                    self.edomain_name, peer_edomain, packet.wire_size
                )
        shaper = self._egress_shapers.get(peer)
        if shaper is not None:
            shaper.submit(packet, lambda pkt: self.send_frame(pkt, node))
            return True
        delay = self.terminus.pending_delay
        if delay > 0:
            # Handle-free scheduling: per-packet delivery events are never
            # cancelled, so the datapath skips the EventHandle allocation.
            self.sim.post(delay, self.send_frame, packet, node)
            return True
        return self.send_frame(packet, node)

    # -- operations -------------------------------------------------------
    def load_service(self, module: Any, use_enclave: Optional[bool] = None) -> Any:
        return self.env.load(module, use_enclave=use_enclave)

    def failover_to(self, standby: "ServiceNode") -> int:
        """Checkpoint all module state and ship it to a standby SN (§3.3)."""
        self.env.checkpoint_all()
        count = self.env.checkpoints.transfer_to(standby.env.checkpoints)
        standby.env.restore_all()
        return count

    def __repr__(self) -> str:  # pragma: no cover
        return f"ServiceNode({self.name}@{self.address}, edomain={self.edomain_name})"

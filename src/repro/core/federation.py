"""The InterEdge federation: edomains, peering, deployment, and naming.

This is the top-level convenience object most examples and integration
tests build: it owns the simulator, the global lookup service, the service
registry, edomains, SNs, and hosts, and implements:

* **settlement-free full-mesh peering** between edomains (§3.2, §5): every
  pair of edomains gets at least one long-lived pipe between designated
  border SNs, and every SN learns the border mapping for every edomain;
* **on-demand direct pipes** between SNs in different edomains (the §3.2
  optimization, measured by A-INTER);
* **uniform service deployment** (§3.3): loading every REQUIRED service of
  the registry onto every SN;
* host attachment + lookup/naming registration.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..control.lookup import GlobalLookupService
from ..control.naming import NameService
from ..netsim.engine import Simulator
from .crypto import KeyPair
from .edomain import Edomain, EdomainError
from .host import Host
from .ipc import CostModel, InvocationMode
from .service_module import ServiceModule, ServiceRegistry, Standardization
from .service_node import ServiceNode


class FederationError(Exception):
    """Raised on invalid federation operations."""


class SNDirectory:
    """Maps SN addresses to their edomains (used for next-hop decisions).

    SNs outside the edomain full mesh (customer-premise pass-through
    gateways, §3.2) additionally register the uplink SN (``via``) through
    which they are reachable.
    """

    def __init__(self) -> None:
        self._edomain_of: dict[str, str] = {}
        self._via: dict[str, str] = {}

    def register(
        self, sn_address: str, edomain: str, via: Optional[str] = None
    ) -> None:
        self._edomain_of[sn_address] = edomain
        if via is not None:
            self._via[sn_address] = via

    def edomain_of(self, sn_address: str) -> Optional[str]:
        return self._edomain_of.get(sn_address)

    def via_of(self, sn_address: str) -> Optional[str]:
        return self._via.get(sn_address)

    def __len__(self) -> int:
        return len(self._edomain_of)


class InterEdge:
    """A whole InterEdge deployment under one simulator."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        registry: Optional[ServiceRegistry] = None,
        cost_model: Optional[CostModel] = None,
        invocation_mode: InvocationMode = InvocationMode.IPC,
    ) -> None:
        from ..econ.peering import PeeringLedger

        self.sim = sim or Simulator()
        self.lookup = GlobalLookupService()
        self.names = NameService(self.lookup)
        self.registry = registry or ServiceRegistry()
        self.directory = SNDirectory()
        #: settlement-free peering accounting (§5); SNs record their
        #: cross-edomain transmissions here.
        self.ledger = PeeringLedger()
        self.edomains: dict[str, Edomain] = {}
        self.hosts: dict[str, Host] = {}
        self.cost_model = cost_model or CostModel()
        self.invocation_mode = invocation_mode
        self._addr_counter = itertools.count(1)
        self._peered = False
        #: latency used for border pipes (peer_all and failover repairs).
        self.border_latency = 0.01
        #: set by :meth:`enable_resilience`.
        self.coordinator: Any = None

    # -- construction ----------------------------------------------------
    def create_edomain(self, name: str) -> Edomain:
        if name in self.edomains:
            raise FederationError(f"edomain {name!r} already exists")
        edomain = Edomain(name, self.lookup)
        self.edomains[name] = edomain
        return edomain

    def _next_address(self, prefix: str = "10.0") -> str:
        n = next(self._addr_counter)
        return f"{prefix}.{n // 250}.{n % 250 + 1}"

    def add_sn(
        self,
        edomain_name: str,
        name: Optional[str] = None,
        address: Optional[str] = None,
        cache_capacity: int = 65536,
    ) -> ServiceNode:
        edomain = self.edomains[edomain_name]
        address = address or self._next_address()
        name = name or f"sn-{edomain_name}-{address}"
        sn = ServiceNode(
            self.sim,
            name,
            address,
            edomain_name=edomain_name,
            cache_capacity=cache_capacity,
            invocation_mode=self.invocation_mode,
            cost_model=self.cost_model,
        )
        sn.directory = self.directory
        sn.ledger = self.ledger
        edomain.add_sn(sn)
        self.directory.register(address, edomain_name)
        return sn

    def add_host(
        self,
        sn: ServiceNode,
        name: Optional[str] = None,
        address: Optional[str] = None,
        subnet: str = "0.0.0.0/0",
        latency: float = 0.001,
        register_name: Optional[str] = None,
    ) -> Host:
        from ..netsim.link import Link

        address = address or self._next_address(prefix="192.168")
        name = name or f"host-{address}"
        host = Host(self.sim, name, address, subnet=subnet)
        Link(self.sim, host, sn, latency=latency)
        sn.associate_host(host)
        self.hosts[address] = host
        owner = host.keypair
        self.lookup.register_address(address, owner, associated_sns=[sn.address])
        if register_name:
            self.names.register_name(register_name, address)
        return host

    # -- peering ----------------------------------------------------------
    def peer_all(self, internal_latency: float = 0.002, border_latency: float = 0.01) -> int:
        """Establish the full interconnection fabric. Returns pipe count.

        Every edomain internally full-meshes; every pair of edomains gets a
        border pipe; every SN learns its border mapping (§3.2 requirements
        (i) and (ii)).
        """
        self.border_latency = border_latency
        pipes = 0
        for edomain in self.edomains.values():
            pipes += edomain.connect_internal(latency=internal_latency)
        domain_list = list(self.edomains.values())
        for i, dom_a in enumerate(domain_list):
            for dom_b in domain_list[i + 1 :]:
                border_a = dom_a.border_sn
                border_b = dom_b.border_sn
                if not border_a.has_pipe_to(border_b.address):
                    border_a.establish_pipe(border_b, latency=border_latency)
                    pipes += 1
                for sn in dom_a.sns.values():
                    sn.set_border_peer(
                        dom_b.name,
                        border_b.address if sn is border_a else border_a.address,
                    )
                for sn in dom_b.sns.values():
                    sn.set_border_peer(
                        dom_a.name,
                        border_a.address if sn is border_b else border_b.address,
                    )
        # Publish the border facts in each edomain core store so the
        # resilience agents (and anything else SDN-ish) have an
        # authoritative, watchable record (§6.2 core store, §3.3 repair).
        for dom_a in domain_list:
            dom_a.store.put("resilience/border", dom_a.border_sn.address)
            for dom_b in domain_list:
                if dom_b is not dom_a:
                    dom_a.store.put(
                        f"resilience/remote-border/{dom_b.name}",
                        dom_b.border_sn.address,
                    )
        self._peered = True
        return pipes

    # -- resilience --------------------------------------------------------
    def enable_resilience(
        self,
        interval: float = 0.25,
        suspect_multiple: float = 3.0,
        dead_multiple: float = 6.0,
    ):
        """Turn on pipe health monitoring and automated border failover.

        Every SN gets a :class:`~repro.core.resilience.PipeHealthMonitor`
        (keepalives over idle pipes, phi-accrual failure detection; dead
        after ~``interval * dead_multiple`` seconds of silence) and a
        :class:`~repro.core.resilience.ResilienceAgent` watching its
        edomain core store. Dead/recovered verdicts feed a federation
        :class:`~repro.core.resilience.FailoverCoordinator` that promotes
        an alternate border SN, publishes it through the core stores, and
        evicts stale fast-path state. Returns the coordinator.

        Call after :meth:`peer_all`. Monitor start times are staggered
        deterministically so keepalive bursts do not synchronize.
        """
        from .resilience import FailoverCoordinator, ResilienceAgent

        if not self._peered:
            raise FederationError("enable_resilience requires peer_all() first")
        if self.coordinator is not None:
            return self.coordinator
        coordinator = FailoverCoordinator(self)
        self.coordinator = coordinator
        sns = self.all_sns()
        for i, sn in enumerate(sns):
            monitor = sn.enable_health_monitor(
                interval=interval,
                suspect_multiple=suspect_multiple,
                dead_multiple=dead_multiple,
                initial_delay=interval * (1 + (i % 16)) / 16,
            )
            monitor.on_peer_dead = (
                lambda addr, reporter=sn: coordinator.peer_dead(reporter, addr)
            )
            monitor.on_peer_recovered = (
                lambda addr, reporter=sn: coordinator.peer_recovered(reporter, addr)
            )
            if sn.resilience_agent is None:
                store = self.edomains[sn.edomain_name].store
                sn.resilience_agent = ResilienceAgent(sn, store)
        return coordinator

    def disable_resilience(self) -> None:
        """Stop all health monitors (lets a finished simulation drain)."""
        for sn in self.all_sns():
            if sn.health is not None:
                sn.health.stop()

    def establish_direct(self, sn_a: ServiceNode, sn_b: ServiceNode, latency: float = 0.008) -> None:
        """On-demand direct pipe between SNs in different edomains (§3.2)."""
        if sn_a.edomain_name == sn_b.edomain_name:
            raise FederationError("direct pipes are for inter-edomain pairs")
        sn_a.establish_pipe(sn_b, latency=latency)

    # -- deployment ----------------------------------------------------------
    def deploy_required_services(self) -> int:
        """Load every REQUIRED service onto every SN (§3.3 extensibility).

        Returns the number of (SN, service) deployments performed.
        """
        count = 0
        for module_cls in self.registry.required_services():
            for edomain in self.edomains.values():
                for sn in edomain.sns.values():
                    if not sn.env.has_service(module_cls.SERVICE_ID):
                        sn.load_service(module_cls())
                        count += 1
        return count

    def deploy_experimental(
        self,
        module_cls: type[ServiceModule],
        edomain_name: str,
        use_enclave: Optional[bool] = None,
    ) -> int:
        """One IESP offers a not-yet-standard service on its own SNs (§2.2).

        The service is registered EXPERIMENTAL (so it is *not* part of the
        uniform service model) and deployed only in ``edomain_name``.
        Customers of that IESP can adopt it; if it gains traction the
        governance body standardizes it (``registry.promote`` +
        :meth:`deploy_required_services`) and every SN picks it up.
        """
        if not self.registry.known(module_cls.SERVICE_ID):
            self.registry.register(module_cls, Standardization.EXPERIMENTAL)
        count = 0
        for sn in self.edomains[edomain_name].sns.values():
            if not sn.env.has_service(module_cls.SERVICE_ID):
                sn.load_service(module_cls(), use_enclave=use_enclave)
                count += 1
        return count

    def deploy_service(
        self, module_cls: type[ServiceModule], use_enclave: Optional[bool] = None
    ) -> int:
        """Deploy one service everywhere (e.g. a newly standardized one)."""
        if not self.registry.known(module_cls.SERVICE_ID):
            self.registry.register(module_cls, Standardization.STANDARDIZED)
        count = 0
        for edomain in self.edomains.values():
            for sn in edomain.sns.values():
                if not sn.env.has_service(module_cls.SERVICE_ID):
                    sn.load_service(module_cls(), use_enclave=use_enclave)
                    count += 1
        return count

    # -- queries ----------------------------------------------------------
    def all_sns(self) -> list[ServiceNode]:
        return [
            sn
            for edomain in self.edomains.values()
            for sn in edomain.sns.values()
        ]

    def sn_at(self, address: str) -> ServiceNode:
        for edomain in self.edomains.values():
            if address in edomain.sns:
                return edomain.sns[address]
        raise FederationError(f"no SN at {address}")

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

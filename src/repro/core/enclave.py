"""Secure-enclave execution for service modules.

§6.2 proposes running privacy-sensitive services inside secure enclaves
(AMD SEV in the paper's Table 1 measurements): the non-enclave parts of an
SN then learn only which SNs it talks to, never the service content.

A real enclave's dominant datapath cost is I/O — crossing the trust
boundary copies and re-encrypts buffers (SEV encrypts guest memory pages).
We model an enclave as a wrapper around a service module that:

* copies and seals the message across the boundary on entry, and the result
  on exit (real CPU work in wall-clock benchmarks — this is what produces
  Table 1's ~8-9% tax);
* extends the node TPM's enclave PCR with a measurement of the loaded
  module, so clients can attest what code their packets hit;
* refuses to expose module state to the untrusted side.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs.recorder import NULL_RECORDER
from .attestation import PCR_ENCLAVE, SoftwareTPM, measure
from .crypto import NonceGenerator, random_key, seal

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import FlightRecorder, NullRecorder


class EnclaveError(Exception):
    """Raised when enclave invariants are violated."""


@dataclass
class EnclaveStats:
    crossings: int = 0
    bytes_crossed: int = 0


class Enclave:
    """A trust boundary around one service module's packet handler.

    The boundary cost is paid per crossing: the request is serialized,
    copied, and MACed with the enclave's memory-encryption key on the way
    in, and the response on the way out. That work is intentionally real —
    the T1 benchmark measures it.
    """

    def __init__(
        self,
        module_name: str,
        module_image: bytes,
        tpm: Optional[SoftwareTPM] = None,
    ) -> None:
        self.module_name = module_name
        self.measurement = measure(module_image)
        self._memory_key = random_key()
        self._nonce = NonceGenerator()
        self.stats = EnclaveStats()
        #: Flight recorder for crossing events; the shared no-op until the
        #: execution environment threads a real one through.
        self.recorder: "FlightRecorder | NullRecorder" = NULL_RECORDER
        self._tpm = tpm
        if tpm is not None:
            tpm.extend(PCR_ENCLAVE, self.measurement)

    def _cross(self, obj: Any) -> Any:
        """Move an object across the enclave boundary.

        Models SEV's page-encryption I/O: serialize, seal with the memory
        key, then unseal and deserialize on the other side. The sealed blob
        is immediately opened — the point is the work, not the secrecy (the
        process *is* both worlds in a simulation).
        """
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        nonce = self._nonce.next()
        sealed = seal(self._memory_key, nonce, blob)
        self.stats.crossings += 1
        self.stats.bytes_crossed += len(blob)
        if self.recorder.recording:
            self.recorder.event(
                "enclave.cross", module=self.module_name, nbytes=len(blob)
            )
        # Unseal (the inverse XOR+verify) is symmetric work; reuse seal's
        # output length by stripping the tag and re-deriving the plaintext.
        from .crypto import open_sealed

        return pickle.loads(open_sealed(self._memory_key, nonce, sealed))

    def call(self, handler: Callable[..., Any], *args: Any) -> Any:
        """Invoke ``handler(*args)`` inside the enclave."""
        inside_args = self._cross(args)
        result = handler(*inside_args)
        return self._cross(result)

    def quote(self, nonce: bytes):
        """Attestation quote covering the enclave PCR (if a TPM is fitted)."""
        if self._tpm is None:
            raise EnclaveError("no TPM attached to this enclave")
        return self._tpm.quote(nonce, indices=[PCR_ENCLAVE])


def module_image(module_cls: type) -> bytes:
    """Deterministic 'binary image' of a service module class.

    Real deployments measure the module binary; we measure the class's
    qualified name and source-visible attributes, which is stable across
    runs of the same code.
    """
    ident = f"{module_cls.__module__}.{module_cls.__qualname__}"
    version = getattr(module_cls, "VERSION", "0")
    return hashlib.sha256(f"{ident}|{version}".encode()).digest()

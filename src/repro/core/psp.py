"""PSP-style per-packet header encryption between ILP peers.

PSP's properties that ILP relies on (§4):

* a single long-lived pairwise key protects many connections, so no extra
  round trips at connection setup;
* every packet is independently decryptable (the nonce travels with it), so
  out-of-order arrival imposes no state or reordering requirements;
* keys rotate without dropping in-flight packets (epoch byte selects the
  key; the previous epoch stays valid during a grace window).

Wire format of the sealed ILP header::

    | epoch (1B) | nonce (8B) | ciphertext+tag (variable) |
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from .. import sanitize as _san
from . import crypto

_HEADER_FMT = ">B8s"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


class PSPError(Exception):
    """Raised on malformed PSP blobs or undecryptable packets."""


@dataclass(slots=True)
class PSPStats:
    packets_sealed: int = 0
    packets_opened: int = 0
    auth_failures: int = 0
    rekeys: int = 0
    bytes_sealed: int = 0


class PSPContext:
    """One direction-agnostic security association between two ILP peers.

    Both peers construct a context from the same master secret (established
    at association time — host↔SN registration or SN↔SN pipe setup).
    """

    __slots__ = (
        "_master",
        "_epoch",
        "_keys",
        "_seal_key",
        "_prefix",
        "_nonce",
        "stats",
        "_san_hwm",
    )

    def __init__(self, master_secret: bytes, epoch: int = 0) -> None:
        if len(master_secret) < 16:
            raise PSPError("master secret too short")
        self._master = master_secret
        self._epoch = epoch & 0xFF
        #: epoch -> ready-to-use subkey schedule. Rotation builds the new
        #: epoch's schedule exactly once; the per-packet path never derives.
        self._keys: dict[int, crypto.SealingKey] = {
            self._epoch: self._epoch_schedule(self._epoch)
        }
        self._seal_key = self._keys[self._epoch]
        self._prefix = bytes([self._epoch])
        self._nonce = crypto.NonceGenerator()
        self.stats = PSPStats()
        #: Sanitizer state: per-epoch high-water mark of sealed nonces.
        self._san_hwm: dict[int, int] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def seal_schedule(self) -> crypto.SealingKey:
        """The key schedule currently used to seal (the active epoch's)."""
        return self._seal_key

    def known_epochs(self) -> tuple[int, ...]:
        """Epochs this context can currently open, oldest first."""
        return tuple(sorted(self._keys))

    def cached_schedule(self, epoch: int) -> Optional[crypto.SealingKey]:
        """The resident schedule for ``epoch``, or None (never derives)."""
        return self._keys.get(epoch)

    def _san_check_nonce(self, nonce: bytes) -> None:
        """Armed check: nonces within one epoch must strictly increase.

        Nonce reuse under one key voids the keystream's confidentiality, so
        any repeat or regression is an immediate
        :class:`~repro.sanitize.SanitizeError`.
        """
        value = int.from_bytes(nonce, "big")
        high = self._san_hwm.get(self._epoch, 0)
        if value <= high:
            _san.fail(
                "nonce-monotonic",
                f"epoch {self._epoch} sealed nonce {value} after {high}",
            )
        self._san_hwm[self._epoch] = value

    def _epoch_key(self, epoch: int) -> bytes:
        return crypto.derive_key(self._master, "psp-epoch", bytes([epoch]))

    def _epoch_schedule(self, epoch: int) -> crypto.SealingKey:
        return crypto.sealing_key(self._epoch_key(epoch))

    def rotate(self) -> int:
        """Advance to the next epoch; the prior epoch stays accepted.

        Returns the new epoch. Both peers rotate on their own schedule —
        receivers accept current and previous epochs, so rotation never
        drops in-flight traffic (a property Appendix C's peering benchmark
        exercises at scale).
        """
        previous = self._epoch
        self._epoch = (self._epoch + 1) & 0xFF
        self._keys = {
            previous: self._keys[previous],
            self._epoch: self._epoch_schedule(self._epoch),
        }
        self._seal_key = self._keys[self._epoch]
        self._prefix = bytes([self._epoch])
        self.stats.rekeys += 1
        return self._epoch

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt an ILP header for the peer.

        Single-allocation fast path: the ``epoch || nonce || ct || tag``
        frame is assembled in one growing buffer via
        :meth:`crypto.SealingKey.seal_into` (no intermediate
        ``ciphertext + tag`` copy, no struct call).
        """
        nonce = self._nonce.next()
        if _san.ENABLED:
            self._san_check_nonce(nonce)
        out = bytearray(self._prefix)
        out += nonce
        self._seal_key.seal_into(out, nonce, plaintext, aad)
        stats = self.stats
        stats.packets_sealed += 1
        stats.bytes_sealed += len(plaintext)
        return bytes(out)

    def seal_batch(self, plaintexts, aad: bytes = b"") -> list[bytes]:
        """Seal many plaintexts back-to-back.

        Equivalent to ``[self.seal(pt, aad) for pt in plaintexts]`` — same
        bytes, same nonce sequence — with the schedule/prefix lookups and
        stats updates hoisted out of the loop.
        """
        seal_into = self._seal_key.seal_into
        prefix = self._prefix
        nonce_next = self._nonce.next
        san_check = self._san_check_nonce if _san.ENABLED else None
        out: list[bytes] = []
        append = out.append
        total = 0
        for plaintext in plaintexts:
            nonce = nonce_next()
            if san_check is not None:
                san_check(nonce)
            buf = bytearray(prefix)
            buf += nonce
            seal_into(buf, nonce, plaintext, aad)
            append(bytes(buf))
            total += len(plaintext)
        stats = self.stats
        stats.packets_sealed += len(out)
        stats.bytes_sealed += total
        return out

    def seal_run(self, plaintext: bytes, count: int, aad: bytes = b"") -> list[bytes]:
        """Seal the *same* plaintext ``count`` times (a flow run's egress).

        Byte-identical to ``count`` consecutive :meth:`seal` calls: nonces
        advance exactly as they would per packet. The run shape lets
        :meth:`crypto.SealingKey.seal_frames` hoist everything that does not
        depend on the nonce out of the per-packet loop.
        """
        nonces = self._nonce.take(count)
        if _san.ENABLED:
            for nonce in nonces:
                self._san_check_nonce(nonce)
        frames = self._seal_key.seal_frames(self._prefix, nonces, plaintext, aad)
        stats = self.stats
        stats.packets_sealed += count
        stats.bytes_sealed += count * len(plaintext)
        return frames

    def seal_gather(
        self, items: list[tuple[bytes, int]], aad: bytes = b""
    ) -> list[bytes]:
        """Seal several ``(plaintext, count)`` runs back-to-back, flat.

        The scatter-gather egress entry point: one nonce reservation, one
        :meth:`crypto.SealingKey.seal_scatter` pass, and one stats update
        cover every run. Byte-identical to calling :meth:`seal_run` per
        item in order — nonces advance exactly as they would per packet —
        so regrouping a burst's egress by next hop never changes what any
        single flow puts on the wire.
        """
        total = sum(count for _, count in items)
        nonces = self._nonce.take(total)
        if _san.ENABLED:
            for nonce in nonces:
                self._san_check_nonce(nonce)
        runs: list[tuple[list[bytes], bytes]] = []
        offset = 0
        total_bytes = 0
        for plaintext, count in items:
            runs.append((nonces[offset : offset + count], plaintext))
            offset += count
            total_bytes += count * len(plaintext)
        frames = self._seal_key.seal_scatter(self._prefix, runs, aad)
        stats = self.stats
        stats.packets_sealed += total
        stats.bytes_sealed += total_bytes
        return frames

    def open_batch(self, blobs, aad: bytes = b"") -> list[Optional[bytes]]:
        """Open many blobs; failures yield ``None`` instead of raising.

        Stats match per-blob :meth:`open` calls exactly (one
        ``packets_opened`` per success, one ``auth_failures`` per failure);
        the epoch-schedule lookup is a single dict probe per blob and the
        rare cases (unknown epoch, next-epoch derivation) fall back to the
        scalar path.
        """
        keys_get = self._keys.get
        min_len = _HEADER_SIZE + crypto.TAG_SIZE
        out: list[Optional[bytes]] = []
        append = out.append
        opened = 0
        failed = 0
        for blob in blobs:
            if len(blob) < min_len:
                failed += 1
                append(None)
                continue
            schedule = keys_get(blob[0])
            if schedule is None:
                try:
                    append(self.open(blob, aad))  # scalar path keeps stats
                except PSPError:
                    append(None)
                continue
            try:
                append(schedule.open(blob[1:_HEADER_SIZE], blob[_HEADER_SIZE:], aad))
                opened += 1
            except crypto.CryptoError:
                failed += 1
                append(None)
        stats = self.stats
        stats.packets_opened += opened
        stats.auth_failures += failed
        return out

    def open(self, blob: bytes, aad: bytes = b"") -> bytes:
        """Decrypt a sealed ILP header from the peer.

        Raises:
            PSPError: if the blob is malformed, the epoch unknown, or the
                authentication tag fails.
        """
        if len(blob) < _HEADER_SIZE + crypto.TAG_SIZE:
            raise PSPError("PSP blob too short")
        epoch = blob[0]
        nonce = blob[1:_HEADER_SIZE]
        schedule = self._keys.get(epoch)
        if schedule is None:
            # A peer may be one epoch ahead of us; derive forward once.
            if epoch == ((self._epoch + 1) & 0xFF):
                schedule = self._epoch_schedule(epoch)
                self._keys[epoch] = schedule
            else:
                self.stats.auth_failures += 1
                raise PSPError(f"unknown PSP epoch {epoch}")
        try:
            plaintext = schedule.open(nonce, blob[_HEADER_SIZE:], aad)
        except crypto.CryptoError as exc:
            self.stats.auth_failures += 1
            raise PSPError("PSP authentication failed") from exc
        self.stats.packets_opened += 1
        return plaintext

    @staticmethod
    def overhead() -> int:
        """Wire bytes PSP adds beyond the plaintext header."""
        return _HEADER_SIZE + crypto.TAG_SIZE


@dataclass(slots=True)
class PeerKeyStore:
    """Per-node table of PSP contexts, keyed by peer address.

    The pipe-terminus consults this on every packet: the packet's outer L3
    source selects the context used to open its ILP header, and each
    forwarding destination's context seals the outgoing header (Figure 2).
    """

    contexts: dict[str, PSPContext] = field(default_factory=dict)

    def establish(self, peer: str, master_secret: bytes) -> PSPContext:
        ctx = PSPContext(master_secret)
        self.contexts[peer] = ctx
        return ctx

    def get(self, peer: str) -> PSPContext:
        try:
            return self.contexts[peer]
        except KeyError:
            raise PSPError(f"no PSP association with peer {peer}") from None

    def has(self, peer: str) -> bool:
        return peer in self.contexts

    def prefetch(self, peers: "set[str] | list[str]") -> dict[str, PSPContext]:
        """Resolve the contexts for a burst's distinct peers in one pass.

        The sharding stage calls this once per delivery event with the
        distinct next hops it is about to seal toward; touching each
        context's :attr:`~PSPContext.seal_schedule` here pulls the active
        epoch's key schedule into the working set before the egress loop
        runs. Unknown peers are simply absent from the result (the caller
        counts the drop), mirroring a failed table probe.
        """
        contexts = self.contexts
        out: dict[str, PSPContext] = {}
        for peer in peers:
            ctx = contexts.get(peer)
            if ctx is not None:
                _ = ctx.seal_schedule
                out[peer] = ctx
        return out

    def remove(self, peer: str) -> None:
        self.contexts.pop(peer, None)

    def __len__(self) -> int:
        return len(self.contexts)


def pairwise_secret(addr_a: str, addr_b: str, realm: bytes = b"interedge") -> bytes:
    """Deterministic shared secret for a peer pair.

    Stands in for the out-of-band key exchange (e.g. Noise/IKE) that a real
    deployment would run when an association is created; both sides derive
    the same secret from their addresses, keeping simulations reproducible.
    """
    lo, hi = sorted((addr_a, addr_b))
    return crypto.derive_key(
        crypto.derive_key(realm.ljust(16, b"\x00"), "pair-root"),
        "pair",
        f"{lo}|{hi}".encode(),
    )

"""Edomains: autonomous domains of edge control (§3.1).

An edomain is one IESP's unit of administration: a set of SNs, a core
(persistent watchable store + membership logic), and designated border SNs
that hold the long-lived pipes to other edomains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..control.core_store import CoreStore
from ..control.lookup import GlobalLookupService
from ..control.membership import EdomainMembershipCore, SNMembershipAgent
from .service_node import ServiceNode


class EdomainError(Exception):
    """Raised on invalid edomain configuration."""


@dataclass
class CoreClient:
    """The handle an SN's services use to reach edomain/global control.

    Exposed to service modules via ``ServiceContext.control_plane()``.
    """

    edomain_name: str
    membership: SNMembershipAgent
    core: EdomainMembershipCore
    lookup: GlobalLookupService
    store: CoreStore


class Edomain:
    """One autonomous domain of edge control."""

    def __init__(self, name: str, lookup: GlobalLookupService) -> None:
        self.name = name
        self.lookup = lookup
        self.store = CoreStore(name)
        self.membership_core = EdomainMembershipCore(name, self.store, lookup)
        self.sns: dict[str, ServiceNode] = {}
        self._border_sn: Optional[str] = None

    def add_sn(self, sn: ServiceNode) -> ServiceNode:
        if sn.edomain_name != self.name:
            raise EdomainError(
                f"SN {sn.name} belongs to edomain {sn.edomain_name!r}, "
                f"not {self.name!r}"
            )
        if sn.address in self.sns:
            raise EdomainError(f"duplicate SN address {sn.address}")
        self.sns[sn.address] = sn
        agent = SNMembershipAgent(sn.address, self.membership_core, self.lookup)
        sn.core_client = CoreClient(
            edomain_name=self.name,
            membership=agent,
            core=self.membership_core,
            lookup=self.lookup,
            store=self.store,
        )
        if self._border_sn is None:
            self._border_sn = sn.address
        return sn

    @property
    def border_sn(self) -> ServiceNode:
        if self._border_sn is None:
            raise EdomainError(f"edomain {self.name} has no SNs")
        return self.sns[self._border_sn]

    @property
    def border_address(self) -> Optional[str]:
        """Current designated border SN address (None before any SN joins)."""
        return self._border_sn

    def designate_border(self, address: str) -> None:
        """Designate the border SN and publish it in the core store.

        The ``resilience/border`` key is the authoritative record;
        resilience agents watching the store remap every SN's border-peer
        table when it changes (border failover, §3.3).
        """
        if address not in self.sns:
            raise EdomainError(f"no SN at {address} in edomain {self.name}")
        self._border_sn = address
        self.store.put("resilience/border", address)

    def connect_internal(self, latency: float = 0.002) -> int:
        """Full-mesh pipes between this edomain's SNs; returns pipe count."""
        nodes = list(self.sns.values())
        pipes = 0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if not a.has_pipe_to(b.address):
                    a.establish_pipe(b, latency=latency)
                    pipes += 1
        return pipes

    def sn_addresses(self) -> list[str]:
        return sorted(self.sns)

"""The pipe-terminus decision cache (match-action table).

Per §4 and Appendix B:

* keys are exact-match on (L3 source, service ID, connection ID);
* the action says whether and to whom to forward (possibly multiple
  destinations — multicast fans out here);
* entries may be **evicted arbitrarily, even for active connections** —
  correctness must never depend on residency, so a miss simply punts the
  packet to the service module, which recomputes the decision;
* services can query per-entry hit counts to learn whether a connection is
  still active (the "recently used" API, §B.2).

The implementation mimics a switch-ASIC exact-match table: bounded
capacity, O(1) lookup, pluggable eviction (LRU / FIFO / random).
"""

from __future__ import annotations

import enum
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from .. import sanitize as _san


class CacheError(Exception):
    """Raised for invalid cache configuration."""


class Action(enum.Enum):
    FORWARD = "forward"
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Exact-match key: (L3 source, service ID, connection ID).

    The hash is computed once at construction and cached in a slot: one
    key probes several tables on the fast path (entry table, position map,
    connection index) and the sharding stage batches many keys through
    :meth:`DecisionCache.lookup_many`, so the per-probe tuple hash is
    hoisted to construction time.
    """

    src: str
    service_id: int
    connection_id: int
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        # In-process dict-probe memo only: same per-process semantics as
        # the builtin tuple hash it replaces, never persisted or replayed.
        # repro: allow(DET001) dict-probe memo, not replayed state
        h = hash((self.src, self.service_id, self.connection_id))
        object.__setattr__(self, "_hash", h)

    def __hash__(self) -> int:
        return self._hash


@dataclass(frozen=True, slots=True)
class ForwardTarget:
    """One forwarding destination for a matched packet.

    ``peer`` is the next-hop ILP peer (an SN or a host). ``tlv_updates``
    lets the installing service rewrite header TLVs on the fast path (e.g.
    refresh DEST_SN after an inter-edomain handoff) without slow-path
    involvement.
    """

    peer: str
    tlv_updates: tuple[tuple[int, bytes], ...] = ()


@dataclass(frozen=True, slots=True)
class Decision:
    action: Action
    targets: tuple[ForwardTarget, ...] = ()

    def __post_init__(self) -> None:
        if self.action is Action.FORWARD and not self.targets:
            raise CacheError("FORWARD decision needs at least one target")
        if self.action is Action.DROP and self.targets:
            raise CacheError("DROP decision cannot carry targets")

    @staticmethod
    def forward(*peers: str) -> "Decision":
        return Decision(
            action=Action.FORWARD,
            targets=tuple(ForwardTarget(peer) for peer in peers),
        )

    @staticmethod
    def drop() -> "Decision":
        return Decision(action=Action.DROP)


class EvictionPolicy(enum.Enum):
    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass(slots=True)
class _Entry:
    decision: Decision
    installed_at: float
    hits: int = 0
    last_hit_at: Optional[float] = None


@dataclass(slots=True)
class CacheStats:
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    installs: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_hits: int = 0
    stale_misses: int = 0
    stale_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DecisionCache:
    """Bounded exact-match decision cache.

    Alongside the live table sits a bounded **stale-decision shelf**: the
    last decision ever installed per key, kept (LRU-bounded at
    ``stale_capacity``) even after the live entry is evicted or replaced.
    It exists solely for ``fail_static`` degradation — when a service's
    circuit is open, the terminus may serve a connection's last-known
    decision instead of dropping — and is **never** consulted by the fast
    path. Teardown (:meth:`invalidate`, :meth:`invalidate_connection`) and
    failover (:meth:`invalidate_by_target`) purge it so a torn-down
    connection or a dead next hop can't be resurrected from the shelf, but
    capacity eviction deliberately leaves it alone: surviving arbitrary
    eviction is the point.
    """

    __slots__ = (
        "capacity",
        "policy",
        "_rng",
        "_entries",
        "_by_conn",
        "_key_list",
        "_key_pos",
        "stale_capacity",
        "_stale",
        "stats",
    )

    def __init__(
        self,
        capacity: int = 65536,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        rng: Optional[random.Random] = None,
        stale_capacity: int = 1024,
    ) -> None:
        if capacity < 1:
            raise CacheError("capacity must be >= 1")
        if stale_capacity < 0:
            raise CacheError("stale_capacity must be >= 0")
        self.capacity = capacity
        self.policy = policy
        self._rng = rng or random.Random(0)
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        #: Secondary index for O(victims) connection teardown instead of a
        #: full-table scan: (service_id, connection_id) -> keys.
        self._by_conn: dict[tuple[int, int], set[CacheKey]] = {}
        #: Random-access view of the key set (swap-with-last removal) so
        #: RANDOM eviction picks a victim without copying the whole table.
        self._key_list: list[CacheKey] = []
        self._key_pos: dict[CacheKey, int] = {}
        self.stale_capacity = stale_capacity
        #: Last-known decision per key for ``fail_static`` degradation;
        #: LRU-bounded at ``stale_capacity`` (0 disables the shelf).
        self._stale: "OrderedDict[CacheKey, Decision]" = OrderedDict()
        self.stats = CacheStats()

    # -- secondary-index maintenance ----------------------------------
    def _index_add(self, key: CacheKey) -> None:
        self._by_conn.setdefault(
            (key.service_id, key.connection_id), set()
        ).add(key)
        self._key_pos[key] = len(self._key_list)
        self._key_list.append(key)

    def _index_discard(self, key: CacheKey) -> None:
        conn = (key.service_id, key.connection_id)
        members = self._by_conn.get(conn)
        if members is not None:
            members.discard(key)
            if not members:
                del self._by_conn[conn]
        pos = self._key_pos.pop(key, None)
        if pos is not None:
            last = self._key_list.pop()
            if pos < len(self._key_list):
                self._key_list[pos] = last
                self._key_pos[last] = pos

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def lookup(self, key: CacheKey, now: float = 0.0) -> Optional[Decision]:
        """Query the cache; updates hit bookkeeping."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.hits += 1
        entry.last_hit_at = now
        if self.policy is EvictionPolicy.LRU:
            self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.decision

    def lookup_run(
        self, key: CacheKey, count: int, now: float = 0.0
    ) -> Optional[Decision]:
        """Query once for a run of ``count`` packets sharing ``key``.

        On a hit, bookkeeping is identical to ``count`` scalar
        :meth:`lookup` calls — ``count`` stat lookups/hits, ``count`` entry
        hits, one ``last_hit_at`` stamp, one LRU touch (moving the same key
        ``count`` times equals moving it once) — but the table is probed a
        single time.

        On a miss, *nothing* is counted and ``None`` is returned: the first
        packet of a cold run may install the decision the rest of the run
        then hits, so the caller must replay the run per-packet through
        scalar lookups (which count themselves). That keeps run-batched
        stats byte-for-byte equal to the per-packet path.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        stats = self.stats
        stats.lookups += count
        stats.hits += count
        entry.hits += count
        entry.last_hit_at = now
        if self.policy is EvictionPolicy.LRU:
            self._entries.move_to_end(key)
        return entry.decision

    def lookup_many(
        self,
        keys: list[CacheKey],
        counts: Optional[list[int]] = None,
        now: float = 0.0,
    ) -> list[Optional[Decision]]:
        """Query many keys in one pass; ``out[i]`` is ``keys[i]``'s decision.

        With ``counts`` (the sharding stage's shape: one entry per flow
        group, ``counts[i]`` packets behind ``keys[i]``), each hit is
        charged with :meth:`lookup_run` bookkeeping — ``counts[i]``
        lookups/hits, one ``last_hit_at`` stamp, one LRU touch — and each
        miss charges *nothing* (the caller replays the group per-packet
        through scalar lookups, which count themselves).

        Without ``counts``, every key is charged exactly like a scalar
        :meth:`lookup` call, misses included.

        Duplicate keys are fine: later occurrences see the same entry and
        stack their bookkeeping, exactly as repeated scalar calls would.
        The table itself is probed once per key either way.
        """
        entries_get = self._entries.get
        stats = self.stats
        lru = self.policy is EvictionPolicy.LRU
        move_to_end = self._entries.move_to_end
        out: list[Optional[Decision]] = []
        append = out.append
        if counts is None:
            stats.lookups += len(keys)
            for key in keys:
                entry = entries_get(key)
                if entry is None:
                    stats.misses += 1
                    append(None)
                    continue
                entry.hits += 1
                entry.last_hit_at = now
                if lru:
                    move_to_end(key)
                stats.hits += 1
                append(entry.decision)
            return out
        hits = 0
        for key, count in zip(keys, counts):
            entry = entries_get(key)
            if entry is None:
                append(None)
                continue
            hits += count
            entry.hits += count
            entry.last_hit_at = now
            if lru:
                move_to_end(key)
            append(entry.decision)
        stats.lookups += hits
        stats.hits += hits
        return out

    def _stale_put(self, key: CacheKey, decision: Decision) -> None:
        """Remember ``key``'s latest decision on the bounded stale shelf."""
        if self.stale_capacity == 0:
            return
        stale = self._stale
        if key in stale:
            stale[key] = decision
            stale.move_to_end(key)
            return
        while len(stale) >= self.stale_capacity:
            stale.popitem(last=False)
            self.stats.stale_evictions += 1
        stale[key] = decision

    def stale_lookup(self, key: CacheKey) -> Optional[Decision]:
        """Last-known decision for ``key`` (``fail_static`` degradation).

        Not a fast-path lookup: no hit bookkeeping, no LRU touch on the
        live table. The shelf's own LRU *is* refreshed so connections that
        keep degrading stay resident.
        """
        decision = self._stale.get(key)
        if decision is None:
            self.stats.stale_misses += 1
            return None
        self._stale.move_to_end(key)
        self.stats.stale_hits += 1
        return decision

    @property
    def stale_count(self) -> int:
        """Entries currently on the stale shelf (bounded-memory checks)."""
        return len(self._stale)

    def clear_stale(self) -> int:
        """Wipe the stale shelf (node crash); returns the evicted count."""
        count = len(self._stale)
        self._stale.clear()
        return count

    def install(self, key: CacheKey, decision: Decision, now: float = 0.0) -> None:
        """Install or replace an entry, evicting if at capacity."""
        self._stale_put(key, decision)
        if key in self._entries:
            self._entries[key].decision = decision
            if self.policy is EvictionPolicy.LRU:
                self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[key] = _Entry(decision=decision, installed_at=now)
        self._index_add(key)
        self.stats.installs += 1
        if _san.ENABLED:
            self.check_index_coherence()

    def install_many(
        self, pairs: list[tuple[CacheKey, Decision]], now: float = 0.0
    ) -> None:
        """Install or replace many entries in one pass.

        Bookkeeping is identical to calling :meth:`install` per pair in
        order — replacement semantics, LRU touches, capacity eviction, and
        ``stats.installs`` all match — but the armed coherence scan runs
        once for the whole batch instead of once per mutation (the batch is
        a single logical mutation: a verdict's install set, or a batched
        invocation's combined installs).
        """
        entries = self._entries
        lru = self.policy is EvictionPolicy.LRU
        capacity = self.capacity
        installs = 0
        for key, decision in pairs:
            self._stale_put(key, decision)
            entry = entries.get(key)
            if entry is not None:
                entry.decision = decision
                if lru:
                    entries.move_to_end(key)
                continue
            while len(entries) >= capacity:
                self._evict_one()
            entries[key] = _Entry(decision=decision, installed_at=now)
            self._index_add(key)
            installs += 1
        self.stats.installs += installs
        if _san.ENABLED and pairs:
            self.check_index_coherence()

    def invalidate(self, key: CacheKey) -> bool:
        """Remove one entry (service teardown). Returns True if present."""
        self._stale.pop(key, None)
        if self._entries.pop(key, None) is not None:
            self._index_discard(key)
            self.stats.invalidations += 1
            if _san.ENABLED:
                self.check_index_coherence()
            return True
        return False

    def invalidate_connection(self, service_id: int, connection_id: int) -> int:
        """Remove all entries for a (service, connection), any source.

        O(victims) via the secondary index, not a full-table scan — a busy
        SN tears down connections continuously while the table holds tens of
        thousands of unrelated entries.
        """
        # The shelf may hold keys the live table already evicted, so it is
        # scanned independently (bounded at ``stale_capacity``): a torn-down
        # connection must not be resurrectable via ``fail_static``.
        for key in [
            k
            for k in self._stale
            if k.service_id == service_id and k.connection_id == connection_id
        ]:
            del self._stale[key]
        victims = self._by_conn.get((service_id, connection_id))
        if not victims:
            return 0
        count = len(victims)
        for key in list(victims):
            del self._entries[key]
            self._index_discard(key)
        self.stats.invalidations += count
        if _san.ENABLED:
            self.check_index_coherence()
            if (service_id, connection_id) in self._by_conn:
                _san.fail(
                    "cache-coherence",
                    f"connection ({service_id}, {connection_id}) still indexed "
                    "after invalidate_connection",
                )
        return count

    def invalidate_by_target(self, peer: str) -> int:
        """Remove every entry whose decision forwards via ``peer``.

        The failover path: when a next-hop SN is declared dead, all
        fast-path state pointing at it must go so the next packet of each
        affected connection punts and re-resolves onto the repaired
        route. Full-table scan — failover is rare and correctness-first;
        the common-case operations stay O(1).
        """
        # A dead next hop must not be served from the shelf either.
        for key in [
            k
            for k, decision in self._stale.items()
            if decision.action is Action.FORWARD
            and any(target.peer == peer for target in decision.targets)
        ]:
            del self._stale[key]
        victims = [
            key
            for key, entry in self._entries.items()
            if entry.decision.action is Action.FORWARD
            and any(target.peer == peer for target in entry.decision.targets)
        ]
        for key in victims:
            del self._entries[key]
            self._index_discard(key)
        self.stats.invalidations += len(victims)
        if _san.ENABLED:
            self.check_index_coherence()
            survivors = self.count_targeting(peer)
            if survivors:
                _san.fail(
                    "cache-coherence",
                    f"{survivors} entr(y/ies) still forward via {peer!r} "
                    "after invalidate_by_target",
                )
        return len(victims)

    def evict_random_fraction(self, fraction: float) -> int:
        """Forcibly evict a fraction of entries.

        Used by the property tests and the A-CACHE ablation to prove that
        correctness never depends on residency (Appendix B requirement).
        """
        count = int(len(self._entries) * fraction)
        victims = self._rng.sample(self._key_list, k=count)
        for key in victims:
            del self._entries[key]
            self._index_discard(key)
        self.stats.evictions += count
        if _san.ENABLED:
            self.check_index_coherence()
        return count

    def hit_count(self, key: CacheKey) -> Optional[int]:
        """Per-entry hit counter (the ASIC-supported API of §B.2)."""
        entry = self._entries.get(key)
        return entry.hits if entry is not None else None

    def recently_used(self, key: CacheKey, now: float, window: float) -> bool:
        """Was this entry hit within ``window`` seconds before ``now``?

        Services use this to decide whether a connection is still active
        before expiring their internal state (§B.2).
        """
        entry = self._entries.get(key)
        if entry is None or entry.last_hit_at is None:
            return False
        return (now - entry.last_hit_at) <= window

    def _evict_one(self) -> None:
        if not self._entries:
            return
        if self.policy is EvictionPolicy.RANDOM:
            key = self._key_list[self._rng.randrange(len(self._key_list))]
            del self._entries[key]
        else:
            # LRU keeps recency order; FIFO keeps insertion order. Either
            # way the first item is the right victim.
            key, _ = self._entries.popitem(last=False)
        self._index_discard(key)
        self.stats.evictions += 1

    def keys(self) -> list[CacheKey]:
        return list(self._entries)

    # -- introspection / sanitizer API ---------------------------------
    def snapshot_entries(
        self,
    ) -> list[tuple[CacheKey, Decision, int, float, Optional[float]]]:
        """Point-in-time ``(key, decision, hits, installed_at, last_hit_at)``
        rows in table order (tests, debugging)."""
        return [
            (key, e.decision, e.hits, e.installed_at, e.last_hit_at)
            for key, e in self._entries.items()
        ]

    def count_targeting(self, peer: str) -> int:
        """How many resident FORWARD entries name ``peer`` as a target."""
        return sum(
            1
            for entry in self._entries.values()
            if entry.decision.action is Action.FORWARD
            and any(target.peer == peer for target in entry.decision.targets)
        )

    def check_index_coherence(self) -> None:
        """Verify the secondary indexes agree with the entry table.

        Raises :class:`~repro.sanitize.SanitizeError` on any violation.
        Above :data:`repro.sanitize.FULL_SCAN_LIMIT` entries only the O(1)
        cardinality invariants are checked, so the sanitizer can run after
        every mutation without turning the datapath quadratic.
        """
        n = len(self._entries)
        if len(self._key_list) != n or len(self._key_pos) != n:
            _san.fail(
                "cache-coherence",
                f"key index size mismatch: {n} entries, "
                f"{len(self._key_list)} in key list, "
                f"{len(self._key_pos)} in position map",
            )
        if n > _san.FULL_SCAN_LIMIT:
            return
        for pos, key in enumerate(self._key_list):
            if self._key_pos.get(key) != pos:
                _san.fail(
                    "cache-coherence",
                    f"key {key} at list position {pos} but position map "
                    f"says {self._key_pos.get(key)}",
                )
            if key not in self._entries:
                _san.fail(
                    "cache-coherence", f"indexed key {key} missing from table"
                )
        indexed = 0
        for conn, members in self._by_conn.items():
            if not members:
                _san.fail(
                    "cache-coherence", f"empty index bucket for connection {conn}"
                )
            indexed += len(members)
            for key in members:
                if (key.service_id, key.connection_id) != conn:
                    _san.fail(
                        "cache-coherence",
                        f"key {key} filed under wrong connection {conn}",
                    )
                if key not in self._entries:
                    _san.fail(
                        "cache-coherence",
                        f"connection-indexed key {key} missing from table",
                    )
        if indexed != n:
            _san.fail(
                "cache-coherence",
                f"connection index covers {indexed} keys, table has {n}",
            )

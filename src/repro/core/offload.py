"""Pipe-terminus offload programs (Appendix B.1).

Appendix B: "our design allows services to offload functionality to the
pipe-terminus if a programmable ASIC with an appropriate isolation
mechanism (e.g., using Menshen) is used." This module models that:

* an :class:`OffloadProgram` is a bounded sequence of match+action rules
  over the fields an ASIC parser exposes (service ID, connection ID,
  selected TLVs, payload length) — no arbitrary computation;
* actions are the ASIC-feasible set: forward to a peer, drop, count,
  rate-limit (token-bucket meters are standard ASIC hardware);
* a :class:`TerminusOffloadEngine` enforces Menshen-style isolation:
  per-service quotas on rules and meters, with programs unable to match
  on (or affect) other services' traffic.

The terminus consults offload programs *between* the decision cache and
the slow-path punt: a cache hit is still the fastest path; an offload
match avoids the slow path without the generality of software.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from .ilp import ILPHeader
from ..sched.token_bucket import TokenBucket


class OffloadError(Exception):
    """Raised on quota violations or malformed programs."""


class MatchField(enum.Enum):
    """Header fields an ASIC parser exposes to offload rules."""

    CONNECTION_ID = "connection_id"
    FLAGS = "flags"
    TLV_PRESENT = "tlv_present"  # operand: TLV type
    TLV_EQUALS = "tlv_equals"  # operand: (TLV type, value bytes)
    PAYLOAD_LEN_GT = "payload_len_gt"  # operand: threshold
    SRC_ADDR = "src_addr"  # operand: exact source


@dataclass(frozen=True)
class Match:
    field: MatchField
    operand: Any = None

    def evaluate(self, src: str, header: ILPHeader, payload_len: int) -> bool:
        if self.field is MatchField.CONNECTION_ID:
            return header.connection_id == self.operand
        if self.field is MatchField.FLAGS:
            return bool(header.flags & self.operand)
        if self.field is MatchField.TLV_PRESENT:
            return self.operand in header.tlvs
        if self.field is MatchField.TLV_EQUALS:
            tlv_type, value = self.operand
            return header.tlvs.get(tlv_type) == value
        if self.field is MatchField.PAYLOAD_LEN_GT:
            return payload_len > self.operand
        if self.field is MatchField.SRC_ADDR:
            return src == self.operand
        return False


class ActionKind(enum.Enum):
    FORWARD = "forward"  # operand: peer address
    DROP = "drop"
    COUNT = "count"  # falls through to the next rule / slow path
    METER = "meter"  # operand: meter name; over-rate packets drop


@dataclass(frozen=True)
class OffloadAction:
    kind: ActionKind
    operand: Any = None


@dataclass
class OffloadRule:
    """All matches must hold (AND); then the action applies."""

    matches: tuple[Match, ...]
    action: OffloadAction
    hits: int = 0

    def matches_packet(self, src: str, header: ILPHeader, payload_len: int) -> bool:
        return all(m.evaluate(src, header, payload_len) for m in self.matches)


@dataclass
class OffloadProgram:
    """One service's rules + meters at the terminus."""

    service_id: int
    rules: list[OffloadRule] = field(default_factory=list)
    meters: dict[str, TokenBucket] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class OffloadQuota:
    """The Menshen-style per-service resource bound."""

    max_rules: int = 16
    max_meters: int = 4


@dataclass(frozen=True, slots=True)
class OffloadResult:
    """What the engine decided for a packet (None kind = no match)."""

    kind: Optional[ActionKind]
    peer: Optional[str] = None


#: Shared no-match result: ``process`` returns this for every packet that no
#: rule claims, so the (very common) fall-through allocates nothing.
_NO_MATCH = OffloadResult(kind=None)
_DROP = OffloadResult(kind=ActionKind.DROP)


class TerminusOffloadEngine:
    """Holds every service's offload program with isolation enforced."""

    def __init__(self, quota: OffloadQuota = OffloadQuota()) -> None:
        self.quota = quota
        self._programs: dict[int, OffloadProgram] = {}
        self.offload_hits = 0
        self.offload_drops = 0

    # -- programming (service-facing API) ----------------------------------
    def program_for(self, service_id: int) -> OffloadProgram:
        return self._programs.setdefault(service_id, OffloadProgram(service_id))

    def install_rule(
        self, service_id: int, matches: tuple[Match, ...], action: OffloadAction
    ) -> OffloadRule:
        program = self.program_for(service_id)
        if len(program.rules) >= self.quota.max_rules:
            raise OffloadError(
                f"service {service_id} exceeded its rule quota "
                f"({self.quota.max_rules})"
            )
        if action.kind is ActionKind.METER and action.operand not in program.meters:
            raise OffloadError(f"meter {action.operand!r} not provisioned")
        rule = OffloadRule(matches=matches, action=action)
        program.rules.append(rule)
        return rule

    def provision_meter(
        self, service_id: int, name: str, rate_bps: float, burst_bytes: int
    ) -> None:
        program = self.program_for(service_id)
        if len(program.meters) >= self.quota.max_meters:
            raise OffloadError(
                f"service {service_id} exceeded its meter quota "
                f"({self.quota.max_meters})"
            )
        program.meters[name] = TokenBucket(rate_bps, burst_bytes)

    def remove_program(self, service_id: int) -> None:
        self._programs.pop(service_id, None)

    def program_ids(self) -> tuple[int, ...]:
        """Service IDs with an installed program (inspection/tests)."""
        return tuple(self._programs)

    def programs(self) -> tuple[OffloadProgram, ...]:
        """All installed programs (inspection/tests)."""
        return tuple(self._programs.values())

    def has_program(self, service_id: int) -> bool:
        """Cheap datapath guard: does any program exist for this service?

        The terminus checks this before :meth:`process` so that services
        with nothing offloaded (the overwhelmingly common case) cost one
        dict probe per *run* instead of a full engine call per packet.
        """
        return service_id in self._programs

    # -- datapath -----------------------------------------------------------
    def process(
        self,
        src: str,
        header: ILPHeader,
        payload_len: int,
        now: float,
    ) -> OffloadResult:
        """Run the owning service's program over a packet.

        Isolation is structural: only the program registered under the
        packet's own service ID ever sees it.
        """
        program = self._programs.get(header.service_id)
        if program is None:
            return _NO_MATCH
        for rule in program.rules:
            if not rule.matches_packet(src, header, payload_len):
                continue
            rule.hits += 1
            action = rule.action
            if action.kind is ActionKind.COUNT:
                program.counters[str(action.operand)] = (
                    program.counters.get(str(action.operand), 0) + 1
                )
                continue  # counting falls through
            if action.kind is ActionKind.METER:
                meter = program.meters[action.operand]
                if meter.try_consume(payload_len, now):
                    continue  # within rate: fall through
                self.offload_drops += 1
                return _DROP
            if action.kind is ActionKind.DROP:
                self.offload_drops += 1
                return _DROP
            if action.kind is ActionKind.FORWARD:
                self.offload_hits += 1
                return OffloadResult(kind=ActionKind.FORWARD, peer=action.operand)
        return _NO_MATCH

    def stats(self) -> dict[int, dict[str, Any]]:
        return {
            sid: {
                "rules": len(p.rules),
                "meters": len(p.meters),
                "counters": dict(p.counters),
                "rule_hits": [r.hits for r in p.rules],
            }
            for sid, p in self._programs.items()
        }

"""Service invocation channels: IPC vs shared memory.

The paper's prototype invokes service modules from the pipe-terminus over
IPC, which "obviously adds overhead" (§6.3); the no-service row of Table 1
shows what the datapath costs when that hop is absent ("as if we implemented
service communication through shared memory rings").

We model both:

* ``IPC`` performs a real marshal/unmarshal round trip (message framing +
  copies) in wall-clock benchmarks, so Table 1's ~3× gap between
  null-service and no-service emerges from actual work, not a constant.
* ``SHARED_MEMORY`` passes references directly (one bounded copy to model
  the ring write).

Batched invocation (:meth:`InvocationChannel.invoke_batch`) carries a whole
cold span's punts in **one** serialize/deserialize round trip per direction
— the miss-path analogue of OVS upcall batching: a cold-flow storm pays one
boundary crossing per burst span instead of one per punted packet.

In simulated time, a :class:`CostModel` supplies per-invocation virtual
latencies so netsim experiments see the same relative costs.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs.recorder import NULL_RECORDER

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import FlightRecorder, NullRecorder
    from .ilp import ILPHeader


class InvocationMode(enum.Enum):
    IPC = "ipc"
    SHARED_MEMORY = "shm"


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs (seconds) used when running under netsim.

    Defaults are calibrated to Table 1: the no-service path costs
    1/377,420 s ≈ 2.65 µs of terminus CPU per packet and 12.4 µs latency;
    the null-service path lands at 1/120,018 s ≈ 8.3 µs per packet and
    33 µs latency; enclaves add ~8-9%.

    ``bill_failed_invocations`` makes the failed-punt policy explicit: a
    punt whose handler raises ``ServiceError`` still crossed the process
    boundary and burned service CPU, so by default it bills the same
    latency as a successful one. Set it to ``False`` to model a fail-fast
    boundary that rejects before doing the work.
    """

    terminus_packet: float = 2.65e-6  # fast-path CPU per packet
    terminus_latency: float = 12.4e-6  # unloaded one-packet latency
    ipc_round_trip: float = 15.0e-6  # extra latency for the IPC hop
    shm_round_trip: float = 1.0e-6  # shared-memory ring round trip
    enclave_io: float = 1.0e-6  # enclave world-switch per crossing
    service_packet: float = 5.6e-6  # service CPU per punted packet
    bill_failed_invocations: bool = True  # failed punts still bill latency
    #: Default slow-path deadline per punt (seconds); a per-service
    #: :class:`~repro.core.overload.ServicePolicy` may override it. A punt
    #: that times out bills the full deadline as latency — the wait is the
    #: backpressure a circuit breaker then removes. ``None`` disables
    #: deadline enforcement entirely.
    punt_deadline: Optional[float] = 2.5e-3

    def invocation_latency(self, mode: InvocationMode, enclave: bool) -> float:
        base = (
            self.ipc_round_trip
            if mode is InvocationMode.IPC
            else self.shm_round_trip
        )
        if enclave:
            base += 2 * self.enclave_io  # enter + exit
        return base

    def batch_invocation_latency(
        self, mode: InvocationMode, enclave_services: int
    ) -> float:
        """Latency of one *batched* invocation carrying many punts.

        The whole batch makes a single boundary round trip; each
        enclave-hosted service in the batch adds one enter + exit crossing
        pair (the execution environment dispatches per-service groups, so
        an enclave is entered once per group, not once per punt). Per-punt
        service CPU (``service_packet``) is charged by the caller on top.
        With one non-enclaved punt this equals
        :meth:`invocation_latency` exactly.
        """
        base = (
            self.ipc_round_trip
            if mode is InvocationMode.IPC
            else self.shm_round_trip
        )
        return base + enclave_services * 2 * self.enclave_io


@dataclass(slots=True)
class IPCStats:
    """Invocation-channel counters.

    ``invocations`` counts punted packets (a batch of *k* counts *k*);
    ``batches``/``max_batch`` count :meth:`InvocationChannel.invoke_batch`
    calls and the largest batch seen. Byte accounting is per mode:
    ``ipc_bytes`` is the marshalled request+response framing, ``shm_bytes``
    the header copies the shared-memory ring write makes;
    ``bytes_marshalled`` is their sum (the total boundary-copy volume).
    """

    invocations: int = 0
    batches: int = 0
    max_batch: int = 0
    bytes_marshalled: int = 0
    ipc_bytes: int = 0
    shm_bytes: int = 0

    def _account(self, mode: InvocationMode, nbytes: int) -> None:
        self.bytes_marshalled += nbytes
        if mode is InvocationMode.IPC:
            self.ipc_bytes += nbytes
        else:
            self.shm_bytes += nbytes


class InvocationChannel:
    """Carries punted packets from the pipe-terminus to a service module.

    ``invoke`` takes a zero-argument-bound handler plus the message parts to
    marshal; in IPC mode the parts make a full serialize/deserialize round
    trip each way, mirroring the prototype's process boundary.

    ``invoke_batch`` carries many punts across the boundary at once: one
    marshal/unmarshal round trip per direction for the whole batch (IPC
    mode), or one ring write per punt header (shared-memory mode). The
    per-punt framing/pickling overhead that dominates a cold-flow storm is
    paid once per batch instead.
    """

    def __init__(self, mode: InvocationMode = InvocationMode.IPC) -> None:
        self.mode = mode
        self.stats = IPCStats()
        #: Flight recorder for boundary spans; the shared no-op by default
        #: (installed by ``ServiceNode.enable_observability``).
        self.recorder: "FlightRecorder | NullRecorder" = NULL_RECORDER

    def invoke(
        self,
        handler: Callable[["ILPHeader", Any], Any],
        header: "ILPHeader",
        packet: Any,
    ) -> Any:
        stats = self.stats
        stats.invocations += 1
        recorder = self.recorder
        span = recorder.begin_span("ipc.invoke", mode=self.mode.value, n=1)
        try:
            if self.mode is InvocationMode.IPC:
                request = pickle.dumps(
                    (header, packet), protocol=pickle.HIGHEST_PROTOCOL
                )
                stats._account(self.mode, len(request))
                rx_header, rx_packet = pickle.loads(request)
                result = handler(rx_header, rx_packet)
                response = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                stats._account(self.mode, len(response))
                return pickle.loads(response)
            # Shared-memory mode: hand over references; model the ring-buffer
            # write with a single small copy of the header bytes.
            stats._account(self.mode, len(bytes(header.encode())))
            return handler(header, packet)
        finally:
            recorder.end_span(span)

    def invoke_batch(
        self,
        handler: Callable[..., list[Any]],
        punts: list[tuple["ILPHeader", Any]],
        deadlines: Optional[list[Optional[float]]] = None,
    ) -> list[Any]:
        """Invoke ``handler`` on a whole batch of punts in one round trip.

        Returns the handler's result list (one entry per punt, in order).
        In IPC mode the batch makes exactly one serialize/deserialize round
        trip per direction — the request pickles every punt together, the
        response every verdict — so the boundary cost is amortized across
        the batch. Shared-memory mode passes references and models one ring
        write per punt header.

        ``deadlines`` (one optional per-punt slow-path deadline, same order
        as ``punts``) rides the request marshal when present, so the
        execution environment enforces deadlines on the far side of the
        boundary exactly as a real slow-path daemon would. Without
        deadlines the wire format — and therefore the byte accounting — is
        unchanged.
        """
        stats = self.stats
        stats.invocations += len(punts)
        stats.batches += 1
        if len(punts) > stats.max_batch:
            stats.max_batch = len(punts)
        recorder = self.recorder
        span = recorder.begin_span(
            "ipc.invoke", mode=self.mode.value, n=len(punts)
        )
        try:
            if self.mode is InvocationMode.IPC:
                if deadlines is None:
                    request = pickle.dumps(
                        punts, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    stats._account(self.mode, len(request))
                    rx_punts = pickle.loads(request)
                    results = handler(rx_punts)
                else:
                    request = pickle.dumps(
                        (punts, deadlines), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    stats._account(self.mode, len(request))
                    rx_punts, rx_deadlines = pickle.loads(request)
                    results = handler(rx_punts, rx_deadlines)
                response = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
                stats._account(self.mode, len(response))
                out: list[Any] = pickle.loads(response)
                return out
            for punt_header, _packet in punts:
                stats._account(self.mode, len(bytes(punt_header.encode())))
            if deadlines is None:
                return handler(punts)
            return handler(punts, deadlines)
        finally:
            recorder.end_span(span)

"""Service invocation channels: IPC vs shared memory.

The paper's prototype invokes service modules from the pipe-terminus over
IPC, which "obviously adds overhead" (§6.3); the no-service row of Table 1
shows what the datapath costs when that hop is absent ("as if we implemented
service communication through shared memory rings").

We model both:

* ``IPC`` performs a real marshal/unmarshal round trip (message framing +
  copies) in wall-clock benchmarks, so Table 1's ~3× gap between
  null-service and no-service emerges from actual work, not a constant.
* ``SHARED_MEMORY`` passes references directly (one bounded copy to model
  the ring write).

In simulated time, a :class:`CostModel` supplies per-invocation virtual
latencies so netsim experiments see the same relative costs.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .ilp import ILPHeader


class InvocationMode(enum.Enum):
    IPC = "ipc"
    SHARED_MEMORY = "shm"


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs (seconds) used when running under netsim.

    Defaults are calibrated to Table 1: the no-service path costs
    1/377,420 s ≈ 2.65 µs of terminus CPU per packet and 12.4 µs latency;
    the null-service path lands at 1/120,018 s ≈ 8.3 µs per packet and
    33 µs latency; enclaves add ~8-9%.
    """

    terminus_packet: float = 2.65e-6  # fast-path CPU per packet
    terminus_latency: float = 12.4e-6  # unloaded one-packet latency
    ipc_round_trip: float = 15.0e-6  # extra latency for the IPC hop
    shm_round_trip: float = 1.0e-6  # shared-memory ring round trip
    enclave_io: float = 1.0e-6  # enclave world-switch per crossing
    service_packet: float = 5.6e-6  # service CPU per punted packet

    def invocation_latency(self, mode: InvocationMode, enclave: bool) -> float:
        base = (
            self.ipc_round_trip
            if mode is InvocationMode.IPC
            else self.shm_round_trip
        )
        if enclave:
            base += 2 * self.enclave_io  # enter + exit
        return base


@dataclass
class IPCStats:
    invocations: int = 0
    bytes_marshalled: int = 0


class InvocationChannel:
    """Carries punted packets from the pipe-terminus to a service module.

    ``invoke`` takes a zero-argument-bound handler plus the message parts to
    marshal; in IPC mode the parts make a full serialize/deserialize round
    trip each way, mirroring the prototype's process boundary.
    """

    def __init__(self, mode: InvocationMode = InvocationMode.IPC) -> None:
        self.mode = mode
        self.stats = IPCStats()

    def invoke(
        self,
        handler: Callable[["ILPHeader", Any], Any],
        header: "ILPHeader",
        packet: Any,
    ) -> Any:
        self.stats.invocations += 1
        if self.mode is InvocationMode.IPC:
            request = pickle.dumps((header, packet), protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.bytes_marshalled += len(request)
            rx_header, rx_packet = pickle.loads(request)
            result = handler(rx_header, rx_packet)
            response = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.bytes_marshalled += len(response)
            return pickle.loads(response)
        # Shared-memory mode: hand over references; model the ring-buffer
        # write with a single small copy of the header bytes.
        _ = bytes(header.encode())
        return handler(header, packet)

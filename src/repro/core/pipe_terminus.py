"""The pipe-terminus: an SN's fast path (Figure 2).

Every packet entering an SN hits the pipe-terminus, which:

1. decrypts the ILP header using the PSP context keyed by the packet's
   outer L3 source;
2. queries the decision cache on (L3 src, service ID, connection ID);
3. on a hit, seals a (possibly TLV-rewritten) header per forwarding target
   and transmits — multiple targets each get a copy;
4. on a miss, punts the decrypted header + packet to the service module
   over the invocation channel; the module's verdict may install cache
   entries and emit packets, which the terminus seals and sends.

The terminus is deliberately free of service logic; it is the part the
paper expects to land in switch ASICs eventually (Appendix B.1).

Flow-run batching and burst sharding
------------------------------------

:meth:`PipeTerminus.receive_batch` processes a burst the way the paper's
ASIC terminus would pipeline it: one decrypt pass over the burst
(:meth:`~repro.core.psp.PSPContext.open_batch` per same-peer span), then
consecutive packets carrying the *same* plaintext header from the same
peer form a **flow run** that shares one decode, one decision-cache
probe, one header encode, and a schedule-hoisted seal.

On top of the runs sits the **burst-sharding stage** (software RSS/GRO):
runs from the same flow — identical (peer, header plaintext) — that are
*not* adjacent in the burst are merged into one **flow group**, so a
fully interleaved burst (run length 1) regains the amortization a
flow-local burst gets for free. Groups are looked up in one
:meth:`~repro.core.decision_cache.DecisionCache.lookup_many` pass and
their egress is coalesced per next hop
(:meth:`send_gather` → :meth:`~repro.core.psp.PSPContext.seal_gather`).

Reordering discipline. Sharding regroups packets *across* flows but
never within one: a flow's packets stay in arrival order through decode,
decision, seal, and transmit, so every per-flow observable — the
sequence of forwarded headers, payloads, and QoS annotations, and (when
flows do not share an egress association) the exact wire bytes — is
identical to per-packet :meth:`receive`. This is sound because ILP's
PSP-style header crypto is explicitly order-independent per packet (§4:
the nonce travels with the packet; receivers impose no inter-packet
state), so cross-flow delivery order within one burst is not part of
wire semantics — the same liberty a multi-queue NIC takes when RSS
steers flows to different queues. Packets whose header sets a
``SLOW_PATH`` flag (CONTROL/LAST) act as **barriers**: everything that
arrived before one is processed before it, everything after it, after —
teardown and control ordering is preserved exactly, and such packets
still punt individually with a fresh header each (services may retain
or mutate what they are handed).

Miss coalescing and batched punts
---------------------------------

Cold groups (cache miss) take a **coalesced slow path** instead of
replaying per-packet: only the group's *lead* packet punts; the
followers park in a bounded per-flow :class:`MissQueue` and, once the
verdict installs a decision, drain through the freshly installed fast
path using the same batch machinery a warm group uses (one
``lookup_run`` charge, one :meth:`_apply_decision_run` egress). If the
verdict installs nothing — emit-only services, drops without installs,
service errors, missing services — the parked packets replay through
the per-packet slow path exactly as before, so the coalesced path is
observably equivalent to per-packet processing by construction.
Consecutive cold groups form a **cold span** whose distinct lead punts
cross the service boundary in one
:meth:`~repro.core.ipc.InvocationChannel.invoke_batch` round trip
(OVS-style upcall batching): a cold-flow storm — flash crowd, post-crash
cache wipe, membership churn — costs one boundary crossing per span
plus one punt per flow, not one marshal round trip per packet, so the
miss path can no longer collapse the node to per-packet throughput.
Groups whose service has an offload program still replay per-packet
(offload rules and meters are consulted per packet by contract), and
``SLOW_PATH`` barriers still punt individually and flush spans like any
other group.

Like the ASIC pipeline it models, the batched path assumes a slow-path
verdict within a burst does not retire the PSP association of packets
already in flight, and that verdicts only mutate their *own*
connection's fast-path state (cross-flow installs/invalidations take
effect at the next delivery event, exactly as they would across the
boundary of a hardware pipeline stage). Cross-flow *punt* order within
a burst follows span order rather than arrival order — the same liberty
the sharding stage already takes when it regroups interleaved arrivals
— while each flow's punts always reach its service in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .. import sanitize as _san
from ..obs.recorder import NULL_RECORDER
from .decision_cache import Action, CacheKey, Decision, DecisionCache
from .execution_env import PuntTimeout
from .ilp import FLAGS_WIRE_OFFSET, Flags, ILPError, ILPHeader, TLV
from .ipc import CostModel, InvocationChannel, InvocationMode
from .offload import ActionKind, TerminusOffloadEngine
from .overload import DegradeMode, OverloadGuard, ServicePolicy
from .packet import ILPPacket, L3Header, Payload
from .psp import PSPContext, PSPError, PeerKeyStore
from .service_module import ServiceError, ServiceTimeout, Verdict

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import NodeObs
    from ..obs.recorder import FlightRecorder, NullRecorder, Span
    from .execution_env import ExecutionEnvironment

#: Sentinel for "caller did not precompute qos_src" (None is a valid value).
_QOS_UNSET = object()

#: Cold-span plan modes (see :meth:`PipeTerminus._process_cold_span`).
_COLD_REPLAY = 0  # offload-programmed service: per-packet replay
_COLD_DRAIN = 1  # dup/revived cache key: drain off the span's installs
_COLD_LEAD = 2  # true cold flow: lead punts, followers park
_COLD_SHED = 3  # admission control refused the group: whole run dropped


def _san_check_header_wire(header: ILPHeader, wire: bytes) -> None:
    """Armed check: the wire form must equal a from-scratch re-encode.

    Catches a stale encode() memo (or a caller-passed ``encoded`` that has
    drifted from the header object) before the bytes are sealed for a peer.
    """
    fresh = ILPHeader(
        service_id=header.service_id,
        connection_id=header.connection_id,
        flags=header.flags,
        tlvs=dict(header.tlvs),
    ).encode()
    if fresh != wire:
        _san.fail(
            "header-reencode",
            f"wire form ({len(wire)}B) diverges from field re-encode "
            f"({len(fresh)}B) for service {header.service_id} "
            f"connection {header.connection_id}",
        )


@dataclass(slots=True)
class ShardStats:
    """Burst-sharding stage counters.

    Kept separate from :class:`TerminusStats` so the per-packet/batched
    stats-equality contract is untouched: sharding is an internal
    scheduling choice, not a packet outcome.
    """

    bursts: int = 0
    segments: int = 0
    groups: int = 0
    merged_runs: int = 0
    gathered_packets: int = 0
    barrier_flushes: int = 0
    cold_spans: int = 0
    cold_groups: int = 0


@dataclass(slots=True)
class MissQueueStats:
    """Miss-queue ledger.

    ``offered`` counts every packet the miss path was asked to absorb —
    parked followers, spill overflow, and packets shed by admission
    control before parking. Each leaves through exactly one exit:
    ``drained_fast`` (verdict installed, drained through the fast path),
    ``replayed`` (no install, replayed per-packet through the slow path),
    ``spilled`` (per-flow bound hit: went straight to per-packet replay),
    ``shed`` (refused by the overload detector), or ``dropped`` (queue
    discarded on node crash) — so
    ``offered == drained_fast + replayed + spilled + shed + dropped +
    live`` at all times (the armed conservation ledger). ``parked``
    keeps its physical meaning: packets that actually entered the queue,
    so ``parked == drained_fast + replayed + dropped + live`` holds too.
    """

    offered: int = 0
    parked: int = 0
    drained_fast: int = 0
    replayed: int = 0
    spilled: int = 0
    shed: int = 0
    dropped: int = 0


class MissQueue:
    """Bounded per-flow parking for a cold group's follower packets.

    While a flow's lead packet is punted, its followers wait here instead
    of punting too (miss coalescing). Each flow may park at most ``limit``
    packets; overflow **spills** — the excess is returned to the caller
    for ordinary per-packet processing, never silently dropped, so the
    bound degrades throughput rather than correctness. ``SLOW_PATH``
    barriers never park (they punt individually by contract). On node
    crash the queue is discarded wholesale and every live packet is
    accounted as ``dropped`` — parked packets are in-flight datapath
    state, not durable state, exactly like packets sitting in a real
    NIC ring at power loss.
    """

    __slots__ = ("limit", "_flows", "_live", "stats")

    def __init__(self, limit: int = 512) -> None:
        self.limit = limit
        self._flows: dict[tuple[str, bytes], list[ILPPacket]] = {}
        self._live = 0
        self.stats = MissQueueStats()

    @property
    def live(self) -> int:
        """Packets currently parked across all flows."""
        return self._live

    def park(
        self, flow: tuple[str, bytes], packets: list[ILPPacket]
    ) -> list[ILPPacket]:
        """Park up to the per-flow bound; return the spill (may be empty)."""
        self.stats.offered += len(packets)
        queue = self._flows.get(flow)
        if queue is None:
            queue = []
            self._flows[flow] = queue
        room = self.limit - len(queue)
        if room <= 0:
            self.stats.spilled += len(packets)
            return packets
        take, spill = packets[:room], packets[room:]
        queue.extend(take)
        self._live += len(take)
        self.stats.parked += len(take)
        self.stats.spilled += len(spill)
        return spill

    def shed(self, count: int) -> None:
        """Account ``count`` would-be followers refused by admission control.

        They were offered to the miss path but the overload detector shed
        them before they parked — the ledger still balances because
        ``shed`` is a first-class exit.
        """
        self.stats.offered += count
        self.stats.shed += count

    def parked_count(self, flow: tuple[str, bytes]) -> int:
        queue = self._flows.get(flow)
        return len(queue) if queue else 0

    def drain(self, flow: tuple[str, bytes], *, fast: bool) -> list[ILPPacket]:
        """Remove and return a flow's parked packets, in arrival order.

        ``fast=True`` accounts them as drained through a freshly
        installed decision; ``fast=False`` as handed back for per-packet
        slow-path replay.
        """
        queue = self._flows.pop(flow, None)
        if queue is None:
            return []
        self._live -= len(queue)
        if fast:
            self.stats.drained_fast += len(queue)
        else:
            self.stats.replayed += len(queue)
        return queue

    def discard_all(self) -> int:
        """Drop every parked packet (node crash); returns the count."""
        n = self._live
        self._flows.clear()
        self._live = 0
        self.stats.dropped += n
        return n

    def check_drained(self) -> None:
        """Armed check: no packet may be left behind or double-counted.

        Called at the end of every batch ingress under ``REPRO_SANITIZE=1``:
        every parked packet must have been drained or accounted as dropped
        (``live == 0`` between bursts), and the ledger must balance.
        """
        if self._live != 0:
            _san.fail(
                "miss-queue-leak",
                f"{self._live} packet(s) still parked across "
                f"{len(self._flows)} flow(s) after batch ingress",
            )
        _san.check_ledger(self.stats, "miss-queue-ledger", live=self._live)


@dataclass(slots=True)
class TerminusStats:
    packets_in: int = 0
    packets_out: int = 0
    fast_path: int = 0
    offload_path: int = 0
    punts: int = 0
    drops_no_peer: int = 0
    drops_auth: int = 0
    drops_malformed: int = 0
    drops_no_service: int = 0
    drops_by_decision: int = 0
    drops_by_offload: int = 0
    drops_by_service: int = 0
    drops_shed: int = 0  # refused by admission control under overload
    drops_degraded: int = 0  # resolved fail-closed by a degradation mode


class PipeTerminus:
    """Fast-path packet engine of one service node."""

    __slots__ = (
        "node_address",
        "keystore",
        "cache",
        "env",
        "_transmit",
        "channel",
        "_clock",
        "cost_model",
        "offload",
        "stats",
        "shard_stats",
        "miss_queue",
        "overload",
        "pending_delay",
        "peer_activity",
        "obs",
        "recorder",
    )

    def __init__(
        self,
        node_address: str,
        keystore: PeerKeyStore,
        cache: DecisionCache,
        env: "ExecutionEnvironment",
        transmit: Callable[[str, ILPPacket], bool],
        invocation_mode: InvocationMode = InvocationMode.IPC,
        clock: Optional[Callable[[], float]] = None,
        cost_model: Optional[CostModel] = None,
        miss_queue_limit: int = 512,
    ) -> None:
        self.node_address = node_address
        self.keystore = keystore
        self.cache = cache
        self.env = env
        self._transmit = transmit
        self.channel = InvocationChannel(invocation_mode)
        self._clock = clock or (lambda: 0.0)
        self.cost_model = cost_model or CostModel()
        #: Appendix B.1: per-service offload programs (rules + meters)
        #: consulted between the decision cache and the slow-path punt.
        self.offload = TerminusOffloadEngine()
        self.stats = TerminusStats()
        self.shard_stats = ShardStats()
        #: Parks a cold group's followers while its lead packet punts
        #: (miss coalescing — see module docstring).
        self.miss_queue = MissQueue(miss_queue_limit)
        #: Overload-resilience state: per-service policies + circuit
        #: breakers and the admission detector. Inert until configured.
        self.overload = OverloadGuard()
        #: Simulated-time processing delay to apply to the packets produced
        #: by the *current* ingress event; read by the node's transmit hook.
        self.pending_delay = 0.0
        #: Optional liveness hook: called with the outer L3 source of
        #: arriving traffic so pipe-health monitoring can treat data as a
        #: heartbeat (keepalives then flow only over *idle* pipes). The
        #: batch ingress reports once per same-peer span rather than per
        #: packet — same liveness information, amortized like the rest of
        #: the batch work.
        self.peer_activity: Optional[Callable[[str], None]] = None
        #: Observability bundle (latency histograms); None when obs is off.
        self.obs: Optional["NodeObs"] = None
        #: Flight recorder for lifecycle spans — the shared no-op singleton
        #: until :meth:`ServiceNode.enable_observability` installs a real
        #: one, so uninstrumented runs pay one no-op call per stage.
        self.recorder: "FlightRecorder | NullRecorder" = NULL_RECORDER

    # -- ingress ----------------------------------------------------------
    def receive(self, packet: ILPPacket) -> None:
        """Process one packet arriving from any pipe."""
        self.stats.packets_in += 1
        self.pending_delay = self.cost_model.terminus_latency
        recorder = self.recorder
        if recorder.enabled:
            recorder.new_trace()
        span = recorder.begin_span("terminus.receive", n=1)
        if self.peer_activity is not None:
            self.peer_activity(packet.l3.src)
        self._ingress_one(packet, self._clock())
        recorder.end_span(span)

    def receive_batch(self, packets) -> int:
        """Process a burst of packets arriving back-to-back.

        The batch ingress amortizes work at three levels. Per burst: the
        clock is read once and the terminus processing delay is charged
        once (slow-path punts inside the batch still add their own
        invocation latency). Per flow run — consecutive packets from one
        peer carrying identical header plaintext: one decrypt span. Per
        flow *group* — all of a flow's runs between two slow-path
        barriers, merged by the sharding stage: one decode, one
        decision-cache probe (batched via ``lookup_many``), one header
        encode, one ``qos_src`` extraction, and a gather-coalesced
        seal/transmit. Cold groups coalesce their punts too: one lead
        punt per flow, batched per span, with followers parked in the
        miss queue and drained through the freshly installed decision
        (see the module docstring). Per-flow semantics are identical to calling
        :meth:`receive` per packet (see module docstring for the
        equivalence contract and the cross-flow reordering discipline).

        Returns the number of packets processed.
        """
        if not isinstance(packets, list):
            packets = list(packets)
        now = self._clock()
        self.pending_delay = self.cost_model.terminus_latency
        stats = self.stats
        contexts = self.keystore.contexts
        n_in = len(packets)
        recorder = self.recorder
        if recorder.enabled:
            recorder.new_trace()
        rec = recorder.recording
        burst_span = recorder.begin_span("terminus.receive", n=n_in)

        # Pass 1 — decrypt: one open_batch per consecutive same-peer span.
        peers: list[str] = []
        plains: list[Optional[bytes]] = []
        extend = plains.extend
        peer_activity = self.peer_activity
        i = 0
        while i < n_in:
            peer = packets[i].l3.src
            j = i + 1
            while j < n_in and packets[j].l3.src == peer:
                j += 1
            peers.extend([peer] * (j - i))
            if peer_activity is not None:
                peer_activity(peer)
            ctx = contexts.get(peer)
            if ctx is None:
                stats.drops_no_peer += j - i
                extend([None] * (j - i))
            else:
                opened = ctx.open_batch([p.ilp_wire for p in packets[i:j]])
                stats.drops_auth += sum(1 for pt in opened if pt is None)
                extend(opened)
                if rec:
                    recorder.event("terminus.decrypt", peer=peer, n=j - i)
            i = j

        # Pass 2 — burst sharding: merge flow runs (same peer, identical
        # plaintext) into flow groups, keeping each flow's packets in
        # arrival order. Slow-path packets are barriers: every group that
        # opened before one is flushed before it runs, and a fresh segment
        # starts after it.
        shard = self.shard_stats
        shard.bursts += 1
        flush_segment = self._flush_segment
        process_run = self._process_run
        open_groups: dict[tuple[str, bytes], list[ILPPacket]] = {}
        i = 0
        while i < n_in:
            plain = plains[i]
            if plain is None:
                i += 1
                continue
            peer = peers[i]
            j = i + 1
            while j < n_in and plains[j] == plain and peers[j] == peer:
                j += 1
            if (
                len(plain) > FLAGS_WIRE_OFFSET
                and plain[FLAGS_WIRE_OFFSET] & Flags.SLOW_PATH
            ):
                if open_groups:
                    flush_segment(open_groups, now)
                    open_groups = {}
                shard.barrier_flushes += 1
                process_run(peer, plain, packets[i:j], now)
            else:
                group = open_groups.get((peer, plain))
                if group is None:
                    open_groups[(peer, plain)] = packets[i:j]
                else:
                    group.extend(packets[i:j])
                    shard.merged_runs += 1
            i = j
        if open_groups:
            flush_segment(open_groups, now)

        if _san.ENABLED:
            # Every packet parked during this burst must be gone: drained
            # through the fast path, replayed, or (on crash) dropped.
            self.miss_queue.check_drained()
        recorder.end_span(burst_span)
        stats.packets_in += n_in
        return n_in

    def _ingress_one(self, packet: ILPPacket, now: float) -> None:
        """Decrypt → decode → cache/offload/punt for one packet."""
        peer = packet.l3.src
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return
        try:
            plaintext = ctx.open(packet.ilp_wire)
        except PSPError:
            self.stats.drops_auth += 1
            return
        if self.recorder.recording:
            self.recorder.event("terminus.decrypt", peer=peer, n=1)
        self._ingress_decoded(peer, plaintext, packet, now)

    def _ingress_decoded(
        self, peer: str, plaintext: bytes, packet: ILPPacket, now: float
    ) -> None:
        """Decode → cache/offload/punt for one already-decrypted packet."""
        try:
            header = ILPHeader.decode(plaintext)
        except ILPError:
            self.stats.drops_malformed += 1
            return
        if header.flags & Flags.SLOW_PATH:
            # Control and teardown packets always take the slow path: the
            # service must see LAST to tear down its state and invalidate
            # cache entries (a fast-path hit would hide it).
            self._punt(header, packet)
            return
        key = CacheKey(
            src=peer,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        decision = self.cache.lookup(key, now=now)
        if decision is not None:
            if self.recorder.recording:
                self.recorder.event("terminus.cache_hit", peer=peer, n=1)
            self.apply_decision(decision, header, packet.payload)
            self.stats.fast_path += 1
            return
        self._miss_path(peer, header, packet, now)

    def _miss_path(
        self, peer: str, header: ILPHeader, packet: ILPPacket, now: float
    ) -> None:
        """Offload consult → punt, after a decision-cache miss."""
        offload = self.offload
        if offload.has_program(header.service_id):
            offloaded = offload.process(
                peer, header, packet.payload.wire_size, now
            )
            if offloaded.kind is ActionKind.DROP:
                self.stats.drops_by_offload += 1
                return
            if offloaded.kind is ActionKind.FORWARD:
                self.stats.offload_path += 1
                self.send(offloaded.peer, header, packet.payload)
                return
        guard = self.overload
        if guard.admission is not None and not guard.admit(
            now, self.miss_queue.live
        ):
            # Priority-aware shedding: only true-cold data packets reach
            # this point — barriers punt directly and established flows hit
            # the cache — so CONTROL/LAST frames and warm flows are never
            # shed by construction.
            self.stats.drops_shed += 1
            guard.stats.shed_packets += 1
            obs = self.obs
            if obs is not None:
                obs.sheds.inc()
            if self.recorder.recording:
                self.recorder.event("overload.shed", peer=peer, n=1)
            return
        self._punt(header, packet)

    # -- flow runs --------------------------------------------------------
    def _process_run(
        self, peer: str, plain: bytes, run: list[ILPPacket], now: float
    ) -> None:
        """Process one flow run (same peer, identical header plaintext)."""
        try:
            header = ILPHeader.decode(plain)
        except ILPError:
            self.stats.drops_malformed += len(run)
            return
        if header.flags & Flags.SLOW_PATH:
            # Punts get a fresh header per packet: services may retain or
            # mutate the object they are handed.
            self._punt(header, run[0])
            for packet in run[1:]:
                self._punt(ILPHeader.decode(plain), packet)
            return
        key = CacheKey(
            src=peer,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        decision = self.cache.lookup_run(key, len(run), now=now)
        if decision is None:
            # Cold run: replay per-packet — the first packet's punt may
            # install the decision the rest of the run then hits, and each
            # scalar lookup counts itself.
            ingress_decoded = self._ingress_decoded
            for packet in run:
                ingress_decoded(peer, plain, packet, now)
            return
        self.stats.fast_path += len(run)
        if self.recorder.recording:
            self.recorder.event("terminus.cache_hit", peer=peer, n=len(run))
        self._apply_decision_run(decision, header, run)

    def _apply_decision_run(
        self, decision: Decision, header: ILPHeader, run: list[ILPPacket]
    ) -> None:
        """Apply one cached decision to a whole flow run."""
        if decision.action is Action.DROP:
            self.stats.drops_by_decision += len(run)
            return
        targets = decision.targets
        encoded = header.encode()
        qos_src = header.get_str(TLV.SRC_HOST)
        if len(targets) == 1:
            target = targets[0]
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                self.send_run(
                    target.peer,
                    out_header.encode(),
                    out_header.get_str(TLV.SRC_HOST),
                    run,
                )
            else:
                self.send_run(target.peer, encoded, qos_src, run)
            return
        # Multi-target fan-out: precompute one (peer, wire, qos_src) plan per
        # target, then transmit packet-major so ordering (and therefore each
        # egress context's nonce sequence) matches the per-packet path.
        plans = []
        for target in targets:
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                plans.append(
                    (
                        target.peer,
                        out_header.encode(),
                        out_header.get_str(TLV.SRC_HOST),
                    )
                )
            else:
                plans.append((target.peer, encoded, qos_src))
        stats = self.stats
        contexts = self.keystore.contexts
        node_address = self.node_address
        created = self._clock()
        transmit = self._transmit
        for packet in run:
            payload = packet.payload
            for peer, wire_plain, qsrc in plans:
                ctx = contexts.get(peer)
                if ctx is None:
                    stats.drops_no_peer += 1
                    continue
                out = ILPPacket(
                    l3=L3Header(src=node_address, dst=peer),
                    ilp_wire=ctx.seal(wire_plain),
                    payload=payload,
                    created_at=created,
                    qos_src=qsrc,
                )
                if transmit(peer, out):
                    stats.packets_out += 1

    # -- burst sharding ---------------------------------------------------
    def _flush_segment(
        self,
        groups: dict[tuple[str, bytes], list[ILPPacket]],
        now: float,
    ) -> None:
        """Decide and egress one barrier-delimited segment of flow groups.

        One decode per group, one :meth:`DecisionCache.lookup_many` pass
        over every group's key, then egress in group (first-appearance)
        order. Consecutive single-target hit groups coalesce into a
        per-next-hop gather; anything that can emit through another code
        path — cold spans (punt verdicts emit), multi-target fan-out,
        TLV rewrites — flushes the gather first so emissions keep segment
        order. Consecutive *cold* groups accumulate into a span handled
        by :meth:`_process_cold_span` (coalesced punts); a hot group or
        the segment end flushes the span before anything later emits.
        """
        shard = self.shard_stats
        shard.segments += 1
        shard.groups += len(groups)
        stats = self.stats
        recorder = self.recorder
        decoded: list[
            tuple[str, bytes, ILPHeader, list[ILPPacket], CacheKey]
        ] = []
        keys: list[CacheKey] = []
        counts: list[int] = []
        for (peer, plain), run in groups.items():
            try:
                header = ILPHeader.decode(plain)
            except ILPError:
                stats.drops_malformed += len(run)
                continue
            key = CacheKey(
                src=peer,
                service_id=header.service_id,
                connection_id=header.connection_id,
            )
            decoded.append((peer, plain, header, run, key))
            keys.append(key)
            counts.append(len(run))
        if not decoded:
            return
        decisions = self.cache.lookup_many(keys, counts, now=now)

        gather: dict[str, list[tuple[bytes, Optional[str], list[ILPPacket]]]]
        gather = {}

        def flush_gather() -> None:
            if not gather:
                return
            ctxs = self.keystore.prefetch(list(gather))
            for g_peer, items in gather.items():
                ctx = ctxs.get(g_peer)
                if ctx is None:
                    stats.drops_no_peer += sum(len(r) for _, _, r in items)
                else:
                    self.send_gather(g_peer, items, ctx=ctx)
            gather.clear()

        span: list[tuple[str, bytes, ILPHeader, list[ILPPacket], CacheKey]]
        span = []
        for row, decision in zip(decoded, decisions):
            peer, plain, header, run, _key = row
            if decision is None:
                # Cold group: open (or extend) a cold span. Its emissions
                # happen at span flush, which precedes the next hot
                # group's, so segment emission order is preserved.
                flush_gather()
                span.append(row)
                continue
            if span:
                self._process_cold_span(span, now)
                span = []
            stats.fast_path += len(run)
            if recorder.recording:
                recorder.event("terminus.cache_hit", peer=peer, n=len(run))
            if decision.action is Action.DROP:
                stats.drops_by_decision += len(run)
                continue
            targets = decision.targets
            if len(targets) == 1 and not targets[0].tlv_updates:
                items = gather.get(targets[0].peer)
                entry = (header.encode(), header.get_str(TLV.SRC_HOST), run)
                if items is None:
                    gather[targets[0].peer] = [entry]
                else:
                    items.append(entry)
                shard.gathered_packets += len(run)
            else:
                flush_gather()
                self._apply_decision_run(decision, header, run)
        if span:
            self._process_cold_span(span, now)
        flush_gather()

    def _process_cold_span(
        self,
        rows: list[tuple[str, bytes, ILPHeader, list[ILPPacket], CacheKey]],
        now: float,
    ) -> None:
        """Coalesce a span of consecutive cold groups through the slow path.

        Three phases, each preserving per-flow order and the exact charges
        the per-packet path would make:

        1. **Plan.** Each group gets a mode. Offload-programmed services
           replay per-packet (rules and meters are consulted per packet).
           A group whose cache key already appeared in this span (the key
           is not injective over flows: same connection, different TLVs)
           or is already back in the cache (revived by an earlier span's
           install in this segment) *drains* in phase 3 — its packets hit
           whatever the span installs, exactly as they would per-packet,
           and crucially without a second punt. Everything else is a true
           cold flow: its **lead** is charged the scalar miss (one lookup)
           and queued for the batch punt, its followers park in the miss
           queue (overflow spills to per-packet replay).
        2. **Punt.** All lead packets cross the service boundary in one
           :meth:`_punt_batch` (one marshal round trip in IPC mode).
        3. **Apply + drain.** In span order: a lead's verdict is applied
           (installs + emits), then its parked followers take one
           ``lookup_run`` — a hit drains them through the installed fast
           path; a miss (the verdict installed nothing, or errored) hands
           them back to per-packet replay, which re-punts each exactly as
           the scalar path would. Drain/spill groups do the same minus
           the lead punt. Drained runs — and verdict emits that forward
           the lead's own payload — coalesce into the same per-next-hop
           gather egress the hot path uses; anything emitting through
           another code path flushes the gather first, keeping the same
           ordering discipline as :meth:`_flush_segment`.
        """
        shard = self.shard_stats
        shard.cold_spans += 1
        shard.cold_groups += len(rows)
        stats = self.stats
        cache = self.cache
        queue = self.miss_queue
        offload = self.offload
        ingress_decoded = self._ingress_decoded
        recorder = self.recorder
        rec = recorder.recording
        punt_spans: list["Span"] = []

        gather: dict[str, list[tuple[bytes, Optional[str], list[ILPPacket]]]]
        gather = {}

        def flush_gather() -> None:
            if not gather:
                return
            ctxs = self.keystore.prefetch(list(gather))
            for g_peer, items in gather.items():
                ctx = ctxs.get(g_peer)
                if ctx is None:
                    stats.drops_no_peer += sum(len(r) for _, _, r in items)
                else:
                    self.send_gather(g_peer, items, ctx=ctx)
            gather.clear()

        def gather_append(
            peer: str, entry: tuple[bytes, Optional[str], list[ILPPacket]]
        ) -> None:
            items = gather.get(peer)
            if items is None:
                gather[peer] = [entry]
            else:
                items.append(entry)

        # Phase 1 — plan.
        guard = self.overload
        admission = guard.admission
        obs = self.obs
        modes: list[int] = []
        leads: list[tuple[ILPHeader, ILPPacket]] = []
        spills: dict[tuple[str, bytes], list[ILPPacket]] = {}
        seen_keys: set[CacheKey] = set()
        for peer, plain, header, run, key in rows:
            if offload.has_program(header.service_id):
                modes.append(_COLD_REPLAY)
                continue
            if key in seen_keys or key in cache:
                # Membership only: no charge, no LRU touch — phase 3's
                # lookup_run makes the (position-correct) charged probe.
                modes.append(_COLD_DRAIN)
                continue
            if admission is not None and not guard.admit(now, queue.live):
                # Priority-aware shedding, batch flavor: only true-cold
                # groups reach this check — barriers flushed before the
                # span, warm flows hit the cache, dup/revived keys drain —
                # so CONTROL/LAST and established flows are never shed.
                # One token covers the whole group (the batch analogue of
                # the per-packet scalar consume); the would-be followers
                # join the miss-queue ledger through its ``shed`` exit.
                modes.append(_COLD_SHED)
                n = len(run)
                stats.drops_shed += n
                guard.stats.shed_packets += n
                guard.stats.shed_groups += 1
                if n > 1:
                    queue.shed(n - 1)
                if obs is not None:
                    obs.sheds.inc(n)
                if rec:
                    recorder.event("overload.shed", peer=peer, n=n)
                continue
            seen_keys.add(key)
            modes.append(_COLD_LEAD)
            # Charge the lead's scalar miss (lookup_many charged nothing);
            # misses touch no LRU state, so the early charge is invisible.
            cache.lookup(key, now=now)
            # Fresh header for the punt: services may retain or mutate
            # what they are handed; the row header must stay pristine for
            # the drain egress.
            leads.append((ILPHeader.decode(plain), run[0]))
            if rec:
                punt_spans.append(
                    recorder.begin_span(
                        "terminus.punt",
                        service=header.service_id,
                        connection=header.connection_id,
                    )
                )
            spill = queue.park((peer, plain), run[1:])
            if spill:
                spills[(peer, plain)] = spill
            if rec and len(run) > 1 + len(spill):
                recorder.event(
                    "miss.park", peer=peer, n=len(run) - 1 - len(spill)
                )

        # Phase 2 — one batched boundary crossing for every lead.
        verdicts = self._punt_batch(leads) if leads else []
        if rec:
            for punt_span in punt_spans:
                recorder.end_span(punt_span)

        # Phase 3 — apply verdicts and drain, in span order.
        def drain_or_replay(
            peer: str,
            plain: bytes,
            header: ILPHeader,
            key: CacheKey,
            packets: list[ILPPacket],
            count_charge: int,
        ) -> None:
            """One charged probe, then gather-drain or per-packet replay."""
            decision = cache.lookup_run(key, count_charge, now=now)
            if decision is None:
                flush_gather()
                for packet in packets:
                    ingress_decoded(peer, plain, packet, now)
                return
            stats.fast_path += len(packets)
            if rec:
                recorder.event("terminus.cache_hit", peer=peer, n=len(packets))
            targets = decision.targets
            if (
                decision.action is not Action.DROP
                and len(targets) == 1
                and not targets[0].tlv_updates
            ):
                gather_append(
                    targets[0].peer,
                    (header.encode(), header.get_str(TLV.SRC_HOST), packets),
                )
            else:
                flush_gather()
                self._apply_decision_run(decision, header, packets)

        lead_i = 0
        install_many = cache.install_many
        for (peer, plain, header, run, key), mode in zip(rows, modes):
            if mode == _COLD_SHED:
                continue
            if mode == _COLD_REPLAY:
                flush_gather()
                for packet in run:
                    ingress_decoded(peer, plain, packet, now)
                continue
            if mode == _COLD_DRAIN:
                drain_or_replay(peer, plain, header, key, run, len(run))
                continue
            verdict = verdicts[lead_i]
            lead_i += 1
            if verdict is not None:
                if verdict.installs:
                    install_many(verdict.installs, now=now)
                if verdict.dropped:
                    stats.drops_by_service += 1
                for emit in verdict.emits:
                    # Ride the gather: send_gather only reads .payload
                    # off the carrier, so the lead's (frozen) L3 header
                    # is reused rather than re-parsed.
                    gather_append(
                        emit.peer,
                        (
                            emit.header.encode(),
                            emit.header.get_str(TLV.SRC_HOST),
                            [
                                ILPPacket(
                                    l3=run[0].l3,
                                    ilp_wire=b"",
                                    payload=emit.payload,
                                )
                            ],
                        ),
                    )
            flow = (peer, plain)
            count = queue.parked_count(flow)
            if count:
                decision = cache.lookup_run(key, count, now=now)
                if decision is None:
                    if rec:
                        recorder.event("miss.replay", peer=peer, n=count)
                    flush_gather()
                    for packet in queue.drain(flow, fast=False):
                        ingress_decoded(peer, plain, packet, now)
                else:
                    stats.fast_path += count
                    if rec:
                        recorder.event("miss.drain", peer=peer, n=count)
                    parked = queue.drain(flow, fast=True)
                    targets = decision.targets
                    if (
                        decision.action is not Action.DROP
                        and len(targets) == 1
                        and not targets[0].tlv_updates
                    ):
                        gather_append(
                            targets[0].peer,
                            (
                                header.encode(),
                                header.get_str(TLV.SRC_HOST),
                                parked,
                            ),
                        )
                    else:
                        flush_gather()
                        self._apply_decision_run(decision, header, parked)
            spill = spills.get(flow)
            if spill:
                flush_gather()
                for packet in spill:
                    ingress_decoded(peer, plain, packet, now)
        flush_gather()

    # -- fast path --------------------------------------------------------
    def apply_decision(
        self, decision: Decision, header: ILPHeader, payload: Payload
    ) -> None:
        """Apply one (cached or recomputed) decision to a single packet."""
        if decision.action is Action.DROP:
            self.stats.drops_by_decision += 1
            return
        # One encode and one qos_src extraction serve every target without
        # TLV rewrites; targets that rewrite get a copy (whose memo is
        # invalidated by the rewrite) and re-extract from it.
        encoded = header.encode()
        qos_src = header.get_str(TLV.SRC_HOST)
        for target in decision.targets:
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                self.send(target.peer, out_header, payload)
            else:
                self.send(
                    target.peer, header, payload, encoded=encoded, qos_src=qos_src
                )

    def set_transmit(self, transmit: Callable[[str, ILPPacket], bool]) -> None:
        """Replace the transmit hook (tests, fault injection, rewiring)."""
        self._transmit = transmit

    # -- slow path ----------------------------------------------------------
    def _punt(self, header: ILPHeader, packet: ILPPacket) -> None:
        guard = self.overload
        policy = (
            guard.policies.get(header.service_id) if guard.policies else None
        )
        now = self._clock() if policy is not None else 0.0
        if (
            policy is not None
            and not header.flags & Flags.SLOW_PATH
            and not guard.breakers[header.service_id].allow(now)
        ):
            # Open circuit: resolve via the service's degradation mode
            # without crossing the boundary — the struggling service never
            # sees the packet and the terminus bills no invocation latency,
            # so healthy services on this SN keep their goodput. Barriers
            # (CONTROL/LAST) are exempt: teardown must reach the service
            # (or fail closed in :meth:`_degrade`), never be short-cut into
            # a forward or a stale replay.
            guard.stats.short_circuits += 1
            obs = self.obs
            if obs is not None:
                obs.short_circuits.inc()
                obs.breakers_open.set(float(guard.open_count()))
            if self.recorder.recording:
                self.recorder.event(
                    "overload.short_circuit", service=header.service_id, n=1
                )
            self._degrade(policy, header, packet)
            return
        self.stats.punts += 1
        if not self.env.has_service(header.service_id):
            self.stats.drops_no_service += 1
            return
        recorder = self.recorder
        span = recorder.begin_span(
            "terminus.punt",
            service=header.service_id,
            connection=header.connection_id,
        )
        try:
            verdict = self._invoke_one(header, packet, policy, now)
        finally:
            recorder.end_span(span)
        if verdict is not None:
            self.apply_verdict(verdict)

    def _invoke_one(
        self,
        header: ILPHeader,
        packet: ILPPacket,
        policy: Optional[ServicePolicy],
        now: float,
    ) -> Optional[Verdict]:
        """Invoke one punt scalar-style, with deadline + breaker accounting.

        The caller has already counted the punt, checked service presence,
        and cleared the circuit breaker; this helper owns the invocation,
        the billing, and failure resolution — degradation when a policy is
        set, the classic by-service drop otherwise. One boundary round
        trip plus the service's per-packet CPU; a failed invocation still
        crossed the boundary and burned that CPU, so by default it bills
        the same latency (see :attr:`CostModel.bill_failed_invocations`).
        A timed-out punt bills the crossing plus the full deadline — the
        wait *is* the overload cost the breaker then removes.
        """
        env = self.env
        cost = self.cost_model
        guard = self.overload
        service_id = header.service_id
        in_enclave = env.enclave_for(service_id) is not None
        base = cost.invocation_latency(self.channel.mode, in_enclave)
        latency = base + cost.service_packet
        deadline = (
            policy.deadline
            if policy is not None and policy.deadline is not None
            else cost.punt_deadline
        )
        fault = env.service_fault(service_id)
        breaker = (
            guard.breakers.get(service_id) if policy is not None else None
        )
        recorder = self.recorder
        obs = self.obs
        try:
            if fault is None:
                verdict: Verdict = self.channel.invoke(
                    env.dispatch, header, packet
                )
            else:
                verdict = self.channel.invoke(
                    lambda h, p: env.dispatch(h, p, deadline), header, packet
                )
        except ServiceTimeout:
            guard.stats.deadline_misses += 1
            if breaker is not None and breaker.record_timeout(now):
                if obs is not None:
                    obs.breaker_trips.inc()
                if recorder.recording:
                    recorder.event(
                        "overload.breaker_open", service=service_id
                    )
            waited = base + (deadline or 0.0)
            self.pending_delay += waited
            if obs is not None:
                obs.deadline_misses.inc()
                obs.punt_latency.record(waited)
            if recorder.recording:
                recorder.event("overload.timeout", service=service_id, n=1)
            if policy is not None:
                self._degrade(policy, header, packet)
            else:
                self.stats.drops_by_service += 1
            return None
        except ServiceError:
            if breaker is not None and breaker.record_error(now):
                if obs is not None:
                    obs.breaker_trips.inc()
                if recorder.recording:
                    recorder.event(
                        "overload.breaker_open", service=service_id
                    )
            if cost.bill_failed_invocations:
                self.pending_delay += latency
                if obs is not None:
                    obs.punt_latency.record(latency)
            if policy is not None:
                self._degrade(policy, header, packet)
            else:
                self.stats.drops_by_service += 1
            return None
        if breaker is not None:
            breaker.record_success(now)
        if fault is not None:
            # A slowed-but-within-deadline service billed its slowdown.
            latency += fault.slowdown
        self.pending_delay += latency
        if obs is not None:
            obs.punt_latency.record(latency)
        return verdict

    def _degrade(
        self, policy: ServicePolicy, header: ILPHeader, packet: ILPPacket
    ) -> None:
        """Resolve a punt its service could not handle, per declared mode.

        ``fail_open`` forwards to the policy's designated next hop (the
        packet keeps moving, unserviced); ``fail_static`` replays the
        connection's last-known decision from the stale shelf (falling
        closed when there is none); ``fail_closed`` drops. CONTROL/LAST
        barriers always fail closed regardless of mode: forwarding a
        teardown the service never saw — or replaying a stale decision for
        it — would desynchronize connection state across the federation.
        """
        guard = self.overload
        if not header.flags & Flags.SLOW_PATH:
            mode = policy.degrade
            if mode is DegradeMode.FAIL_OPEN:
                guard.stats.degraded_open += 1
                assert policy.fail_open_peer is not None
                self.send(policy.fail_open_peer, header, packet.payload)
                return
            if mode is DegradeMode.FAIL_STATIC:
                key = CacheKey(
                    src=packet.l3.src,
                    service_id=header.service_id,
                    connection_id=header.connection_id,
                )
                decision = self.cache.stale_lookup(key)
                if decision is not None:
                    guard.stats.degraded_static += 1
                    self.apply_decision(decision, header, packet.payload)
                    return
                guard.stats.static_misses += 1
        guard.stats.degraded_closed += 1
        self.stats.drops_degraded += 1

    def _punt_batch(
        self, punts: list[tuple[ILPHeader, ILPPacket]]
    ) -> list[Optional[Verdict]]:
        """Punt a cold span's leads across the boundary in one round trip.

        Accounting matches :meth:`_punt` per lead — one punt each, missing
        services count as no-service drops, failed ones as service drops —
        but the invocation cost is amortized: one
        :meth:`~repro.core.ipc.CostModel.batch_invocation_latency` for the
        whole batch (the span's single marshal round trip, plus one
        enclave crossing pair per enclave-hosted service group) and
        ``service_packet`` per invoked lead. The shared crossing is always
        billed once the batch is sent; with
        ``bill_failed_invocations=False`` only the failed leads' service
        CPU is waived. A single eligible lead takes the scalar
        :meth:`~repro.core.ipc.InvocationChannel.invoke` path so its byte
        accounting matches per-packet processing exactly.

        Returns one entry per punt, in order (``None`` = no service,
        service error, timeout, or circuit short-circuit — in every case
        the punt installed nothing, so the caller's followers replay
        per-packet exactly as the scalar path would). Verdicts are **not**
        applied here — the caller applies them in span order.

        Overload handling mirrors the scalar path per lead: an open
        breaker short-circuits the lead to its degradation mode before the
        punt is even counted; a timed-out lead (``PuntTimeout`` slot from
        the execution environment) bills its deadline as latency, feeds
        its breaker, and degrades. The batch consumes one admission token
        per *span* rather than per packet — the same liberty the sharding
        stage takes with cross-flow order.
        """
        stats = self.stats
        env = self.env
        cost = self.cost_model
        guard = self.overload
        obs = self.obs
        recorder = self.recorder
        results: list[Optional[Verdict]] = [None] * len(punts)
        eligible: list[int] = []
        deadlines: list[Optional[float]] = []
        enclave_services: set[int] = set()
        has_policies = bool(guard.policies)
        now = self._clock() if has_policies else 0.0
        for i, (header, _packet) in enumerate(punts):
            service_id = header.service_id
            policy = guard.policies.get(service_id) if has_policies else None
            if (
                policy is not None
                and not header.flags & Flags.SLOW_PATH
                and not guard.breakers[service_id].allow(now)
            ):
                guard.stats.short_circuits += 1
                if obs is not None:
                    obs.short_circuits.inc()
                    obs.breakers_open.set(float(guard.open_count()))
                if recorder.recording:
                    recorder.event(
                        "overload.short_circuit", service=service_id, n=1
                    )
                self._degrade(policy, header, punts[i][1])
                continue
            stats.punts += 1
            if not env.has_service(service_id):
                stats.drops_no_service += 1
                continue
            eligible.append(i)
            deadlines.append(
                policy.deadline
                if policy is not None and policy.deadline is not None
                else cost.punt_deadline
            )
            if env.enclave_for(service_id) is not None:
                enclave_services.add(service_id)
        if not eligible:
            return results
        if len(eligible) == 1:
            i = eligible[0]
            header, packet = punts[i]
            policy = (
                guard.policies.get(header.service_id) if has_policies else None
            )
            results[i] = self._invoke_one(header, packet, policy, now)
            return results
        batch = [punts[i] for i in eligible]
        has_faults = env.has_faults
        if has_faults:
            # Deadlines ride the marshal only when a fault could trip them,
            # so the fault-free wire format (and byte accounting) is
            # unchanged.
            verdicts = self.channel.invoke_batch(
                env.dispatch_batch, batch, deadlines=deadlines
            )
        else:
            verdicts = self.channel.invoke_batch(env.dispatch_batch, batch)
        failed = 0
        timed_out = 0
        extra = 0.0
        for pos, (i, verdict) in enumerate(zip(eligible, verdicts)):
            header = punts[i][0]
            service_id = header.service_id
            policy = guard.policies.get(service_id) if has_policies else None
            breaker = (
                guard.breakers.get(service_id) if policy is not None else None
            )
            if isinstance(verdict, PuntTimeout):
                timed_out += 1
                guard.stats.deadline_misses += 1
                if breaker is not None and breaker.record_timeout(now):
                    if obs is not None:
                        obs.breaker_trips.inc()
                    if recorder.recording:
                        recorder.event(
                            "overload.breaker_open", service=service_id
                        )
                waited = deadlines[pos] or 0.0
                self.pending_delay += waited
                if obs is not None:
                    obs.deadline_misses.inc()
                    if waited:
                        obs.punt_latency.record(waited)
                if recorder.recording:
                    recorder.event(
                        "overload.timeout", service=service_id, n=1
                    )
                if policy is not None:
                    self._degrade(policy, header, punts[i][1])
                else:
                    stats.drops_by_service += 1
                continue
            if verdict is None:
                failed += 1
                if breaker is not None and breaker.record_error(now):
                    if obs is not None:
                        obs.breaker_trips.inc()
                    if recorder.recording:
                        recorder.event(
                            "overload.breaker_open", service=service_id
                        )
                if policy is not None:
                    self._degrade(policy, header, punts[i][1])
                else:
                    stats.drops_by_service += 1
                continue
            if breaker is not None:
                breaker.record_success(now)
            if has_faults:
                # Slowed-but-within-deadline services bill their slowdown.
                extra += env.fault_latency(service_id)
            results[i] = verdict
        # Timed-out leads billed their own deadline above and never burned
        # service CPU; failed ones did (unless the fail-fast policy waives
        # it). The shared crossing is always billed once the batch is sent.
        billed = len(eligible) - timed_out
        if not cost.bill_failed_invocations:
            billed -= failed
        crossing = cost.batch_invocation_latency(
            self.channel.mode, len(enclave_services)
        )
        self.pending_delay += crossing + cost.service_packet * billed + extra
        if obs is not None and billed:
            # Per-lead view of the amortized crossing: each billed punt
            # carries its share of the batch round trip plus its own CPU.
            obs.punt_latency.record_many(
                crossing / billed + cost.service_packet, billed
            )
        return results

    def apply_verdict(self, verdict: Verdict) -> None:
        """Install cache entries and transmit a verdict's emitted packets."""
        now = self._clock()
        if verdict.installs:
            self.cache.install_many(verdict.installs, now=now)
        if verdict.dropped:
            self.stats.drops_by_service += 1
        for emit in verdict.emits:
            self.send(emit.peer, emit.header, emit.payload)

    # -- egress ----------------------------------------------------------
    def send(
        self,
        peer: str,
        header: ILPHeader,
        payload: Payload,
        *,
        encoded: Optional[bytes] = None,
        qos_src=_QOS_UNSET,
    ) -> bool:
        """Seal a header for ``peer`` and transmit the packet to it.

        ``encoded`` lets a caller that already holds the header's wire form
        (e.g. :meth:`_apply_decision` fanning one header out to N targets)
        skip re-encoding; it must equal ``header.encode()``. ``qos_src``
        likewise lets the caller pass a precomputed SRC_HOST extraction
        (``None`` is a valid precomputed value — "no SRC_HOST TLV").
        """
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return False
        wire_plain = header.encode() if encoded is None else encoded
        if _san.ENABLED:
            _san_check_header_wire(header, wire_plain)
        wire = ctx.seal(wire_plain)
        recorder = self.recorder
        if recorder.recording:
            recorder.event("terminus.seal", peer=peer, n=1)
        out = ILPPacket(
            l3=L3Header(src=self.node_address, dst=peer),
            ilp_wire=wire,
            payload=payload,
            created_at=self._clock(),
            qos_src=header.get_str(TLV.SRC_HOST)
            if qos_src is _QOS_UNSET
            else qos_src,
        )
        sent = self._transmit(peer, out)
        if sent:
            self.stats.packets_out += 1
            if recorder.recording:
                recorder.event("terminus.send", peer=peer, n=1)
            obs = self.obs
            if obs is not None:
                obs.terminus_latency.record(self.pending_delay)
        return sent

    def send_run(
        self,
        peer: str,
        encoded: bytes,
        qos_src: Optional[str],
        run: list[ILPPacket],
    ) -> int:
        """Seal one header wire form over a run's packets and transmit.

        The run egress: one keystore probe, one
        :meth:`~repro.core.psp.PSPContext.seal_run` (schedule and framing
        hoisted), one outer L3 header shared by every copy (it is frozen),
        one clock read. Wire bytes equal per-packet :meth:`send` calls in
        the same order.

        Returns the number of packets transmitted.
        """
        ctx = self.keystore.contexts.get(peer)
        stats = self.stats
        if ctx is None:
            stats.drops_no_peer += len(run)
            return 0
        if _san.ENABLED:
            # One check per run: the run shares a single wire form.
            _san_check_header_wire(ILPHeader.decode(encoded), encoded)
        wires = ctx.seal_run(encoded, len(run))
        recorder = self.recorder
        if recorder.recording:
            recorder.event("terminus.seal", peer=peer, n=len(run))
        l3 = L3Header(src=self.node_address, dst=peer)
        created = self._clock()
        transmit = self._transmit
        sent = 0
        for packet, wire in zip(run, wires):
            out = ILPPacket(
                l3=l3,
                ilp_wire=wire,
                payload=packet.payload,
                created_at=created,
                qos_src=qos_src,
            )
            if transmit(peer, out):
                sent += 1
        stats.packets_out += sent
        if sent:
            if recorder.recording:
                recorder.event("terminus.send", peer=peer, n=sent)
            obs = self.obs
            if obs is not None:
                obs.terminus_latency.record_many(self.pending_delay, sent)
        return sent

    def send_gather(
        self,
        peer: str,
        items: list[tuple[bytes, Optional[str], list[ILPPacket]]],
        *,
        ctx: Optional[PSPContext] = None,
    ) -> int:
        """Seal several flow groups bound for one next hop in one gather.

        ``items`` is ``[(encoded, qos_src, run), ...]`` in emission order.
        The scatter-gather egress: one keystore probe (or a prefetched
        ``ctx``), one :meth:`~repro.core.psp.PSPContext.seal_gather` with
        the key schedule hoisted across every group, one outer L3 header,
        one clock read. Per group the wire bytes equal a :meth:`send_run`
        call in the same position of the egress context's nonce sequence.

        Returns the number of packets transmitted.
        """
        if ctx is None:
            ctx = self.keystore.contexts.get(peer)
        stats = self.stats
        if ctx is None:
            stats.drops_no_peer += sum(len(run) for _, _, run in items)
            return 0
        if _san.ENABLED:
            # One check per group: each group shares a single wire form.
            for encoded, _qos, _run in items:
                _san_check_header_wire(ILPHeader.decode(encoded), encoded)
        wires = ctx.seal_gather(
            [(encoded, len(run)) for encoded, _qos, run in items]
        )
        recorder = self.recorder
        if recorder.recording:
            recorder.event("terminus.seal", peer=peer, n=len(wires))
        l3 = L3Header(src=self.node_address, dst=peer)
        created = self._clock()
        transmit = self._transmit
        sent = 0
        w = 0
        for _encoded, qos_src, run in items:
            for packet in run:
                out = ILPPacket(
                    l3=l3,
                    ilp_wire=wires[w],
                    payload=packet.payload,
                    created_at=created,
                    qos_src=qos_src,
                )
                w += 1
                if transmit(peer, out):
                    sent += 1
        stats.packets_out += sent
        if sent:
            if recorder.recording:
                recorder.event("terminus.send", peer=peer, n=sent)
            obs = self.obs
            if obs is not None:
                obs.terminus_latency.record_many(self.pending_delay, sent)
        return sent

"""The pipe-terminus: an SN's fast path (Figure 2).

Every packet entering an SN hits the pipe-terminus, which:

1. decrypts the ILP header using the PSP context keyed by the packet's
   outer L3 source;
2. queries the decision cache on (L3 src, service ID, connection ID);
3. on a hit, seals a (possibly TLV-rewritten) header per forwarding target
   and transmits — multiple targets each get a copy;
4. on a miss, punts the decrypted header + packet to the service module
   over the invocation channel; the module's verdict may install cache
   entries and emit packets, which the terminus seals and sends.

The terminus is deliberately free of service logic; it is the part the
paper expects to land in switch ASICs eventually (Appendix B.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .decision_cache import Action, CacheKey, Decision, DecisionCache
from .ilp import Flags, ILPError, ILPHeader, TLV
from .ipc import CostModel, InvocationChannel, InvocationMode
from .offload import ActionKind, TerminusOffloadEngine
from .packet import ILPPacket, L3Header, Payload
from .psp import PSPError, PeerKeyStore
from .service_module import ServiceError, Verdict

if TYPE_CHECKING:  # pragma: no cover
    from .execution_env import ExecutionEnvironment


@dataclass
class TerminusStats:
    packets_in: int = 0
    packets_out: int = 0
    fast_path: int = 0
    offload_path: int = 0
    punts: int = 0
    drops_no_peer: int = 0
    drops_auth: int = 0
    drops_malformed: int = 0
    drops_no_service: int = 0
    drops_by_decision: int = 0
    drops_by_offload: int = 0
    drops_by_service: int = 0


class PipeTerminus:
    """Fast-path packet engine of one service node."""

    def __init__(
        self,
        node_address: str,
        keystore: PeerKeyStore,
        cache: DecisionCache,
        env: "ExecutionEnvironment",
        transmit: Callable[[str, ILPPacket], bool],
        invocation_mode: InvocationMode = InvocationMode.IPC,
        clock: Optional[Callable[[], float]] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.node_address = node_address
        self.keystore = keystore
        self.cache = cache
        self.env = env
        self._transmit = transmit
        self.channel = InvocationChannel(invocation_mode)
        self._clock = clock or (lambda: 0.0)
        self.cost_model = cost_model or CostModel()
        #: Appendix B.1: per-service offload programs (rules + meters)
        #: consulted between the decision cache and the slow-path punt.
        self.offload = TerminusOffloadEngine()
        self.stats = TerminusStats()
        #: Simulated-time processing delay to apply to the packets produced
        #: by the *current* ingress event; read by the node's transmit hook.
        self.pending_delay = 0.0

    # -- ingress ----------------------------------------------------------
    def receive(self, packet: ILPPacket) -> None:
        """Process one packet arriving from any pipe."""
        self.stats.packets_in += 1
        self.pending_delay = self.cost_model.terminus_latency
        self._ingress_one(packet, self._clock())

    def receive_batch(self, packets) -> int:
        """Process a burst of packets arriving back-to-back.

        The batch ingress amortizes per-packet bookkeeping across the burst:
        the clock is read once, and the terminus processing delay is charged
        once per batch rather than per packet (the paper's ASIC terminus
        pipelines a burst for exactly this reason; slow-path punts inside
        the batch still add their own invocation latency). Semantics are
        otherwise identical to calling :meth:`receive` per packet.

        Returns the number of packets processed.
        """
        now = self._clock()
        self.pending_delay = self.cost_model.terminus_latency
        stats = self.stats
        ingress_one = self._ingress_one
        count = 0
        for packet in packets:
            count += 1
            ingress_one(packet, now)
        stats.packets_in += count
        return count

    def _ingress_one(self, packet: ILPPacket, now: float) -> None:
        """Decrypt → decode → cache/offload/punt for one packet."""
        peer = packet.l3.src
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return
        try:
            plaintext = ctx.open(packet.ilp_wire)
        except PSPError:
            self.stats.drops_auth += 1
            return
        try:
            header = ILPHeader.decode(plaintext)
        except ILPError:
            self.stats.drops_malformed += 1
            return

        if header.flags & (Flags.CONTROL | Flags.LAST):
            # Control and teardown packets always take the slow path: the
            # service must see LAST to tear down its state and invalidate
            # cache entries (a fast-path hit would hide it).
            self._punt(header, packet)
            return

        key = CacheKey(
            src=peer,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        decision = self.cache.lookup(key, now=now)
        if decision is not None:
            self._apply_decision(decision, header, packet.payload)
            self.stats.fast_path += 1
            return
        offloaded = self.offload.process(
            peer, header, packet.payload.wire_size, now
        )
        if offloaded.kind is ActionKind.DROP:
            self.stats.drops_by_offload += 1
            return
        if offloaded.kind is ActionKind.FORWARD:
            self.stats.offload_path += 1
            self.send(offloaded.peer, header, packet.payload)
            return
        self._punt(header, packet)

    # -- fast path --------------------------------------------------------
    def _apply_decision(
        self, decision: Decision, header: ILPHeader, payload: Payload
    ) -> None:
        if decision.action is Action.DROP:
            self.stats.drops_by_decision += 1
            return
        # One encode serves every target without TLV rewrites; targets that
        # rewrite get a copy (whose memo is invalidated by the rewrite).
        encoded = header.encode()
        for target in decision.targets:
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                self.send(target.peer, out_header, payload)
            else:
                self.send(target.peer, header, payload, encoded=encoded)

    # -- slow path ----------------------------------------------------------
    def _punt(self, header: ILPHeader, packet: ILPPacket) -> None:
        self.stats.punts += 1
        if not self.env.has_service(header.service_id):
            self.stats.drops_no_service += 1
            return
        in_enclave = self.env.enclave_for(header.service_id) is not None
        self.pending_delay += (
            self.cost_model.invocation_latency(self.channel.mode, in_enclave)
            + self.cost_model.service_packet
        )
        try:
            verdict: Verdict = self.channel.invoke(
                self.env.dispatch, header, packet
            )
        except ServiceError:
            self.stats.drops_by_service += 1
            return
        self.apply_verdict(verdict)

    def apply_verdict(self, verdict: Verdict) -> None:
        """Install cache entries and transmit a verdict's emitted packets."""
        now = self._clock()
        for key, decision in verdict.installs:
            self.cache.install(key, decision, now=now)
        if verdict.dropped:
            self.stats.drops_by_service += 1
        for emit in verdict.emits:
            self.send(emit.peer, emit.header, emit.payload)

    # -- egress ----------------------------------------------------------
    def send(
        self,
        peer: str,
        header: ILPHeader,
        payload: Payload,
        *,
        encoded: Optional[bytes] = None,
    ) -> bool:
        """Seal a header for ``peer`` and transmit the packet to it.

        ``encoded`` lets a caller that already holds the header's wire form
        (e.g. :meth:`_apply_decision` fanning one header out to N targets)
        skip re-encoding; it must equal ``header.encode()``.
        """
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return False
        wire = ctx.seal(header.encode() if encoded is None else encoded)
        out = ILPPacket(
            l3=L3Header(src=self.node_address, dst=peer),
            ilp_wire=wire,
            payload=payload,
            created_at=self._clock(),
            qos_src=header.get_str(TLV.SRC_HOST),
        )
        sent = self._transmit(peer, out)
        if sent:
            self.stats.packets_out += 1
        return sent

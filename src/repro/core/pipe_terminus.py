"""The pipe-terminus: an SN's fast path (Figure 2).

Every packet entering an SN hits the pipe-terminus, which:

1. decrypts the ILP header using the PSP context keyed by the packet's
   outer L3 source;
2. queries the decision cache on (L3 src, service ID, connection ID);
3. on a hit, seals a (possibly TLV-rewritten) header per forwarding target
   and transmits — multiple targets each get a copy;
4. on a miss, punts the decrypted header + packet to the service module
   over the invocation channel; the module's verdict may install cache
   entries and emit packets, which the terminus seals and sends.

The terminus is deliberately free of service logic; it is the part the
paper expects to land in switch ASICs eventually (Appendix B.1).

Flow-run batching and burst sharding
------------------------------------

:meth:`PipeTerminus.receive_batch` processes a burst the way the paper's
ASIC terminus would pipeline it: one decrypt pass over the burst
(:meth:`~repro.core.psp.PSPContext.open_batch` per same-peer span), then
consecutive packets carrying the *same* plaintext header from the same
peer form a **flow run** that shares one decode, one decision-cache
probe, one header encode, and a schedule-hoisted seal.

On top of the runs sits the **burst-sharding stage** (software RSS/GRO):
runs from the same flow — identical (peer, header plaintext) — that are
*not* adjacent in the burst are merged into one **flow group**, so a
fully interleaved burst (run length 1) regains the amortization a
flow-local burst gets for free. Groups are looked up in one
:meth:`~repro.core.decision_cache.DecisionCache.lookup_many` pass and
their egress is coalesced per next hop
(:meth:`send_gather` → :meth:`~repro.core.psp.PSPContext.seal_gather`).

Reordering discipline. Sharding regroups packets *across* flows but
never within one: a flow's packets stay in arrival order through decode,
decision, seal, and transmit, so every per-flow observable — the
sequence of forwarded headers, payloads, and QoS annotations, and (when
flows do not share an egress association) the exact wire bytes — is
identical to per-packet :meth:`receive`. This is sound because ILP's
PSP-style header crypto is explicitly order-independent per packet (§4:
the nonce travels with the packet; receivers impose no inter-packet
state), so cross-flow delivery order within one burst is not part of
wire semantics — the same liberty a multi-queue NIC takes when RSS
steers flows to different queues. Packets whose header sets a
``SLOW_PATH`` flag (CONTROL/LAST) act as **barriers**: everything that
arrived before one is processed before it, everything after it, after —
teardown and control ordering is preserved exactly, and such packets
still punt individually with a fresh header each (services may retain
or mutate what they are handed).

Cold groups (cache miss) replay per-packet because the first packet's
punt may install the decision the rest of the group then hits. Like the
ASIC pipeline it models, the batched path assumes a slow-path verdict
within a burst does not retire the PSP association of packets already in
flight, and that verdicts only mutate their *own* connection's fast-path
state (cross-flow installs/invalidations take effect at the next
delivery event, exactly as they would across the boundary of a hardware
pipeline stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .. import sanitize as _san
from .decision_cache import Action, CacheKey, Decision, DecisionCache
from .ilp import FLAGS_WIRE_OFFSET, Flags, ILPError, ILPHeader, TLV
from .ipc import CostModel, InvocationChannel, InvocationMode
from .offload import ActionKind, TerminusOffloadEngine
from .packet import ILPPacket, L3Header, Payload
from .psp import PSPContext, PSPError, PeerKeyStore
from .service_module import ServiceError, Verdict

if TYPE_CHECKING:  # pragma: no cover
    from .execution_env import ExecutionEnvironment

#: Sentinel for "caller did not precompute qos_src" (None is a valid value).
_QOS_UNSET = object()


def _san_check_header_wire(header: ILPHeader, wire: bytes) -> None:
    """Armed check: the wire form must equal a from-scratch re-encode.

    Catches a stale encode() memo (or a caller-passed ``encoded`` that has
    drifted from the header object) before the bytes are sealed for a peer.
    """
    fresh = ILPHeader(
        service_id=header.service_id,
        connection_id=header.connection_id,
        flags=header.flags,
        tlvs=dict(header.tlvs),
    ).encode()
    if fresh != wire:
        _san.fail(
            "header-reencode",
            f"wire form ({len(wire)}B) diverges from field re-encode "
            f"({len(fresh)}B) for service {header.service_id} "
            f"connection {header.connection_id}",
        )


@dataclass(slots=True)
class ShardStats:
    """Burst-sharding stage counters.

    Kept separate from :class:`TerminusStats` so the per-packet/batched
    stats-equality contract is untouched: sharding is an internal
    scheduling choice, not a packet outcome.
    """

    bursts: int = 0
    segments: int = 0
    groups: int = 0
    merged_runs: int = 0
    gathered_packets: int = 0
    barrier_flushes: int = 0


@dataclass(slots=True)
class TerminusStats:
    packets_in: int = 0
    packets_out: int = 0
    fast_path: int = 0
    offload_path: int = 0
    punts: int = 0
    drops_no_peer: int = 0
    drops_auth: int = 0
    drops_malformed: int = 0
    drops_no_service: int = 0
    drops_by_decision: int = 0
    drops_by_offload: int = 0
    drops_by_service: int = 0


class PipeTerminus:
    """Fast-path packet engine of one service node."""

    __slots__ = (
        "node_address",
        "keystore",
        "cache",
        "env",
        "_transmit",
        "channel",
        "_clock",
        "cost_model",
        "offload",
        "stats",
        "shard_stats",
        "pending_delay",
        "peer_activity",
    )

    def __init__(
        self,
        node_address: str,
        keystore: PeerKeyStore,
        cache: DecisionCache,
        env: "ExecutionEnvironment",
        transmit: Callable[[str, ILPPacket], bool],
        invocation_mode: InvocationMode = InvocationMode.IPC,
        clock: Optional[Callable[[], float]] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.node_address = node_address
        self.keystore = keystore
        self.cache = cache
        self.env = env
        self._transmit = transmit
        self.channel = InvocationChannel(invocation_mode)
        self._clock = clock or (lambda: 0.0)
        self.cost_model = cost_model or CostModel()
        #: Appendix B.1: per-service offload programs (rules + meters)
        #: consulted between the decision cache and the slow-path punt.
        self.offload = TerminusOffloadEngine()
        self.stats = TerminusStats()
        self.shard_stats = ShardStats()
        #: Simulated-time processing delay to apply to the packets produced
        #: by the *current* ingress event; read by the node's transmit hook.
        self.pending_delay = 0.0
        #: Optional liveness hook: called with the outer L3 source of
        #: arriving traffic so pipe-health monitoring can treat data as a
        #: heartbeat (keepalives then flow only over *idle* pipes). The
        #: batch ingress reports once per same-peer span rather than per
        #: packet — same liveness information, amortized like the rest of
        #: the batch work.
        self.peer_activity: Optional[Callable[[str], None]] = None

    # -- ingress ----------------------------------------------------------
    def receive(self, packet: ILPPacket) -> None:
        """Process one packet arriving from any pipe."""
        self.stats.packets_in += 1
        self.pending_delay = self.cost_model.terminus_latency
        if self.peer_activity is not None:
            self.peer_activity(packet.l3.src)
        self._ingress_one(packet, self._clock())

    def receive_batch(self, packets) -> int:
        """Process a burst of packets arriving back-to-back.

        The batch ingress amortizes work at three levels. Per burst: the
        clock is read once and the terminus processing delay is charged
        once (slow-path punts inside the batch still add their own
        invocation latency). Per flow run — consecutive packets from one
        peer carrying identical header plaintext: one decrypt span. Per
        flow *group* — all of a flow's runs between two slow-path
        barriers, merged by the sharding stage: one decode, one
        decision-cache probe (batched via ``lookup_many``), one header
        encode, one ``qos_src`` extraction, and a gather-coalesced
        seal/transmit. Per-flow semantics are identical to calling
        :meth:`receive` per packet (see module docstring for the
        equivalence contract and the cross-flow reordering discipline).

        Returns the number of packets processed.
        """
        if not isinstance(packets, list):
            packets = list(packets)
        now = self._clock()
        self.pending_delay = self.cost_model.terminus_latency
        stats = self.stats
        contexts = self.keystore.contexts
        n_in = len(packets)

        # Pass 1 — decrypt: one open_batch per consecutive same-peer span.
        peers: list[str] = []
        plains: list[Optional[bytes]] = []
        extend = plains.extend
        peer_activity = self.peer_activity
        i = 0
        while i < n_in:
            peer = packets[i].l3.src
            j = i + 1
            while j < n_in and packets[j].l3.src == peer:
                j += 1
            peers.extend([peer] * (j - i))
            if peer_activity is not None:
                peer_activity(peer)
            ctx = contexts.get(peer)
            if ctx is None:
                stats.drops_no_peer += j - i
                extend([None] * (j - i))
            else:
                opened = ctx.open_batch([p.ilp_wire for p in packets[i:j]])
                stats.drops_auth += sum(1 for pt in opened if pt is None)
                extend(opened)
            i = j

        # Pass 2 — burst sharding: merge flow runs (same peer, identical
        # plaintext) into flow groups, keeping each flow's packets in
        # arrival order. Slow-path packets are barriers: every group that
        # opened before one is flushed before it runs, and a fresh segment
        # starts after it.
        shard = self.shard_stats
        shard.bursts += 1
        flush_segment = self._flush_segment
        process_run = self._process_run
        open_groups: dict[tuple[str, bytes], list[ILPPacket]] = {}
        i = 0
        while i < n_in:
            plain = plains[i]
            if plain is None:
                i += 1
                continue
            peer = peers[i]
            j = i + 1
            while j < n_in and plains[j] == plain and peers[j] == peer:
                j += 1
            if (
                len(plain) > FLAGS_WIRE_OFFSET
                and plain[FLAGS_WIRE_OFFSET] & Flags.SLOW_PATH
            ):
                if open_groups:
                    flush_segment(open_groups, now)
                    open_groups = {}
                shard.barrier_flushes += 1
                process_run(peer, plain, packets[i:j], now)
            else:
                group = open_groups.get((peer, plain))
                if group is None:
                    open_groups[(peer, plain)] = packets[i:j]
                else:
                    group.extend(packets[i:j])
                    shard.merged_runs += 1
            i = j
        if open_groups:
            flush_segment(open_groups, now)

        stats.packets_in += n_in
        return n_in

    def _ingress_one(self, packet: ILPPacket, now: float) -> None:
        """Decrypt → decode → cache/offload/punt for one packet."""
        peer = packet.l3.src
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return
        try:
            plaintext = ctx.open(packet.ilp_wire)
        except PSPError:
            self.stats.drops_auth += 1
            return
        self._ingress_decoded(peer, plaintext, packet, now)

    def _ingress_decoded(
        self, peer: str, plaintext: bytes, packet: ILPPacket, now: float
    ) -> None:
        """Decode → cache/offload/punt for one already-decrypted packet."""
        try:
            header = ILPHeader.decode(plaintext)
        except ILPError:
            self.stats.drops_malformed += 1
            return
        if header.flags & Flags.SLOW_PATH:
            # Control and teardown packets always take the slow path: the
            # service must see LAST to tear down its state and invalidate
            # cache entries (a fast-path hit would hide it).
            self._punt(header, packet)
            return
        key = CacheKey(
            src=peer,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        decision = self.cache.lookup(key, now=now)
        if decision is not None:
            self.apply_decision(decision, header, packet.payload)
            self.stats.fast_path += 1
            return
        self._miss_path(peer, header, packet, now)

    def _miss_path(
        self, peer: str, header: ILPHeader, packet: ILPPacket, now: float
    ) -> None:
        """Offload consult → punt, after a decision-cache miss."""
        offload = self.offload
        if offload.has_program(header.service_id):
            offloaded = offload.process(
                peer, header, packet.payload.wire_size, now
            )
            if offloaded.kind is ActionKind.DROP:
                self.stats.drops_by_offload += 1
                return
            if offloaded.kind is ActionKind.FORWARD:
                self.stats.offload_path += 1
                self.send(offloaded.peer, header, packet.payload)
                return
        self._punt(header, packet)

    # -- flow runs --------------------------------------------------------
    def _process_run(
        self, peer: str, plain: bytes, run: list[ILPPacket], now: float
    ) -> None:
        """Process one flow run (same peer, identical header plaintext)."""
        try:
            header = ILPHeader.decode(plain)
        except ILPError:
            self.stats.drops_malformed += len(run)
            return
        if header.flags & Flags.SLOW_PATH:
            # Punts get a fresh header per packet: services may retain or
            # mutate the object they are handed.
            self._punt(header, run[0])
            for packet in run[1:]:
                self._punt(ILPHeader.decode(plain), packet)
            return
        key = CacheKey(
            src=peer,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        decision = self.cache.lookup_run(key, len(run), now=now)
        if decision is None:
            # Cold run: replay per-packet — the first packet's punt may
            # install the decision the rest of the run then hits, and each
            # scalar lookup counts itself.
            ingress_decoded = self._ingress_decoded
            for packet in run:
                ingress_decoded(peer, plain, packet, now)
            return
        self.stats.fast_path += len(run)
        self._apply_decision_run(decision, header, run)

    def _apply_decision_run(
        self, decision: Decision, header: ILPHeader, run: list[ILPPacket]
    ) -> None:
        """Apply one cached decision to a whole flow run."""
        if decision.action is Action.DROP:
            self.stats.drops_by_decision += len(run)
            return
        targets = decision.targets
        encoded = header.encode()
        qos_src = header.get_str(TLV.SRC_HOST)
        if len(targets) == 1:
            target = targets[0]
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                self.send_run(
                    target.peer,
                    out_header.encode(),
                    out_header.get_str(TLV.SRC_HOST),
                    run,
                )
            else:
                self.send_run(target.peer, encoded, qos_src, run)
            return
        # Multi-target fan-out: precompute one (peer, wire, qos_src) plan per
        # target, then transmit packet-major so ordering (and therefore each
        # egress context's nonce sequence) matches the per-packet path.
        plans = []
        for target in targets:
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                plans.append(
                    (
                        target.peer,
                        out_header.encode(),
                        out_header.get_str(TLV.SRC_HOST),
                    )
                )
            else:
                plans.append((target.peer, encoded, qos_src))
        stats = self.stats
        contexts = self.keystore.contexts
        node_address = self.node_address
        created = self._clock()
        transmit = self._transmit
        for packet in run:
            payload = packet.payload
            for peer, wire_plain, qsrc in plans:
                ctx = contexts.get(peer)
                if ctx is None:
                    stats.drops_no_peer += 1
                    continue
                out = ILPPacket(
                    l3=L3Header(src=node_address, dst=peer),
                    ilp_wire=ctx.seal(wire_plain),
                    payload=payload,
                    created_at=created,
                    qos_src=qsrc,
                )
                if transmit(peer, out):
                    stats.packets_out += 1

    # -- burst sharding ---------------------------------------------------
    def _flush_segment(
        self,
        groups: dict[tuple[str, bytes], list[ILPPacket]],
        now: float,
    ) -> None:
        """Decide and egress one barrier-delimited segment of flow groups.

        One decode per group, one :meth:`DecisionCache.lookup_many` pass
        over every group's key, then egress in group (first-appearance)
        order. Consecutive single-target hit groups coalesce into a
        per-next-hop gather; anything that can emit through another code
        path — cold replays (punt verdicts emit), multi-target fan-out,
        TLV rewrites — flushes the gather first so emissions keep segment
        order.
        """
        shard = self.shard_stats
        shard.segments += 1
        shard.groups += len(groups)
        stats = self.stats
        decoded: list[tuple[str, bytes, ILPHeader, list[ILPPacket]]] = []
        keys: list[CacheKey] = []
        counts: list[int] = []
        for (peer, plain), run in groups.items():
            try:
                header = ILPHeader.decode(plain)
            except ILPError:
                stats.drops_malformed += len(run)
                continue
            decoded.append((peer, plain, header, run))
            keys.append(
                CacheKey(
                    src=peer,
                    service_id=header.service_id,
                    connection_id=header.connection_id,
                )
            )
            counts.append(len(run))
        if not decoded:
            return
        decisions = self.cache.lookup_many(keys, counts, now=now)

        gather: dict[str, list[tuple[bytes, Optional[str], list[ILPPacket]]]]
        gather = {}

        def flush_gather() -> None:
            if not gather:
                return
            ctxs = self.keystore.prefetch(list(gather))
            for g_peer, items in gather.items():
                ctx = ctxs.get(g_peer)
                if ctx is None:
                    stats.drops_no_peer += sum(len(r) for _, _, r in items)
                else:
                    self.send_gather(g_peer, items, ctx=ctx)
            gather.clear()

        ingress_decoded = self._ingress_decoded
        for (peer, plain, header, run), decision in zip(decoded, decisions):
            if decision is None:
                # Cold group: replay per-packet — the first packet's punt
                # may install the decision the rest of the group then
                # hits, and each scalar lookup counts itself.
                flush_gather()
                for packet in run:
                    ingress_decoded(peer, plain, packet, now)
                continue
            stats.fast_path += len(run)
            if decision.action is Action.DROP:
                stats.drops_by_decision += len(run)
                continue
            targets = decision.targets
            if len(targets) == 1 and not targets[0].tlv_updates:
                items = gather.get(targets[0].peer)
                entry = (header.encode(), header.get_str(TLV.SRC_HOST), run)
                if items is None:
                    gather[targets[0].peer] = [entry]
                else:
                    items.append(entry)
                shard.gathered_packets += len(run)
            else:
                flush_gather()
                self._apply_decision_run(decision, header, run)
        flush_gather()

    # -- fast path --------------------------------------------------------
    def apply_decision(
        self, decision: Decision, header: ILPHeader, payload: Payload
    ) -> None:
        """Apply one (cached or recomputed) decision to a single packet."""
        if decision.action is Action.DROP:
            self.stats.drops_by_decision += 1
            return
        # One encode and one qos_src extraction serve every target without
        # TLV rewrites; targets that rewrite get a copy (whose memo is
        # invalidated by the rewrite) and re-extract from it.
        encoded = header.encode()
        qos_src = header.get_str(TLV.SRC_HOST)
        for target in decision.targets:
            if target.tlv_updates:
                out_header = header.copy()
                for tlv_type, value in target.tlv_updates:
                    out_header.tlvs[tlv_type] = value
                self.send(target.peer, out_header, payload)
            else:
                self.send(
                    target.peer, header, payload, encoded=encoded, qos_src=qos_src
                )

    def set_transmit(self, transmit: Callable[[str, ILPPacket], bool]) -> None:
        """Replace the transmit hook (tests, fault injection, rewiring)."""
        self._transmit = transmit

    # -- slow path ----------------------------------------------------------
    def _punt(self, header: ILPHeader, packet: ILPPacket) -> None:
        self.stats.punts += 1
        if not self.env.has_service(header.service_id):
            self.stats.drops_no_service += 1
            return
        in_enclave = self.env.enclave_for(header.service_id) is not None
        self.pending_delay += (
            self.cost_model.invocation_latency(self.channel.mode, in_enclave)
            + self.cost_model.service_packet
        )
        try:
            verdict: Verdict = self.channel.invoke(
                self.env.dispatch, header, packet
            )
        except ServiceError:
            self.stats.drops_by_service += 1
            return
        self.apply_verdict(verdict)

    def apply_verdict(self, verdict: Verdict) -> None:
        """Install cache entries and transmit a verdict's emitted packets."""
        now = self._clock()
        for key, decision in verdict.installs:
            self.cache.install(key, decision, now=now)
        if verdict.dropped:
            self.stats.drops_by_service += 1
        for emit in verdict.emits:
            self.send(emit.peer, emit.header, emit.payload)

    # -- egress ----------------------------------------------------------
    def send(
        self,
        peer: str,
        header: ILPHeader,
        payload: Payload,
        *,
        encoded: Optional[bytes] = None,
        qos_src=_QOS_UNSET,
    ) -> bool:
        """Seal a header for ``peer`` and transmit the packet to it.

        ``encoded`` lets a caller that already holds the header's wire form
        (e.g. :meth:`_apply_decision` fanning one header out to N targets)
        skip re-encoding; it must equal ``header.encode()``. ``qos_src``
        likewise lets the caller pass a precomputed SRC_HOST extraction
        (``None`` is a valid precomputed value — "no SRC_HOST TLV").
        """
        ctx = self.keystore.contexts.get(peer)
        if ctx is None:
            self.stats.drops_no_peer += 1
            return False
        wire_plain = header.encode() if encoded is None else encoded
        if _san.ENABLED:
            _san_check_header_wire(header, wire_plain)
        wire = ctx.seal(wire_plain)
        out = ILPPacket(
            l3=L3Header(src=self.node_address, dst=peer),
            ilp_wire=wire,
            payload=payload,
            created_at=self._clock(),
            qos_src=header.get_str(TLV.SRC_HOST)
            if qos_src is _QOS_UNSET
            else qos_src,
        )
        sent = self._transmit(peer, out)
        if sent:
            self.stats.packets_out += 1
        return sent

    def send_run(
        self,
        peer: str,
        encoded: bytes,
        qos_src: Optional[str],
        run: list[ILPPacket],
    ) -> int:
        """Seal one header wire form over a run's packets and transmit.

        The run egress: one keystore probe, one
        :meth:`~repro.core.psp.PSPContext.seal_run` (schedule and framing
        hoisted), one outer L3 header shared by every copy (it is frozen),
        one clock read. Wire bytes equal per-packet :meth:`send` calls in
        the same order.

        Returns the number of packets transmitted.
        """
        ctx = self.keystore.contexts.get(peer)
        stats = self.stats
        if ctx is None:
            stats.drops_no_peer += len(run)
            return 0
        if _san.ENABLED:
            # One check per run: the run shares a single wire form.
            _san_check_header_wire(ILPHeader.decode(encoded), encoded)
        wires = ctx.seal_run(encoded, len(run))
        l3 = L3Header(src=self.node_address, dst=peer)
        created = self._clock()
        transmit = self._transmit
        sent = 0
        for packet, wire in zip(run, wires):
            out = ILPPacket(
                l3=l3,
                ilp_wire=wire,
                payload=packet.payload,
                created_at=created,
                qos_src=qos_src,
            )
            if transmit(peer, out):
                sent += 1
        stats.packets_out += sent
        return sent

    def send_gather(
        self,
        peer: str,
        items: list[tuple[bytes, Optional[str], list[ILPPacket]]],
        *,
        ctx: Optional[PSPContext] = None,
    ) -> int:
        """Seal several flow groups bound for one next hop in one gather.

        ``items`` is ``[(encoded, qos_src, run), ...]`` in emission order.
        The scatter-gather egress: one keystore probe (or a prefetched
        ``ctx``), one :meth:`~repro.core.psp.PSPContext.seal_gather` with
        the key schedule hoisted across every group, one outer L3 header,
        one clock read. Per group the wire bytes equal a :meth:`send_run`
        call in the same position of the egress context's nonce sequence.

        Returns the number of packets transmitted.
        """
        if ctx is None:
            ctx = self.keystore.contexts.get(peer)
        stats = self.stats
        if ctx is None:
            stats.drops_no_peer += sum(len(run) for _, _, run in items)
            return 0
        if _san.ENABLED:
            # One check per group: each group shares a single wire form.
            for encoded, _qos, _run in items:
                _san_check_header_wire(ILPHeader.decode(encoded), encoded)
        wires = ctx.seal_gather(
            [(encoded, len(run)) for encoded, _qos, run in items]
        )
        l3 = L3Header(src=self.node_address, dst=peer)
        created = self._clock()
        transmit = self._transmit
        sent = 0
        w = 0
        for _encoded, qos_src, run in items:
            for packet in run:
                out = ILPPacket(
                    l3=l3,
                    ilp_wire=wires[w],
                    payload=packet.payload,
                    created_at=created,
                    qos_src=qos_src,
                )
                w += 1
                if transmit(peer, out):
                    sent += 1
        stats.packets_out += sent
        return sent

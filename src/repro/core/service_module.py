"""Service module framework: the WORA unit of InterEdge functionality.

§3.1: the InterEdge service model is defined by evolving open-source
*service modules*, chosen by a governance body and deployed on all SNs.
Modules are written against the common execution environment and must have
a basic version that needs only general compute.

A module's packet handler returns a :class:`Verdict`: zero or more packets
to emit (the pipe-terminus seals and sends them) plus optional decision
cache installs so later packets stay on the fast path.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from .decision_cache import CacheKey, Decision
from .ilp import ILPHeader
from .packet import Payload

if TYPE_CHECKING:  # pragma: no cover
    from .execution_env import ServiceContext


class ServiceError(Exception):
    """Raised by modules on unrecoverable per-packet errors."""


class ServiceTimeout(ServiceError):
    """A punt exceeded its slow-path deadline (hung or slowed service).

    Subclasses :class:`ServiceError` so uninstrumented callers keep their
    existing failed-invocation handling; the terminus catches it first to
    apply the service's declared degradation mode and feed its circuit
    breaker.
    """


@dataclass
class Emit:
    """One outgoing ILP packet requested by a service module.

    ``peer`` is the next-hop ILP peer address; the pipe-terminus seals
    ``header`` with that peer's PSP context and stamps outer L3 addresses.
    """

    peer: str
    header: ILPHeader
    payload: Payload


@dataclass
class Verdict:
    """Everything a module wants done with (or because of) a packet."""

    emits: list[Emit] = field(default_factory=list)
    installs: list[tuple[CacheKey, Decision]] = field(default_factory=list)
    dropped: bool = False

    @staticmethod
    def drop() -> "Verdict":
        return Verdict(dropped=True)

    @staticmethod
    def forward(peer: str, header: ILPHeader, payload: Payload) -> "Verdict":
        return Verdict(emits=[Emit(peer, header, payload)])


class ServiceModule(abc.ABC):
    """Base class for all InterEdge services.

    Subclasses set ``SERVICE_ID`` (the standardized 16-bit identifier),
    ``NAME``, and optionally ``REQUIRES_ENCLAVE`` (privacy services, §6.2).
    """

    SERVICE_ID: int = 0
    NAME: str = "abstract"
    VERSION: str = "1.0"
    REQUIRES_ENCLAVE: bool = False

    def __init__(self) -> None:
        self.ctx: Optional["ServiceContext"] = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, ctx: "ServiceContext") -> None:
        """Called when the module is loaded into an SN's execution env."""
        self.ctx = ctx
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclass initialization once ``self.ctx`` is available."""

    # -- datapath ---------------------------------------------------------
    @abc.abstractmethod
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        """Slow-path handler for packets the decision cache missed.

        Must be able to recompute a decision for *any* packet of a
        connection, not just the first (Appendix B: cache entries can be
        evicted at any time).
        """

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        """Out-of-band control messages (§3.2's second invocation mode)."""
        return Verdict.drop()

    def handle_batch(
        self, punts: list[tuple[ILPHeader, Any]]
    ) -> list[Optional[Verdict]]:
        """Vectorized slow-path handler for a batch of punted packets.

        The execution environment groups a batched invocation's punts by
        service and hands each module its whole group at once, so the
        per-invocation overhead (IPC marshalling, enclave crossings) is
        paid per batch rather than per packet. The default implementation
        simply replays per packet — ``handle_packet`` for data,
        ``handle_control`` for control — preserving exact per-packet
        semantics; modules with amortizable work (shared config reads,
        bulk policy checks) override it.

        Contract: return exactly one entry per punt, in punt order. A
        ``None`` entry marks a punt whose handling raised
        :class:`ServiceError` (per-punt error isolation — the rest of the
        batch still gets its verdicts); raising from an override fails the
        whole batch instead.
        """
        out: list[Optional[Verdict]] = []
        for header, packet in punts:
            handler = (
                self.handle_control if header.is_control else self.handle_packet
            )
            try:
                out.append(handler(header, packet))
            except ServiceError:
                out.append(None)
        return out

    # -- fault tolerance --------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """Serializable module state for standby replication (§3.3)."""
        return {}

    def restore(self, state: dict[str, Any]) -> None:
        """Rebuild module state from a checkpoint."""


class Standardization(enum.Enum):
    """Lifecycle of a service in the governance process (§2.2, §3.3)."""

    EXPERIMENTAL = "experimental"  # one IESP's open offering
    STANDARDIZED = "standardized"  # adopted; testing window running
    REQUIRED = "required"  # all SNs must deploy it


@dataclass
class RegisteredService:
    module_cls: type[ServiceModule]
    status: Standardization
    config_schema: tuple[str, ...] = ()


class ServiceRegistry:
    """The governance body's catalog of services.

    SNs deploy from here; ``required_services`` is the uniform service
    model every host can count on (§3.1).
    """

    def __init__(self) -> None:
        self._services: dict[int, RegisteredService] = {}

    def register(
        self,
        module_cls: type[ServiceModule],
        status: Standardization = Standardization.EXPERIMENTAL,
        config_schema: tuple[str, ...] = (),
    ) -> None:
        service_id = module_cls.SERVICE_ID
        if service_id in self._services:
            existing = self._services[service_id].module_cls
            if existing is not module_cls:
                raise ServiceError(
                    f"service id {service_id} already taken by {existing.NAME}"
                )
        self._services[service_id] = RegisteredService(
            module_cls=module_cls, status=status, config_schema=config_schema
        )

    def promote(self, service_id: int, status: Standardization) -> None:
        self._get(service_id).status = status

    def _get(self, service_id: int) -> RegisteredService:
        try:
            return self._services[service_id]
        except KeyError:
            raise ServiceError(f"unknown service id {service_id}") from None

    def module_class(self, service_id: int) -> type[ServiceModule]:
        return self._get(service_id).module_cls

    def status(self, service_id: int) -> Standardization:
        return self._get(service_id).status

    def known(self, service_id: int) -> bool:
        return service_id in self._services

    def required_services(self) -> list[type[ServiceModule]]:
        return [
            reg.module_cls
            for reg in self._services.values()
            if reg.status is Standardization.REQUIRED
        ]

    def all_services(self) -> list[type[ServiceModule]]:
        return [reg.module_cls for reg in self._services.values()]


#: Standardized service IDs (the governance body's number space). Bundles
#: get their own IDs because hosts invoke exactly one service (§3.2).
class WellKnownService:
    NULL = 0x0001
    IP_DELIVERY = 0x0002
    CACHING_BUNDLE = 0x0003
    PUBSUB = 0x0004
    ANYCAST = 0x0005
    MULTICAST = 0x0006
    LAST_HOP_QOS = 0x0007
    FIREWALL = 0x0008
    ZTNA = 0x0009
    SDWAN = 0x000A
    DDOS_PROTECT = 0x000B
    ODNS = 0x000C
    PRIVATE_RELAY = 0x000D
    MIXNET = 0x000E
    MSG_QUEUE = 0x000F
    BULK_DELIVERY = 0x0010
    TIME_ORDERED = 0x0011
    VPN = 0x0012
    ATTESTATION = 0x0013
    TRANSCODE_BUNDLE = 0x0014
    MOBILITY = 0x0015
    CLUSTER_INTERCONNECT = 0x0016

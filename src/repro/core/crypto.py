"""Simulation-grade cryptographic primitives.

The paper's ILP uses PSP [34], an AEAD designed for NIC offload that
operates on individual packets with no inter-packet state. We reproduce the
*properties* the architecture depends on — per-packet independence,
pairwise keys, authenticated encryption, cheap key derivation and rotation —
with stdlib ``hashlib``/``hmac`` building blocks.

**This is not production cryptography.** The stream cipher is a SHA-256
counter keystream and the MAC a truncated HMAC; both are fine for a
simulator (no adversary runs inside the process) and keep the repository
dependency-free. DESIGN.md §4 records the substitution.

Fast path
---------

Appendix B frames the pipe-terminus as an ASIC-bound datapath; its software
stand-in must at least be algorithmically lean. Three things make per-packet
cost here: subkey derivation, keystream generation, and the XOR. The
:class:`SealingKey` schedule removes the first (the two HMAC-SHA256 subkey
derivations and the MAC's key-pad absorption happen once per key, not per
packet), an incremental hash construction removes most of the second (one
pre-absorbed SHA-256 state is ``copy()``-ed per block instead of rehashing
``key || nonce`` from scratch), and a single big-int XOR removes the third
(one C-level operation instead of a per-byte generator expression). The
wire format and every emitted byte are identical to the original
implementation — old seals open under the new code and vice versa
(``benchmarks/test_crypto_fastpath.py`` proves cross-compatibility and
measures the speedup).
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import os
import struct
from dataclasses import dataclass

KEY_SIZE = 32
TAG_SIZE = 16
NONCE_SIZE = 8
_BLOCK = hashlib.sha256().digest_size

# Pre-packed big-endian block counters for the common case (headers span a
# handful of keystream blocks); larger messages fall back to struct.pack.
_CTR = [struct.pack(">I", i) for i in range(64)]
_PACK_CTR = struct.Struct(">I").pack


class CryptoError(Exception):
    """Raised on authentication failure or key misuse."""


def random_key() -> bytes:
    """A fresh uniformly random 256-bit key."""
    # repro: allow(DET001) entropy boundary: key material must be real entropy
    return os.urandom(KEY_SIZE)


def derive_key(master: bytes, label: str, context: bytes = b"") -> bytes:
    """HKDF-expand style one-step derivation: HMAC(master, label || ctx)."""
    if len(master) < 16:
        raise CryptoError("master key too short")
    return hmac.new(master, label.encode() + b"\x00" + context, hashlib.sha256).digest()


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR ``data`` with the first ``len(data)`` bytes of ``stream``.

    One arbitrary-precision int XOR instead of a per-byte generator
    expression: the conversion and XOR all run in C.
    """
    n = len(data)
    if n == 0:
        return b""
    if len(stream) != n:
        stream = stream[:n]
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(n, "big")


class SealingKey:
    """Precomputed subkey schedule for one symmetric key.

    Holds everything :func:`seal`/:func:`open_sealed` would otherwise
    rederive per packet:

    * the encryption subkey, pre-absorbed into a SHA-256 state so each
      keystream block is a ``copy() + update(counter) + digest()``;
    * the MAC subkey's HMAC inner/outer pads, pre-absorbed into two SHA-256
      states so a tag is two ``copy() + update + digest()`` rounds — the
      stdlib ``hmac`` wrapper's per-call object construction and key-pad
      absorption are hoisted out of the packet path entirely.

    Output is bit-identical to the module-level functions; a schedule is
    purely a cache.
    """

    __slots__ = ("key", "_ks_base", "_mac_inner", "_mac_outer")

    _HMAC_BLOCK = 64  # SHA-256 block size; MAC subkeys (32B) never exceed it

    def __init__(self, key: bytes) -> None:
        self.key = key
        self._ks_base = hashlib.sha256(derive_key(key, "ilp-enc"))
        # HMAC(k, m) == sha256((k ^ opad) || sha256((k ^ ipad) || m)) for
        # keys up to one block; pre-absorb both pads.
        mac_key = derive_key(key, "ilp-mac")
        pad = mac_key.ljust(self._HMAC_BLOCK, b"\x00")
        self._mac_inner = hashlib.sha256(bytes(b ^ 0x36 for b in pad))
        self._mac_outer = hashlib.sha256(bytes(b ^ 0x5C for b in pad))

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Counter-mode keystream: SHA256(enc_key || nonce || counter) blocks."""
        base = self._ks_base.copy()
        base.update(nonce)
        if length <= _BLOCK:
            base.update(_CTR[0])
            return base.digest()[:length]
        if length <= 2 * _BLOCK:
            second = base.copy()
            base.update(_CTR[0])
            second.update(_CTR[1])
            return (base.digest() + second.digest())[:length]
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            h = base.copy()
            h.update(_CTR[counter] if counter < 64 else _PACK_CTR(counter))
            blocks.append(h.digest())
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        inner = self._mac_inner.copy()
        inner.update(nonce)
        if aad:
            inner.update(aad)
        inner.update(ciphertext)
        outer = self._mac_outer.copy()
        outer.update(inner.digest())
        return outer.digest()[:TAG_SIZE]

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt-then-MAC. Returns ``ciphertext || tag``."""
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        ciphertext = _xor(plaintext, self.keystream(nonce, len(plaintext)))
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def seal_into(
        self, out: bytearray, nonce: bytes, plaintext: bytes, aad: bytes = b""
    ) -> bytearray:
        """Like :meth:`seal`, but appends to ``out`` in place.

        Avoids the ``ciphertext + tag`` intermediate so callers building a
        framed blob (PSP prepends ``epoch || nonce``) allocate once.
        """
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        ciphertext = _xor(plaintext, self.keystream(nonce, len(plaintext)))
        out += ciphertext
        out += self._tag(nonce, aad, ciphertext)
        return out

    def seal_frames(
        self,
        prefix: bytes,
        nonces: list[bytes],
        plaintext: bytes,
        aad: bytes = b"",
    ) -> list[bytes]:
        """Seal the *same* plaintext under many nonces, fully framed.

        Returns one ``prefix || nonce || ciphertext || tag`` blob per nonce —
        the whole PSP frame in a single concatenation. This is the flow-run
        egress primitive: a terminus forwarding a run of identical headers
        seals once per packet but hoists every per-call lookup (hash-state
        bases, plaintext big-int conversion, block-count branch) out of the
        loop. Each frame is byte-identical to framing :meth:`seal` output
        by hand with the same nonce.
        """
        n = len(plaintext)
        if nonces and len(nonces[0]) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        ks_base = self._ks_base
        mac_inner = self._mac_inner
        mac_outer = self._mac_outer
        ctr0 = _CTR[0]
        pt_int = int.from_bytes(plaintext, "big")
        single_block = n <= _BLOCK
        keystream = self.keystream
        frames: list[bytes] = []
        append = frames.append
        for nonce in nonces:
            if single_block:
                h = ks_base.copy()
                h.update(nonce)
                h.update(ctr0)
                stream = h.digest()
                if n:
                    ciphertext = (
                        pt_int ^ int.from_bytes(stream[:n], "big")
                    ).to_bytes(n, "big")
                else:
                    ciphertext = b""
            else:
                ciphertext = (
                    pt_int ^ int.from_bytes(keystream(nonce, n), "big")
                ).to_bytes(n, "big")
            inner = mac_inner.copy()
            inner.update(nonce)
            if aad:
                inner.update(aad)
            inner.update(ciphertext)
            outer = mac_outer.copy()
            outer.update(inner.digest())
            append(prefix + nonce + ciphertext + outer.digest()[:TAG_SIZE])
        return frames

    def seal_scatter(
        self,
        prefix: bytes,
        runs: list[tuple[list[bytes], bytes]],
        aad: bytes = b"",
    ) -> list[bytes]:
        """Seal many ``(nonces, plaintext)`` runs into framed blobs, flat.

        The scatter-gather egress primitive: a terminus coalescing several
        flow groups toward one next hop seals each group's header wire form
        under that group's nonce span, with the hash-state bases and framing
        loaded once for the whole scatter. Output order is run-major —
        ``runs[0]``'s frames, then ``runs[1]``'s — and each frame is
        byte-identical to :meth:`seal_frames` on the same (nonces,
        plaintext) pair.
        """
        ks_base = self._ks_base
        mac_inner = self._mac_inner
        mac_outer = self._mac_outer
        ctr0 = _CTR[0]
        keystream = self.keystream
        tag_size = TAG_SIZE
        frames: list[bytes] = []
        append = frames.append
        for nonces, plaintext in runs:
            n = len(plaintext)
            if nonces and len(nonces[0]) != NONCE_SIZE:
                raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
            pt_int = int.from_bytes(plaintext, "big")
            single_block = n <= _BLOCK
            for nonce in nonces:
                if single_block:
                    h = ks_base.copy()
                    h.update(nonce)
                    h.update(ctr0)
                    stream = h.digest()
                    if n:
                        ciphertext = (
                            pt_int ^ int.from_bytes(stream[:n], "big")
                        ).to_bytes(n, "big")
                    else:
                        ciphertext = b""
                else:
                    ciphertext = (
                        pt_int ^ int.from_bytes(keystream(nonce, n), "big")
                    ).to_bytes(n, "big")
                inner = mac_inner.copy()
                inner.update(nonce)
                if aad:
                    inner.update(aad)
                inner.update(ciphertext)
                outer = mac_outer.copy()
                outer.update(inner.digest())
                append(prefix + nonce + ciphertext + outer.digest()[:tag_size])
        return frames

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt output of :meth:`seal`.

        Raises:
            CryptoError: if the tag does not verify (tampering or wrong key).
        """
        if len(sealed) < TAG_SIZE:
            raise CryptoError("sealed blob too short")
        ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
        if not hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise CryptoError("authentication tag mismatch")
        return _xor(ciphertext, self.keystream(nonce, len(ciphertext)))


@functools.lru_cache(maxsize=1024)
def sealing_key(key: bytes) -> SealingKey:
    """The (LRU-bounded, process-wide) schedule cache for ``key``.

    Long-lived holders (PSP contexts keep one per epoch) should retain the
    returned object; transient callers go through :func:`seal`/
    :func:`open_sealed`, which consult this cache.
    """
    return SealingKey(key)


def seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt-then-MAC. Returns ``ciphertext || tag``.

    The nonce is caller-supplied (PSP carries it in the packet) and MUST be
    unique per (key, packet); :class:`NonceGenerator` provides that.
    """
    return sealing_key(key).seal(nonce, plaintext, aad)


def open_sealed(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt output of :func:`seal`.

    Raises:
        CryptoError: if the tag does not verify (tampering or wrong key).
    """
    return sealing_key(key).open(nonce, sealed, aad)


class NonceGenerator:
    """Monotonic per-sender nonces (PSP uses a per-SA counter the same way)."""

    __slots__ = ("_counter",)

    _PACK = struct.Struct(">Q").pack

    def __init__(self, start: int = 0) -> None:
        self._counter = start

    def next(self) -> bytes:
        self._counter += 1
        if self._counter >= 2**64:
            raise CryptoError("nonce space exhausted; rekey required")
        return self._PACK(self._counter)

    def take(self, count: int) -> list[bytes]:
        """The next ``count`` nonces at once (a flow run's worth).

        Identical to ``count`` calls to :meth:`next`, minus the per-call
        bounds check and method dispatch.
        """
        start = self._counter
        end = start + count
        if end >= 2**64:
            raise CryptoError("nonce space exhausted; rekey required")
        self._counter = end
        pack = self._PACK
        return [pack(value) for value in range(start + 1, end + 1)]


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A toy asymmetric identity: 'public' key is a hash of the private key.

    Signatures are HMACs keyed by the private key and verified by anyone who
    can obtain the private-key holder's cooperation is *not* modeled —
    instead the verifier trusts the lookup service's registry binding
    ``public`` to the identity, and verification recomputes the HMAC via a
    registry-held verification secret. This mirrors what the architecture
    needs (signed join messages, signed open-group statements, attestation
    quotes) without a bignum signature scheme.
    """

    private: bytes
    public: bytes

    @staticmethod
    def generate() -> "KeyPair":
        private = random_key()
        public = hashlib.sha256(b"pub|" + private).digest()
        return KeyPair(private=private, public=public)

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self.private, message, hashlib.sha256).digest()

    def verify_with_private(self, message: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(message), signature)


class SignatureRegistry:
    """Verification oracle standing in for a real PKI.

    The global lookup service holds one of these: identities register their
    key pair, verifiers ask the registry to check signatures against a
    public key. Verification is constant-time HMAC comparison.
    """

    __slots__ = ("_by_public",)

    def __init__(self) -> None:
        self._by_public: dict[bytes, KeyPair] = {}

    def register(self, keypair: KeyPair) -> None:
        self._by_public[keypair.public] = keypair

    def is_registered(self, public: bytes) -> bool:
        return public in self._by_public

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        keypair = self._by_public.get(public)
        if keypair is None:
            return False
        return keypair.verify_with_private(message, signature)

"""Simulation-grade cryptographic primitives.

The paper's ILP uses PSP [34], an AEAD designed for NIC offload that
operates on individual packets with no inter-packet state. We reproduce the
*properties* the architecture depends on — per-packet independence,
pairwise keys, authenticated encryption, cheap key derivation and rotation —
with stdlib ``hashlib``/``hmac`` building blocks.

**This is not production cryptography.** The stream cipher is a SHA-256
counter keystream and the MAC a truncated HMAC; both are fine for a
simulator (no adversary runs inside the process) and keep the repository
dependency-free. DESIGN.md §4 records the substitution.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass

KEY_SIZE = 32
TAG_SIZE = 16
NONCE_SIZE = 8
_BLOCK = hashlib.sha256().digest_size


class CryptoError(Exception):
    """Raised on authentication failure or key misuse."""


def random_key() -> bytes:
    """A fresh uniformly random 256-bit key."""
    return os.urandom(KEY_SIZE)


def derive_key(master: bytes, label: str, context: bytes = b"") -> bytes:
    """HKDF-expand style one-step derivation: HMAC(master, label || ctx)."""
    if len(master) < 16:
        raise CryptoError("master key too short")
    return hmac.new(master, label.encode() + b"\x00" + context, hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """A counter-mode keystream: SHA256(key || nonce || counter) blocks."""
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key + nonce + struct.pack(">I", counter)).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def _mac_key(key: bytes) -> bytes:
    return derive_key(key, "ilp-mac")


def _enc_key(key: bytes) -> bytes:
    return derive_key(key, "ilp-enc")


def seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt-then-MAC. Returns ``ciphertext || tag``.

    The nonce is caller-supplied (PSP carries it in the packet) and MUST be
    unique per (key, packet); :class:`NonceGenerator` provides that.
    """
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
    ciphertext = _xor(plaintext, _keystream(_enc_key(key), nonce, len(plaintext)))
    tag = hmac.new(
        _mac_key(key), nonce + aad + ciphertext, hashlib.sha256
    ).digest()[:TAG_SIZE]
    return ciphertext + tag


def open_sealed(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt output of :func:`seal`.

    Raises:
        CryptoError: if the tag does not verify (tampering or wrong key).
    """
    if len(sealed) < TAG_SIZE:
        raise CryptoError("sealed blob too short")
    ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    expected = hmac.new(
        _mac_key(key), nonce + aad + ciphertext, hashlib.sha256
    ).digest()[:TAG_SIZE]
    if not hmac.compare_digest(tag, expected):
        raise CryptoError("authentication tag mismatch")
    return _xor(ciphertext, _keystream(_enc_key(key), nonce, len(ciphertext)))


class NonceGenerator:
    """Monotonic per-sender nonces (PSP uses a per-SA counter the same way)."""

    __slots__ = ("_counter",)

    def __init__(self, start: int = 0) -> None:
        self._counter = start

    def next(self) -> bytes:
        self._counter += 1
        if self._counter >= 2**64:
            raise CryptoError("nonce space exhausted; rekey required")
        return struct.pack(">Q", self._counter)


@dataclass(frozen=True)
class KeyPair:
    """A toy asymmetric identity: 'public' key is a hash of the private key.

    Signatures are HMACs keyed by the private key and verified by anyone who
    can obtain the private-key holder's cooperation is *not* modeled —
    instead the verifier trusts the lookup service's registry binding
    ``public`` to the identity, and verification recomputes the HMAC via a
    registry-held verification secret. This mirrors what the architecture
    needs (signed join messages, signed open-group statements, attestation
    quotes) without a bignum signature scheme.
    """

    private: bytes
    public: bytes

    @staticmethod
    def generate() -> "KeyPair":
        private = random_key()
        public = hashlib.sha256(b"pub|" + private).digest()
        return KeyPair(private=private, public=public)

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self.private, message, hashlib.sha256).digest()

    def verify_with_private(self, message: bytes, signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(message), signature)


class SignatureRegistry:
    """Verification oracle standing in for a real PKI.

    The global lookup service holds one of these: identities register their
    key pair, verifiers ask the registry to check signatures against a
    public key. Verification is constant-time HMAC comparison.
    """

    def __init__(self) -> None:
        self._by_public: dict[bytes, KeyPair] = {}

    def register(self, keypair: KeyPair) -> None:
        self._by_public[keypair.public] = keypair

    def is_registered(self, public: bytes) -> bool:
        return public in self._by_public

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        keypair = self._by_public.get(public)
        if keypair is None:
            return False
        return keypair.verify_with_private(message, signature)

"""The Interposition-Layer Protocol (ILP) header.

Per §4, the only mandatory structure is that the initial portion of the ILP
header carries a *service ID* and a *connection ID*; beyond that, services
may put arbitrary-length, arbitrary-content, per-packet-varying information
in the header (subject to MTU). We encode that as a fixed prefix followed
by TLVs::

    | version (1B) | service_id (2B) | flags (1B) | connection_id (8B) |
    | TLV* : type (1B) | length (2B) | value (length B) |

Connection IDs are chosen by the initiating host and scope the decision
cache; they are not related to L4 ports.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Optional

ILP_VERSION = 1
_FIXED_FMT = ">BHBQ"
_FIXED_SIZE = struct.calcsize(_FIXED_FMT)
_TLV_FMT = ">BH"
_TLV_HEADER = struct.calcsize(_TLV_FMT)

#: Byte offset of the flags field in an encoded header (after version and
#: service ID). The terminus burst-sharding stage peeks at this byte to
#: spot slow-path packets without decoding the whole header.
FLAGS_WIRE_OFFSET = struct.calcsize(">BH")


class ILPError(Exception):
    """Raised on malformed ILP headers."""


class Flags:
    """Bit flags in the fixed ILP prefix."""

    NONE = 0x00
    CONTROL = 0x01  # control-plane message, not data
    FIRST = 0x02  # first packet of a connection (services may expect setup TLVs)
    LAST = 0x04  # sender believes the connection is finished
    MORE_HEADER = 0x08  # setup info continues in subsequent packets (§B.2)

    #: Mask of flags that force the slow path: CONTROL is not data, and the
    #: service must see LAST to tear down state (a fast-path hit would hide
    #: it). The terminus tests this once per packet / per flow run.
    SLOW_PATH = CONTROL | LAST


class TLV:
    """Well-known TLV types. Services may define their own ≥ 0x80."""

    DEST_ADDR = 0x01  # ultimate destination host address (str)
    DEST_SN = 0x02  # destination's associated SN address (str)
    SRC_HOST = 0x03  # originating host address (str)
    SERVICE_OPTS = 0x04  # option bytes interpreted by the service
    BUNDLE = 0x05  # bundle member toggles
    TOPIC = 0x06  # pub/sub topic / group name (str)
    SIGNATURE = 0x07  # authorization signature (join messages etc.)
    IDENTITY = 0x08  # public key / identity token
    SEQUENCE = 0x09  # service-level sequence number (u64)
    TIMESTAMP = 0x0A  # GPS-clock timestamp (f64 seconds)
    SETUP_FRAG = 0x0B  # fragment of oversized setup info (§B.2)
    RETURN_PATH = 0x0C  # reverse-path SN list
    SERVICE_PRIVATE = 0x80  # first service-private type


class _TLVMap(dict):
    """A TLV dict that counts its mutations.

    :meth:`ILPHeader.encode` memoizes the wire form against this version
    counter, so arbitrary in-place TLV edits (the service modules mutate
    ``header.tlvs`` directly all over) transparently invalidate the cache
    without the header wrapping every access.
    """

    __slots__ = ("_v",)

    def __init__(self, *args, **kwargs) -> None:
        dict.__init__(self, *args, **kwargs)
        self._v = 0

    def __reduce__(self):
        # Rebuild through __init__ (default dict-subclass pickling restores
        # items before slot state, hitting __setitem__ with no _v yet).
        return (self.__class__, (dict(self),))

    def __setitem__(self, key, value) -> None:
        self._v += 1
        dict.__setitem__(self, key, value)

    def __delitem__(self, key) -> None:
        self._v += 1
        dict.__delitem__(self, key)

    def pop(self, *args):
        self._v += 1
        return dict.pop(self, *args)

    def popitem(self):
        self._v += 1
        return dict.popitem(self)

    def clear(self) -> None:
        self._v += 1
        dict.clear(self)

    def update(self, *args, **kwargs) -> None:
        self._v += 1
        dict.update(self, *args, **kwargs)

    def setdefault(self, key, default=None):
        self._v += 1
        return dict.setdefault(self, key, default)


#: Fields whose assignment invalidates a header's cached wire form.
_WIRE_FIELDS = frozenset(("service_id", "connection_id", "flags", "tlvs"))


@dataclass
# dict-backed by design: the encode() memo lives in __dict__ (see
# __setattr__/__getstate__); slots would break the wire cache.
# repro: allow(WIRE001)
class ILPHeader:
    """Decoded ILP header.

    ``encode()`` is memoized: the wire form is cached and invalidated on any
    field assignment or TLV mutation, so the fast path (N forwarding
    targets, no TLV rewrites) encodes once and seals N times.
    """

    service_id: int
    connection_id: int
    flags: int = Flags.NONE
    tlvs: dict[int, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.service_id <= 0xFFFF:
            raise ILPError(f"service_id out of range: {self.service_id}")
        if not 0 <= self.connection_id < 2**64:
            raise ILPError(f"connection_id out of range: {self.connection_id}")

    def __setattr__(self, name: str, value) -> None:
        d = self.__dict__
        if name in _WIRE_FIELDS:
            d["_wire"] = None
            if name == "tlvs" and value.__class__ is not _TLVMap:
                value = _TLVMap(value)
        d[name] = value

    def __getstate__(self):
        # The wire memo never crosses pickle/copy: the TLV map's version
        # counter restarts at 0 on the other side, so a carried-over
        # (_wire, _wire_v) pair could later alias a mutated map.
        state = dict(self.__dict__)
        state.pop("_wire", None)
        state.pop("_wire_v", None)
        return state

    # -- TLV convenience accessors ------------------------------------
    def set_str(self, tlv_type: int, value: str) -> None:
        self.tlvs[tlv_type] = value.encode()

    def get_str(self, tlv_type: int) -> Optional[str]:
        raw = self.tlvs.get(tlv_type)
        return raw.decode() if raw is not None else None

    def set_u64(self, tlv_type: int, value: int) -> None:
        self.tlvs[tlv_type] = struct.pack(">Q", value)

    def get_u64(self, tlv_type: int) -> Optional[int]:
        raw = self.tlvs.get(tlv_type)
        return struct.unpack(">Q", raw)[0] if raw is not None else None

    def set_f64(self, tlv_type: int, value: float) -> None:
        self.tlvs[tlv_type] = struct.pack(">d", value)

    def get_f64(self, tlv_type: int) -> Optional[float]:
        raw = self.tlvs.get(tlv_type)
        return struct.unpack(">d", raw)[0] if raw is not None else None

    @property
    def is_control(self) -> bool:
        return bool(self.flags & Flags.CONTROL)

    @property
    def is_first(self) -> bool:
        return bool(self.flags & Flags.FIRST)

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        tlvs = self.tlvs
        d = self.__dict__
        wire = d.get("_wire")
        if wire is not None and d.get("_wire_v") == tlvs._v:
            return wire
        parts = [
            struct.pack(
                _FIXED_FMT,
                ILP_VERSION,
                self.service_id,
                self.flags,
                self.connection_id,
            )
        ]
        for tlv_type in sorted(tlvs):
            value = tlvs[tlv_type]
            if len(value) > 0xFFFF:
                raise ILPError(f"TLV {tlv_type} too long ({len(value)}B)")
            parts.append(struct.pack(_TLV_FMT, tlv_type, len(value)))
            parts.append(value)
        wire = b"".join(parts)
        d["_wire"] = wire
        d["_wire_v"] = tlvs._v
        return wire

    @staticmethod
    def decode(raw: bytes) -> "ILPHeader":
        if len(raw) < _FIXED_SIZE:
            raise ILPError("ILP header truncated")
        version, service_id, flags, connection_id = struct.unpack_from(
            _FIXED_FMT, raw
        )
        if version != ILP_VERSION:
            raise ILPError(f"unsupported ILP version {version}")
        tlvs: dict[int, bytes] = {}
        offset = _FIXED_SIZE
        canonical = True
        prev_type = -1
        while offset < len(raw):
            if offset + _TLV_HEADER > len(raw):
                raise ILPError("truncated TLV header")
            tlv_type, length = struct.unpack_from(_TLV_FMT, raw, offset)
            offset += _TLV_HEADER
            if offset + length > len(raw):
                raise ILPError("truncated TLV value")
            tlvs[tlv_type] = raw[offset : offset + length]
            offset += length
            if tlv_type <= prev_type:
                canonical = False
            prev_type = tlv_type
        header = ILPHeader(
            service_id=service_id,
            connection_id=connection_id,
            flags=flags,
            tlvs=tlvs,
        )
        if canonical:
            # ``raw`` is already what encode() would produce (TLVs in
            # canonical sorted order, no duplicates): pre-seed the memo so
            # the decode -> re-encode fast path never serializes.
            d = header.__dict__
            d["_wire"] = raw
            d["_wire_v"] = header.tlvs._v
        return header

    @property
    def encoded_size(self) -> int:
        d = self.__dict__
        wire = d.get("_wire")
        if wire is not None and d.get("_wire_v") == self.tlvs._v:
            return len(wire)
        return _FIXED_SIZE + sum(
            _TLV_HEADER + len(value) for value in self.tlvs.values()
        )

    def copy(self) -> "ILPHeader":
        dup = ILPHeader(
            service_id=self.service_id,
            connection_id=self.connection_id,
            flags=self.flags,
            tlvs=dict(self.tlvs),
        )
        d = self.__dict__
        wire = d.get("_wire")
        if wire is not None and d.get("_wire_v") == self.tlvs._v:
            dup.__dict__["_wire"] = wire
            dup.__dict__["_wire_v"] = dup.tlvs._v
        return dup


def new_connection_id() -> int:
    """A fresh random 64-bit connection ID (chosen by the initiating host)."""
    # repro: allow(DET001) entropy boundary: connection IDs must be unguessable
    return struct.unpack(">Q", os.urandom(8))[0]

"""The Interposition-Layer Protocol (ILP) header.

Per §4, the only mandatory structure is that the initial portion of the ILP
header carries a *service ID* and a *connection ID*; beyond that, services
may put arbitrary-length, arbitrary-content, per-packet-varying information
in the header (subject to MTU). We encode that as a fixed prefix followed
by TLVs::

    | version (1B) | service_id (2B) | flags (1B) | connection_id (8B) |
    | TLV* : type (1B) | length (2B) | value (length B) |

Connection IDs are chosen by the initiating host and scope the decision
cache; they are not related to L4 ports.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Optional

ILP_VERSION = 1
_FIXED_FMT = ">BHBQ"
_FIXED_SIZE = struct.calcsize(_FIXED_FMT)
_TLV_FMT = ">BH"
_TLV_HEADER = struct.calcsize(_TLV_FMT)


class ILPError(Exception):
    """Raised on malformed ILP headers."""


class Flags:
    """Bit flags in the fixed ILP prefix."""

    NONE = 0x00
    CONTROL = 0x01  # control-plane message, not data
    FIRST = 0x02  # first packet of a connection (services may expect setup TLVs)
    LAST = 0x04  # sender believes the connection is finished
    MORE_HEADER = 0x08  # setup info continues in subsequent packets (§B.2)


class TLV:
    """Well-known TLV types. Services may define their own ≥ 0x80."""

    DEST_ADDR = 0x01  # ultimate destination host address (str)
    DEST_SN = 0x02  # destination's associated SN address (str)
    SRC_HOST = 0x03  # originating host address (str)
    SERVICE_OPTS = 0x04  # option bytes interpreted by the service
    BUNDLE = 0x05  # bundle member toggles
    TOPIC = 0x06  # pub/sub topic / group name (str)
    SIGNATURE = 0x07  # authorization signature (join messages etc.)
    IDENTITY = 0x08  # public key / identity token
    SEQUENCE = 0x09  # service-level sequence number (u64)
    TIMESTAMP = 0x0A  # GPS-clock timestamp (f64 seconds)
    SETUP_FRAG = 0x0B  # fragment of oversized setup info (§B.2)
    RETURN_PATH = 0x0C  # reverse-path SN list
    SERVICE_PRIVATE = 0x80  # first service-private type


@dataclass
class ILPHeader:
    """Decoded ILP header."""

    service_id: int
    connection_id: int
    flags: int = Flags.NONE
    tlvs: dict[int, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.service_id <= 0xFFFF:
            raise ILPError(f"service_id out of range: {self.service_id}")
        if not 0 <= self.connection_id < 2**64:
            raise ILPError(f"connection_id out of range: {self.connection_id}")

    # -- TLV convenience accessors ------------------------------------
    def set_str(self, tlv_type: int, value: str) -> None:
        self.tlvs[tlv_type] = value.encode()

    def get_str(self, tlv_type: int) -> Optional[str]:
        raw = self.tlvs.get(tlv_type)
        return raw.decode() if raw is not None else None

    def set_u64(self, tlv_type: int, value: int) -> None:
        self.tlvs[tlv_type] = struct.pack(">Q", value)

    def get_u64(self, tlv_type: int) -> Optional[int]:
        raw = self.tlvs.get(tlv_type)
        return struct.unpack(">Q", raw)[0] if raw is not None else None

    def set_f64(self, tlv_type: int, value: float) -> None:
        self.tlvs[tlv_type] = struct.pack(">d", value)

    def get_f64(self, tlv_type: int) -> Optional[float]:
        raw = self.tlvs.get(tlv_type)
        return struct.unpack(">d", raw)[0] if raw is not None else None

    @property
    def is_control(self) -> bool:
        return bool(self.flags & Flags.CONTROL)

    @property
    def is_first(self) -> bool:
        return bool(self.flags & Flags.FIRST)

    # -- wire format ----------------------------------------------------
    def encode(self) -> bytes:
        parts = [
            struct.pack(
                _FIXED_FMT,
                ILP_VERSION,
                self.service_id,
                self.flags,
                self.connection_id,
            )
        ]
        for tlv_type in sorted(self.tlvs):
            value = self.tlvs[tlv_type]
            if len(value) > 0xFFFF:
                raise ILPError(f"TLV {tlv_type} too long ({len(value)}B)")
            parts.append(struct.pack(_TLV_FMT, tlv_type, len(value)))
            parts.append(value)
        return b"".join(parts)

    @staticmethod
    def decode(raw: bytes) -> "ILPHeader":
        if len(raw) < _FIXED_SIZE:
            raise ILPError("ILP header truncated")
        version, service_id, flags, connection_id = struct.unpack_from(
            _FIXED_FMT, raw
        )
        if version != ILP_VERSION:
            raise ILPError(f"unsupported ILP version {version}")
        tlvs: dict[int, bytes] = {}
        offset = _FIXED_SIZE
        while offset < len(raw):
            if offset + _TLV_HEADER > len(raw):
                raise ILPError("truncated TLV header")
            tlv_type, length = struct.unpack_from(_TLV_FMT, raw, offset)
            offset += _TLV_HEADER
            if offset + length > len(raw):
                raise ILPError("truncated TLV value")
            tlvs[tlv_type] = raw[offset : offset + length]
            offset += length
        return ILPHeader(
            service_id=service_id,
            connection_id=connection_id,
            flags=flags,
            tlvs=tlvs,
        )

    @property
    def encoded_size(self) -> int:
        return _FIXED_SIZE + sum(
            _TLV_HEADER + len(value) for value in self.tlvs.values()
        )

    def copy(self) -> "ILPHeader":
        return ILPHeader(
            service_id=self.service_id,
            connection_id=self.connection_id,
            flags=self.flags,
            tlvs=dict(self.tlvs),
        )


def new_connection_id() -> int:
    """A fresh random 64-bit connection ID (chosen by the initiating host)."""
    return struct.unpack(">Q", os.urandom(8))[0]

"""Software TPM and remote attestation.

§3.1 assumes every SN has a TPM usable for attestation, and §6 builds an
attestation service on it. This module implements a software TPM with the
pieces the architecture actually uses:

* PCR banks extended with measurements of the boot chain, the execution
  environment, and each loaded service module;
* quotes: a signed (PCR digest, nonce) pair;
* a verifier that checks quotes against a golden measurement database.

Signatures use the repository's simulation-grade :class:`KeyPair` scheme
(see :mod:`repro.core.crypto`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from .crypto import KeyPair, SignatureRegistry

N_PCRS = 24
PCR_BOOT = 0
PCR_EXEC_ENV = 1
PCR_SERVICES = 2
PCR_ENCLAVE = 3


class AttestationError(Exception):
    """Raised on malformed or unverifiable quotes."""


def measure(data: bytes) -> bytes:
    """A measurement is a SHA-256 digest of the measured artifact."""
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class Quote:
    """A signed attestation of PCR state, bound to a verifier nonce."""

    tpm_public: bytes
    nonce: bytes
    pcr_digest: bytes
    signature: bytes

    def signed_blob(self) -> bytes:
        return b"quote|" + self.nonce + b"|" + self.pcr_digest


class SoftwareTPM:
    """A minimal TPM: PCRs, extend, quote."""

    def __init__(self, keypair: Optional[KeyPair] = None) -> None:
        self.keypair = keypair or KeyPair.generate()
        self._pcrs: list[bytes] = [b"\x00" * 32 for _ in range(N_PCRS)]
        self.extend_log: list[tuple[int, bytes]] = []

    @property
    def public(self) -> bytes:
        return self.keypair.public

    def pcr(self, index: int) -> bytes:
        return self._pcrs[index]

    def extend(self, index: int, measurement: bytes) -> bytes:
        """PCR[i] = H(PCR[i] || measurement); append-only by construction."""
        if not 0 <= index < N_PCRS:
            raise AttestationError(f"no PCR {index}")
        if len(measurement) != 32:
            raise AttestationError("measurements must be 32-byte digests")
        self._pcrs[index] = hashlib.sha256(self._pcrs[index] + measurement).digest()
        self.extend_log.append((index, measurement))
        return self._pcrs[index]

    def pcr_digest(self, indices: Optional[list[int]] = None) -> bytes:
        selected = indices if indices is not None else list(range(N_PCRS))
        acc = hashlib.sha256()
        for index in selected:
            acc.update(self._pcrs[index])
        return acc.digest()

    def quote(self, nonce: bytes, indices: Optional[list[int]] = None) -> Quote:
        digest = self.pcr_digest(indices)
        unsigned = Quote(
            tpm_public=self.public,
            nonce=nonce,
            pcr_digest=digest,
            signature=b"",
        )
        signature = self.keypair.sign(unsigned.signed_blob())
        return Quote(
            tpm_public=self.public,
            nonce=nonce,
            pcr_digest=digest,
            signature=signature,
        )


def replay_pcrs(extend_log: list[tuple[int, bytes]]) -> list[bytes]:
    """Recompute final PCR values from an extend log (verifier side)."""
    pcrs = [b"\x00" * 32 for _ in range(N_PCRS)]
    for index, measurement in extend_log:
        pcrs[index] = hashlib.sha256(pcrs[index] + measurement).digest()
    return pcrs


@dataclass
class GoldenMeasurements:
    """The verifier's database of acceptable measurements per PCR."""

    acceptable: dict[int, set[bytes]] = field(default_factory=dict)

    def allow(self, pcr_index: int, measurement: bytes) -> None:
        self.acceptable.setdefault(pcr_index, set()).add(measurement)

    def log_acceptable(self, extend_log: list[tuple[int, bytes]]) -> bool:
        return all(
            measurement in self.acceptable.get(index, set())
            for index, measurement in extend_log
        )


class AttestationVerifier:
    """Verifies quotes: signature via the registry, digest via the log."""

    def __init__(
        self, registry: SignatureRegistry, golden: Optional[GoldenMeasurements] = None
    ) -> None:
        self._registry = registry
        self.golden = golden or GoldenMeasurements()

    def verify(
        self,
        quote: Quote,
        expected_nonce: bytes,
        extend_log: list[tuple[int, bytes]],
        indices: Optional[list[int]] = None,
    ) -> bool:
        """Full verification: freshness, signature, digest, measurements."""
        if quote.nonce != expected_nonce:
            return False
        if not self._registry.verify(
            quote.tpm_public, quote.signed_blob(), quote.signature
        ):
            return False
        pcrs = replay_pcrs(extend_log)
        selected = indices if indices is not None else list(range(N_PCRS))
        acc = hashlib.sha256()
        for index in selected:
            acc.update(pcrs[index])
        if acc.digest() != quote.pcr_digest:
            return False
        if self.golden.acceptable and not self.golden.log_acceptable(extend_log):
            return False
        return True

"""Overload resilience for the slow path: breakers, shedding, retries.

The paper's pipe-terminus design assumes the slow path is occasionally
*cold*, never *sick* — but one misbehaving service module (hung handler,
latency spike, punt storm) can stall ``invoke_batch``, grow the MissQueue
without bound, and starve healthy flows sharing the terminus. This module
supplies the policy layer the terminus consults before and after every
punt:

* :class:`ServicePolicy` — a per-service declaration of the slow-path
  deadline, the **degradation mode** used when an invocation times out or
  errors (``fail_open`` forward, ``fail_closed`` drop, ``fail_static``
  serve the last-known decision from the cache's stale shelf), and the
  circuit-breaker configuration.
* :class:`CircuitBreaker` — a closed→open→half-open state machine keyed on
  an EWMA of timeout/error outcomes. An **open** circuit short-circuits
  cold packets straight to the degradation mode without invoking the
  service at all, so a sick service stops consuming boundary round trips
  while healthy services on the same SN keep full goodput. Recovery is by
  seeded half-open probes; the open duration carries deterministic jitter
  drawn from the breaker's configured seed so federated breakers do not
  re-probe in lockstep.
* :class:`AdmissionControl` — the terminus overload detector: MissQueue
  depth plus a punt-rate token bucket (reusing
  :class:`repro.sched.TokenBucket`). Under pressure, *true-cold* leads are
  shed before they park or punt; CONTROL/LAST barrier frames and
  established (cache-hit) flows are never shed.
* :func:`retry_call` — the shared control-plane retry helper: capped
  decorrelated-jitter backoff with a deterministic seed and a per-op
  backoff deadline, wrapped around host lookups, ResilienceAgent resyncs,
  and CoreStore writes.

Everything here is **off by default**: a terminus with no policies, no
admission config, and no injected faults behaves byte-for-byte like the
pre-overload datapath (asserted by the batch-equivalence property suite).

All state is held per-:class:`OverloadGuard` (one per terminus) and all
randomness is seeded from configuration, so overload scenarios replay
bit-identically under netsim.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sched import TokenBucket


class OverloadError(Exception):
    """Raised for invalid overload-policy configuration."""


# -- degradation ---------------------------------------------------------
class DegradeMode(enum.Enum):
    """What happens to a punt its service could not answer in time.

    ``FAIL_CLOSED`` drops the packet (the safe default for policy-bearing
    services: no decision means no forwarding). ``FAIL_OPEN`` forwards it
    unmodified to a configured peer (delivery-over-policy services).
    ``FAIL_STATIC`` serves the connection's last-known decision from the
    :class:`~repro.core.decision_cache.DecisionCache` stale shelf, falling
    back to fail-closed when the shelf has never seen the flow.
    """

    FAIL_CLOSED = "fail_closed"
    FAIL_OPEN = "fail_open"
    FAIL_STATIC = "fail_static"


# -- circuit breaker -----------------------------------------------------
class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one service's circuit breaker.

    The breaker trips when the EWMA of failure outcomes (timeouts and
    errors count 1, successes 0) reaches ``failure_threshold`` with at
    least ``min_samples`` observations. It stays open for
    ``open_duration`` seconds plus a deterministic jitter of up to
    ``open_jitter`` × ``open_duration`` drawn from ``seed``, then admits
    ``half_open_probes`` probe punts; ``close_after`` consecutive probe
    successes close it, any probe failure reopens it.
    """

    failure_threshold: float = 0.5
    ewma_alpha: float = 0.3
    min_samples: int = 5
    open_duration: float = 0.5
    open_jitter: float = 0.1
    half_open_probes: int = 2
    close_after: int = 2
    seed: int = 0


@dataclass(slots=True)
class BreakerStats:
    """One breaker's outcome and transition counters."""

    successes: int = 0
    timeouts: int = 0
    errors: int = 0
    trips: int = 0
    recoveries: int = 0
    probes: int = 0
    short_circuits: int = 0


class CircuitBreaker:
    """Closed→open→half-open breaker over one service's punt outcomes."""

    __slots__ = (
        "config",
        "state",
        "failure_ewma",
        "samples",
        "stats",
        "transitions",
        "_rng",
        "_reopen_at",
        "_probes_left",
        "_probe_successes",
    )

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        cfg = config or BreakerConfig()
        if not 0.0 < cfg.failure_threshold <= 1.0:
            raise OverloadError("failure_threshold must be in (0, 1]")
        if not 0.0 < cfg.ewma_alpha <= 1.0:
            raise OverloadError("ewma_alpha must be in (0, 1]")
        if cfg.open_duration <= 0 or cfg.half_open_probes < 1 or cfg.close_after < 1:
            raise OverloadError(
                "breaker needs open_duration > 0, half_open_probes >= 1, "
                "close_after >= 1"
            )
        self.config = cfg
        self.state = BreakerState.CLOSED
        self.failure_ewma = 0.0
        self.samples = 0
        self.stats = BreakerStats()
        #: ``(time, state)`` transition log — the recovery-time evidence the
        #: overload benchmark and soak assert against.
        self.transitions: list[tuple[float, BreakerState]] = []
        self._rng = random.Random(cfg.seed)
        self._reopen_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0

    def allow(self, now: float) -> bool:
        """May a punt cross the boundary right now?

        ``False`` means the caller must resolve the packet via the
        degradation mode without invoking the service. An elapsed open
        period flips to half-open and admits the configured probes.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            if now < self._reopen_at:
                self.stats.short_circuits += 1
                return False
            self._transition(now, BreakerState.HALF_OPEN)
            self._probes_left = self.config.half_open_probes
            self._probe_successes = 0
        if self._probes_left > 0:
            self._probes_left -= 1
            self.stats.probes += 1
            return True
        self.stats.short_circuits += 1
        return False

    def record_success(self, now: float) -> bool:
        """Record a successful punt; True when this closed the breaker."""
        self.stats.successes += 1
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after:
                self._transition(now, BreakerState.CLOSED)
                self.failure_ewma = 0.0
                self.samples = 0
                self.stats.recoveries += 1
                return True
            return False
        self._observe(0.0)
        return False

    def record_timeout(self, now: float) -> bool:
        """Record a deadline miss; True when this opened the breaker."""
        self.stats.timeouts += 1
        return self._failure(now)

    def record_error(self, now: float) -> bool:
        """Record a service error; True when this opened the breaker."""
        self.stats.errors += 1
        return self._failure(now)

    @property
    def reopen_at(self) -> float:
        """When the current open window ends (0.0 when never opened)."""
        return self._reopen_at

    def recovered_at(self) -> Optional[float]:
        """Time of the most recent open→…→closed recovery, if any."""
        for when, state in reversed(self.transitions):
            if state is BreakerState.CLOSED:
                return when
        return None

    def _failure(self, now: float) -> bool:
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe reopens immediately: the service is still sick.
            self._open(now)
            return True
        self._observe(1.0)
        cfg = self.config
        if (
            self.state is BreakerState.CLOSED
            and self.samples >= cfg.min_samples
            and self.failure_ewma >= cfg.failure_threshold
        ):
            self._open(now)
            self.stats.trips += 1
            return True
        return False

    def _open(self, now: float) -> None:
        cfg = self.config
        jitter = cfg.open_jitter * cfg.open_duration * self._rng.random()
        self._reopen_at = now + cfg.open_duration + jitter
        self._transition(now, BreakerState.OPEN)

    def _observe(self, outcome: float) -> None:
        alpha = self.config.ewma_alpha
        self.failure_ewma += alpha * (outcome - self.failure_ewma)
        self.samples += 1

    def _transition(self, now: float, state: BreakerState) -> None:
        self.state = state
        self.transitions.append((now, state))


# -- per-service policy --------------------------------------------------
@dataclass(frozen=True)
class ServicePolicy:
    """One service's declared overload behavior.

    ``deadline`` overrides :attr:`~repro.core.ipc.CostModel.punt_deadline`
    for this service (None inherits the cost-model default). ``degrade``
    picks what happens to punts the service failed to answer — including
    punts an open breaker never sends. ``fail_open_peer`` names the
    forwarding target for :attr:`DegradeMode.FAIL_OPEN`.
    """

    deadline: Optional[float] = None
    degrade: DegradeMode = DegradeMode.FAIL_CLOSED
    fail_open_peer: Optional[str] = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.degrade is DegradeMode.FAIL_OPEN and self.fail_open_peer is None:
            raise OverloadError("FAIL_OPEN policy needs a fail_open_peer")
        if self.deadline is not None and self.deadline <= 0:
            raise OverloadError("deadline must be positive when set")


# -- admission control ---------------------------------------------------
@dataclass(frozen=True)
class AdmissionConfig:
    """Terminus overload detector tuning.

    A true-cold lead is admitted to the slow path only while the MissQueue
    holds fewer than ``max_parked`` packets *and* the punt-rate token
    bucket (``punt_rate`` sustained punts/s, ``punt_burst`` burst) has a
    token. Barrier frames and established flows bypass admission entirely.
    """

    max_parked: int = 256
    punt_rate: float = 2000.0
    punt_burst: int = 64

    def __post_init__(self) -> None:
        if self.max_parked < 1 or self.punt_rate <= 0 or self.punt_burst < 1:
            raise OverloadError(
                "admission needs max_parked >= 1, punt_rate > 0, punt_burst >= 1"
            )


class AdmissionControl:
    """MissQueue-depth + punt-rate admission for true-cold slow-path work."""

    __slots__ = ("config", "_bucket")

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        # One token per punt, carried as one "byte" on the shared bucket
        # (rate_bps is bits/s, so punts/s scale by 8).
        self._bucket = TokenBucket(
            rate_bps=self.config.punt_rate * 8.0,
            burst_bytes=self.config.punt_burst,
        )

    def admit(self, now: float, queue_depth: int) -> bool:
        """True to admit one true-cold lead (consumes a rate token)."""
        if queue_depth >= self.config.max_parked:
            return False
        return self._bucket.try_consume(1, now)


# -- the per-terminus guard ----------------------------------------------
@dataclass(slots=True)
class OverloadStats:
    """Terminus-level overload ledger (one per :class:`OverloadGuard`).

    ``shed_packets`` counts packets refused admission (leads and their
    would-be followers); ``shed_groups`` counts whole cold flow groups shed
    by the batched planner. ``short_circuits`` are punts an open breaker
    resolved without invoking the service. ``deadline_misses`` are punts
    that crossed the boundary and timed out. The ``degraded_*`` counters
    partition every degradation outcome by mode actually applied;
    ``static_misses`` counts FAIL_STATIC requests the stale shelf could
    not serve (they fell through to fail-closed).
    """

    shed_packets: int = 0
    shed_groups: int = 0
    short_circuits: int = 0
    deadline_misses: int = 0
    degraded_open: int = 0
    degraded_static: int = 0
    degraded_closed: int = 0
    static_misses: int = 0


class OverloadGuard:
    """Per-terminus overload state: policies, breakers, admission.

    With no policies and no admission config the guard is inert — the
    terminus hot path reads one empty dict and moves on.
    """

    __slots__ = ("policies", "breakers", "admission", "stats")

    def __init__(self) -> None:
        self.policies: dict[int, ServicePolicy] = {}
        self.breakers: dict[int, CircuitBreaker] = {}
        self.admission: Optional[AdmissionControl] = None
        self.stats = OverloadStats()

    def set_policy(self, service_id: int, policy: ServicePolicy) -> None:
        """Declare (or replace) a service's overload policy + breaker."""
        self.policies[service_id] = policy
        self.breakers[service_id] = CircuitBreaker(policy.breaker)

    def policy_for(self, service_id: int) -> Optional[ServicePolicy]:
        return self.policies.get(service_id)

    def breaker_for(self, service_id: int) -> Optional[CircuitBreaker]:
        return self.breakers.get(service_id)

    def enable_admission(
        self, config: Optional[AdmissionConfig] = None
    ) -> AdmissionControl:
        self.admission = AdmissionControl(config)
        return self.admission

    def admit(self, now: float, queue_depth: int) -> bool:
        admission = self.admission
        if admission is None:
            return True
        return admission.admit(now, queue_depth)

    def state_counts(self) -> dict[BreakerState, int]:
        counts = {state: 0 for state in BreakerState}
        for breaker in self.breakers.values():
            counts[breaker.state] += 1
        return counts

    def open_count(self) -> int:
        return sum(
            1
            for breaker in self.breakers.values()
            if breaker.state is not BreakerState.CLOSED
        )

    def reset(self) -> None:
        """Crash semantics: breaker state is volatile terminus soft state.

        Policies (control-plane configuration) survive; every breaker
        restarts closed with fresh EWMA state. Cumulative counters are
        kept — they are the node's lifetime ledger, like the terminus
        stats.
        """
        for service_id, policy in self.policies.items():
            self.breakers[service_id] = CircuitBreaker(policy.breaker)


# -- control-plane retries -----------------------------------------------
@dataclass(slots=True)
class RetryStats:
    """Ledger for one caller's :func:`retry_call` usage."""

    calls: int = 0
    retries: int = 0
    giveups: int = 0
    backoff_total: float = 0.0


def retry_call(
    fn: Callable[[], Any],
    *,
    attempts: int = 3,
    base_delay: float = 0.001,
    max_delay: float = 0.05,
    deadline: Optional[float] = None,
    seed: int = 0,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_backoff: Optional[Callable[[float], None]] = None,
    stats: Optional[RetryStats] = None,
) -> Any:
    """Call ``fn`` with capped decorrelated-jitter retries.

    The backoff schedule is AWS-style decorrelated jitter — each delay is
    ``uniform(base_delay, 3 × previous)`` capped at ``max_delay`` — drawn
    from ``random.Random(seed)`` so a replayed control-plane scenario
    retries identically. ``deadline`` bounds the *cumulative* backoff
    budget per call: a retry whose delay would exceed it re-raises
    instead. Delays are virtual (this is a simulator: nothing sleeps);
    they are booked to ``stats.backoff_total`` and handed to
    ``on_backoff`` so callers may charge simulated time or real sleep as
    appropriate.

    Exceptions not in ``retry_on`` propagate immediately.
    """
    if attempts < 1:
        raise OverloadError("retry_call needs attempts >= 1")
    if stats is not None:
        stats.calls += 1
    rng = random.Random(seed)
    previous = base_delay
    total = 0.0
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on:
            if attempt + 1 >= attempts:
                if stats is not None:
                    stats.giveups += 1
                raise
            delay = min(max_delay, rng.uniform(base_delay, previous * 3))
            if deadline is not None and total + delay > deadline:
                if stats is not None:
                    stats.giveups += 1
                raise
            previous = delay
            total += delay
            if stats is not None:
                stats.retries += 1
                stats.backoff_total += delay
            if on_backoff is not None:
                on_backoff(delay)
    raise OverloadError("unreachable")  # pragma: no cover

"""Pipe health and border-SN failover (§3.3 resilience, made operational).

The paper's resilience story has two halves. PSP already tolerates
arbitrary loss and reordering on a pipe; what production needs on top is
*detection* (is the SN at the other end of this pipe still alive?) and
*repair* (if a designated border SN dies, the edomain must publish an
alternate so inter-edomain traffic keeps flowing without endpoint
involvement). This module supplies both:

* :class:`KeepaliveFrame` — a tiny liveness probe exchanged over idle
  SN↔SN pipes. Data traffic counts as liveness too (the terminus reports
  per-peer activity), so busy pipes carry no probe overhead.
* :class:`FailureDetector` — a phi-accrual-style detector: it tracks an
  EWMA of heartbeat inter-arrival times and grades silence as a multiple
  of that mean (``phi``). State walks up → suspect → dead as phi crosses
  the configured multiples, and snaps back to up (counting a recovery)
  the moment the peer is heard again.
* :class:`PipeHealthMonitor` — one per SN: sends keepalives over idle
  watched pipes on a fixed virtual-time period, answers probes, feeds
  the detectors, and fires ``on_peer_dead`` / ``on_peer_recovered``.
* :class:`FailoverCoordinator` — the control-plane reaction. When a
  dead peer turns out to be an edomain's designated border SN, the
  coordinator picks the first alive alternate, pre-establishes its
  border pipes, publishes the change through the edomain **core stores**
  (``resilience/border`` and ``resilience/remote-border/<edomain>``
  keys), purges the dead SN from membership state, and evicts every
  decision-cache entry that forwarded via the dead SN — so in-flight
  connections re-resolve onto the new border on their next punt, with no
  endpoint changes.
* :class:`ResilienceAgent` — the SN-side watcher: a core-store prefix
  watch that remaps the SN's border-peer table whenever the store's
  resilience keys change (and resyncs on restart, since a crashed SN
  misses updates).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from .. import sanitize as _san
from ..control.core_store import CoreStoreError
from ..netsim.engine import PeriodicTask
from ..obs.recorder import NULL_RECORDER
from .overload import RetryStats, retry_call

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..control.core_store import CoreStore
    from ..obs.recorder import FlightRecorder, NullRecorder
    from .federation import InterEdge
    from .service_node import ServiceNode


class ResilienceError(Exception):
    """Raised for invalid resilience configuration."""


#: Wire size of a keepalive probe: outer L3 (20) + minimal sealed ILP
#: control stub (4). Small enough to be negligible against data traffic.
KEEPALIVE_WIRE_SIZE = 24


@dataclass(slots=True)
class KeepaliveFrame:
    """A liveness probe (or its echo) on an SN↔SN pipe."""

    src: str
    dst: str
    seq: int
    reply: bool = False
    wire_size: int = KEEPALIVE_WIRE_SIZE


class PeerState(enum.Enum):
    UP = "up"
    SUSPECT = "suspect"
    DEAD = "dead"


#: Severity order used to make silence-driven transitions monotonic.
_SEVERITY = {PeerState.UP: 0, PeerState.SUSPECT: 1, PeerState.DEAD: 2}


class FailureDetector:
    """Phi-accrual-style failure detector for one peer.

    ``phi(now)`` is the current silence measured in multiples of the
    EWMA mean heartbeat interval. Crossing ``suspect_multiple`` marks the
    peer SUSPECT; crossing ``dead_multiple`` marks it DEAD. Hearing the
    peer at any point snaps the state back to UP (a DEAD → UP transition
    increments :attr:`recoveries`).

    Inter-arrival samples are clamped to ``4 × expected_interval`` so one
    long outage does not inflate the mean and blunt the next detection;
    the mean is floored at half the expected interval so bursty arrivals
    cannot make the detector hair-triggered.
    """

    def __init__(
        self,
        expected_interval: float,
        suspect_multiple: float = 3.0,
        dead_multiple: float = 6.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        if expected_interval <= 0:
            raise ResilienceError("expected_interval must be positive")
        if not 0 < suspect_multiple < dead_multiple:
            raise ResilienceError("need 0 < suspect_multiple < dead_multiple")
        self.expected_interval = expected_interval
        self.suspect_multiple = suspect_multiple
        self.dead_multiple = dead_multiple
        self.ewma_alpha = ewma_alpha
        self.mean_interval = expected_interval
        self.last_heard: Optional[float] = None
        self.state = PeerState.UP
        #: (virtual time, new state) — the full transition history.
        self.transitions: list[tuple[float, PeerState]] = []
        self.recoveries = 0

    def heard(self, now: float) -> PeerState:
        """Record a heartbeat (probe, echo, or data); returns the *prior* state."""
        previous = self.state
        if self.last_heard is not None:
            sample = min(now - self.last_heard, 4.0 * self.expected_interval)
            self.mean_interval += self.ewma_alpha * (sample - self.mean_interval)
            self.mean_interval = max(
                self.mean_interval, 0.5 * self.expected_interval
            )
        self.last_heard = now
        if previous is not PeerState.UP:
            if previous is PeerState.DEAD:
                self.recoveries += 1
            self._transition(now, PeerState.UP)
        return previous

    def phi(self, now: float) -> float:
        """Silence since last heartbeat, in multiples of the mean interval."""
        if self.last_heard is None:
            return 0.0
        return (now - self.last_heard) / self.mean_interval

    def evaluate(self, now: float) -> PeerState:
        """Grade current silence; only escalates (hearing is what de-escalates)."""
        phi = self.phi(now)
        if phi >= self.dead_multiple:
            target = PeerState.DEAD
        elif phi >= self.suspect_multiple:
            target = PeerState.SUSPECT
        else:
            target = PeerState.UP
        if _SEVERITY[target] > _SEVERITY[self.state]:
            self._transition(now, target)
        return self.state

    def reset(self, now: float) -> None:
        """Fresh start (e.g. after the *local* SN restarts): assume alive."""
        self.last_heard = now
        self.mean_interval = self.expected_interval
        if self.state is not PeerState.UP:
            self._transition(now, PeerState.UP)

    def _transition(self, now: float, state: PeerState) -> None:
        self.state = state
        self.transitions.append((now, state))


@dataclass
class PipeHealthStats:
    """Counters the monitor keeps per SN (surfaced via monitoring.py)."""

    keepalives_sent: int = 0
    keepalives_received: int = 0
    echoes_sent: int = 0
    deaths_detected: int = 0
    recoveries_detected: int = 0


class PipeHealthMonitor:
    """Keepalive scheduling + failure detection for one SN's pipes.

    The monitor ticks every ``interval`` virtual seconds. On each tick,
    for every watched peer: if the pipe has been idle for at least one
    interval (no data, probe, or echo heard), a keepalive is sent; then
    the peer's detector is evaluated and DEAD transitions fire
    :attr:`on_peer_dead`. Hearing a dead peer again fires
    :attr:`on_peer_recovered`.
    """

    def __init__(
        self,
        sn: "ServiceNode",
        interval: float = 0.25,
        suspect_multiple: float = 3.0,
        dead_multiple: float = 6.0,
    ) -> None:
        self.sn = sn
        self.interval = interval
        self.suspect_multiple = suspect_multiple
        self.dead_multiple = dead_multiple
        self.detectors: dict[str, FailureDetector] = {}
        self.stats = PipeHealthStats()
        self.on_peer_dead: Optional[Callable[[str], None]] = None
        self.on_peer_recovered: Optional[Callable[[str], None]] = None
        self._seq = itertools.count()
        self._task = PeriodicTask(sn.sim, interval, self._tick)
        self.running = False

    # -- lifecycle ---------------------------------------------------------
    def start(self, initial_delay: Optional[float] = None) -> None:
        if not self.running:
            self.running = True
            self._task.start(initial_delay=initial_delay)

    def stop(self) -> None:
        if self.running:
            self.running = False
            self._task.stop()

    def reset(self) -> None:
        """Give every peer a fresh grace period (local SN just restarted)."""
        now = self.sn.sim.now
        for detector in self.detectors.values():
            detector.reset(now)

    # -- peer registry -----------------------------------------------------
    def watch_peer(self, address: str) -> FailureDetector:
        detector = self.detectors.get(address)
        if detector is None:
            detector = FailureDetector(
                self.interval, self.suspect_multiple, self.dead_multiple
            )
            detector.last_heard = self.sn.sim.now  # alive until proven silent
            self.detectors[address] = detector
        return detector

    def unwatch_peer(self, address: str) -> None:
        self.detectors.pop(address, None)

    def state_of(self, address: str) -> Optional[PeerState]:
        detector = self.detectors.get(address)
        return detector.state if detector is not None else None

    def state_counts(self) -> dict[PeerState, int]:
        counts = {state: 0 for state in PeerState}
        for detector in self.detectors.values():
            counts[detector.state] += 1
        return counts

    # -- liveness input ----------------------------------------------------
    def heard(self, peer: str) -> None:
        """Any traffic from ``peer`` counts as a heartbeat."""
        detector = self.detectors.get(peer)
        if detector is None:
            return
        previous = detector.heard(self.sn.sim.now)
        if previous is PeerState.DEAD:
            self.stats.recoveries_detected += 1
            if self.on_peer_recovered is not None:
                self.on_peer_recovered(peer)

    def handle_keepalive(self, frame: KeepaliveFrame) -> None:
        self.stats.keepalives_received += 1
        self.heard(frame.src)
        if not frame.reply:
            self._send(frame.src, reply=True, seq=frame.seq)

    # -- the periodic tick -------------------------------------------------
    def _tick(self) -> None:
        sn = self.sn
        if sn.failed:
            return  # a crashed SN neither probes nor judges
        now = sn.sim.now
        # Snapshot: a death callback may establish new pipes (and thus
        # register new detectors) while we iterate.
        for address, detector in list(self.detectors.items()):
            if (
                detector.last_heard is None
                or now - detector.last_heard >= self.interval
            ):
                self._send(address, reply=False, seq=next(self._seq))
            previous = detector.state
            current = detector.evaluate(now)
            if current is PeerState.DEAD and previous is not PeerState.DEAD:
                self.stats.deaths_detected += 1
                if self.on_peer_dead is not None:
                    self.on_peer_dead(address)

    def _send(self, peer: str, reply: bool, seq: int) -> None:
        node = self.sn.peer_node(peer)
        if node is None or not self.sn.has_link_to(node):
            return
        frame = KeepaliveFrame(src=self.sn.address, dst=peer, seq=seq, reply=reply)
        self.sn.send_frame(frame, node)
        if reply:
            self.stats.echoes_sent += 1
        else:
            self.stats.keepalives_sent += 1


class ResilienceAgent:
    """The SN-side subscriber to its edomain core's resilience keys.

    Key schema (written by :meth:`InterEdge.peer_all` and the
    :class:`FailoverCoordinator`):

    * ``resilience/border`` — this edomain's current designated border SN;
    * ``resilience/remote-border/<edomain>`` — the *remote* edomain's
      current border SN (the far end of the long-lived border pipe).

    The remap rule is §3.2's: the border SN itself reaches a remote
    edomain via that edomain's border; every other SN relays via the
    local border.
    """

    def __init__(self, sn: "ServiceNode", store: "CoreStore") -> None:
        self.sn = sn
        self.store = store
        self.resyncs = 0
        #: Backoff bookkeeping for retried core-store reads.
        self.retry_stats = RetryStats()
        self._token = store.watch_prefix("resilience/", self._on_update)

    def _on_update(self, key: str, op: str, value: Any) -> None:
        if self.sn.failed:
            return  # crashed SNs miss control-plane pushes; restart resyncs
        self.resync()

    def _count_retry(self, delay: float) -> None:
        obs = self.sn.obs
        if obs is not None:
            obs.retries.inc()

    def resync(self) -> None:
        """Recompute this SN's border-peer table from the store.

        Store reads go through :func:`~repro.core.overload.retry_call`
        (capped decorrelated-jitter backoff, deterministic per-agent): a
        post-restart resync races the very failover it is catching up on,
        and a transiently unreachable core must not leave the SN with a
        half-built border table when the next attempt would have succeeded.
        """
        self.resyncs += 1
        store = self.store
        border = retry_call(
            lambda: store.get("resilience/border"),
            retry_on=(CoreStoreError,),
            stats=self.retry_stats,
            on_backoff=self._count_retry,
        )
        for key in retry_call(
            lambda: store.keys("resilience/remote-border/"),
            retry_on=(CoreStoreError,),
            stats=self.retry_stats,
            on_backoff=self._count_retry,
        ):
            remote = key.rsplit("/", 1)[1]
            remote_border = retry_call(
                lambda key=key: store.get(key),
                retry_on=(CoreStoreError,),
                stats=self.retry_stats,
                on_backoff=self._count_retry,
            )
            if remote_border is None:
                continue
            if border == self.sn.address or border is None:
                self.sn.set_border_peer(remote, remote_border)
            else:
                self.sn.set_border_peer(remote, border)

    def detach(self) -> None:
        self.store.unwatch_prefix(self._token)


class FailoverCoordinator:
    """Federation-level reaction to pipe-health verdicts.

    Models the edomain operator's control loop: death reports come in
    from SN health monitors; if the dead SN is a designated border, the
    coordinator promotes the first alive alternate (deterministic address
    order), pre-establishes its inter-edomain pipes, publishes the new
    mapping through every affected core store (watches do the per-SN
    remapping), purges the dead SN from membership, and evicts stale
    fast-path state federation-wide. Duplicate reports for the same dead
    SN are coalesced; a recovery clears the dedup so a later re-crash is
    handled afresh.
    """

    def __init__(self, net: "InterEdge") -> None:
        self.net = net
        #: Audit log of resilience actions: dicts with at/kind/... keys.
        self.log: list[dict[str, Any]] = []
        self._failed_over: set[str] = set()
        #: Backoff bookkeeping for retried store publishes and purges.
        self.retry_stats = RetryStats()
        #: Flight recorder for failover spans; the shared no-op by default.
        #: Each death report opens its own trace (control events are not
        #: part of any packet's ingress trace).
        self.recorder: "FlightRecorder | NullRecorder" = NULL_RECORDER

    # -- health-monitor callbacks -----------------------------------------
    def peer_dead(self, reporter: "ServiceNode", address: str) -> None:
        recorder = self.recorder
        if recorder.enabled:
            recorder.new_trace()
        span = recorder.begin_span(
            "resilience.peer_dead", reporter=reporter.address, peer=address
        )
        try:
            self._peer_dead(reporter, address)
        finally:
            recorder.end_span(span)

    def _peer_dead(self, reporter: "ServiceNode", address: str) -> None:
        evicted = reporter.cache.invalidate_by_target(address)
        self.log.append(
            {
                "at": self.net.sim.now,
                "kind": "peer-dead",
                "reporter": reporter.address,
                "peer": address,
                "evicted": evicted,
            }
        )
        edomain_name = self.net.directory.edomain_of(address)
        if edomain_name is None:
            return
        edomain = self.net.edomains[edomain_name]
        if edomain.border_address != address or address in self._failed_over:
            return
        alternate = self._pick_alternate(edomain, address)
        if alternate is None:
            self.log.append(
                {
                    "at": self.net.sim.now,
                    "kind": "failover-impossible",
                    "edomain": edomain_name,
                    "dead": address,
                }
            )
            return
        self._failed_over.add(address)
        self.failover_border(edomain, address, alternate)

    def peer_recovered(self, reporter: "ServiceNode", address: str) -> None:
        self._failed_over.discard(address)
        self.log.append(
            {
                "at": self.net.sim.now,
                "kind": "peer-recovered",
                "reporter": reporter.address,
                "peer": address,
            }
        )

    # -- the failover itself ----------------------------------------------
    def _pick_alternate(self, edomain: Any, dead: str) -> Optional[str]:
        for address in edomain.sn_addresses():
            if address != dead and not edomain.sns[address].failed:
                return address
        return None

    def failover_border(self, edomain: Any, dead: str, alternate: str) -> None:
        """Promote ``alternate`` to border SN of ``edomain``; publish it."""
        recorder = self.recorder
        span = recorder.begin_span(
            "resilience.failover",
            edomain=edomain.name,
            dead=dead,
            alternate=alternate,
        )
        try:
            self._failover_border(edomain, dead, alternate)
        finally:
            recorder.end_span(span)

    def _failover_border(self, edomain: Any, dead: str, alternate: str) -> None:
        alternate_sn = edomain.sns[alternate]
        remote_domains = [
            dom for dom in self.net.edomains.values() if dom is not edomain
        ]
        # Pre-establish the new border pipes before publishing, so watchers
        # remap onto pipes that already exist.
        for remote in remote_domains:
            remote_border = remote.border_sn
            if not alternate_sn.has_pipe_to(remote_border.address):
                alternate_sn.establish_pipe(
                    remote_border, latency=self.net.border_latency
                )
        edomain.designate_border(alternate)  # publishes resilience/border
        # Publishing the new border to every remote core and purging the
        # dead SN are the two writes the whole federation converges on;
        # transient store trouble retries with bounded backoff rather than
        # leaving some edomains pointing at a dead border.
        for remote in remote_domains:
            retry_call(
                lambda r=remote: r.store.put(
                    f"resilience/remote-border/{edomain.name}", alternate
                ),
                retry_on=(CoreStoreError,),
                stats=self.retry_stats,
            )
        purged = retry_call(
            lambda: edomain.membership_core.purge_sn(dead),
            retry_on=(CoreStoreError,),
            stats=self.retry_stats,
        )
        evicted = 0
        for sn in self.net.all_sns():
            if sn.address != dead:
                evicted += sn.cache.invalidate_by_target(dead)
        self.log.append(
            {
                "at": self.net.sim.now,
                "kind": "border-failover",
                "edomain": edomain.name,
                "dead": dead,
                "alternate": alternate,
                "cache_evicted": evicted,
                "membership_purged": purged,
            }
        )
        if _san.ENABLED:
            self._san_check_failover(edomain, dead, alternate)

    def _san_check_failover(self, edomain: Any, dead: str, alternate: str) -> None:
        """Armed postconditions: the dead border must be fully excised.

        After a failover no surviving SN may hold fast-path state that
        forwards via the dead SN, the edomain must advertise the promoted
        alternate, and every remote edomain's store must name it too.
        """
        if edomain.border_address != alternate:
            _san.fail(
                "failover",
                f"edomain {edomain.name} advertises border "
                f"{edomain.border_address!r}, expected {alternate!r}",
            )
        for sn in self.net.all_sns():
            if sn.address == dead:
                continue
            stale = sn.cache.count_targeting(dead)
            if stale:
                _san.fail(
                    "failover",
                    f"{sn.address} still caches {stale} decision(s) "
                    f"forwarding via dead SN {dead}",
                )
        for remote in self.net.edomains.values():
            if remote is edomain:
                continue
            published = remote.store.get(f"resilience/remote-border/{edomain.name}")
            if published != alternate:
                _san.fail(
                    "failover",
                    f"edomain {remote.name} maps {edomain.name}'s border to "
                    f"{published!r}, expected {alternate!r}",
                )

    # -- queries -----------------------------------------------------------
    def failovers(self) -> list[dict[str, Any]]:
        return [entry for entry in self.log if entry["kind"] == "border-failover"]

"""Sanitizer-mode runtime invariant checks.

Setting ``REPRO_SANITIZE=1`` in the environment arms cheap runtime
assertions at the datapath and resilience layers, analogous to compiling
with ``-fsanitize``:

* **nonce monotonicity** — within one :class:`~repro.core.psp.SealingKey`
  epoch a PSP context must never seal two packets with the same or a
  decreasing nonce counter (reuse would void confidentiality);
* **cache/index coherence** — after every
  :class:`~repro.core.decision_cache.DecisionCache` mutation the secondary
  connection index, the random-access key list, and the entry table must
  describe the same key set, and after ``invalidate_by_target(peer)`` no
  surviving entry may still forward via ``peer``;
* **header re-encode idempotence** — the bytes the terminus forwards must
  equal ``header.encode()`` recomputed from the decoded object (the memo
  cache must never alias a stale wire form);
* **failover postconditions** — after a border-SN failover no repaired
  route may still point at the dead SN.

The checks are deliberately O(1)-ish (full-table scans only below a size
cutoff) so the tier-1 suite can run once under ``REPRO_SANITIZE=1`` in CI
without a separate slow lane. Violations raise :class:`SanitizeError`,
which subclasses ``AssertionError``: a sanitizer failure is a bug in the
repo, never an input error.

Call sites read ``ENABLED`` through the module (``_san.ENABLED``) so the
test suite can flip it at runtime via :func:`set_enabled`.
"""

from __future__ import annotations

import os

__all__ = [
    "CONSERVATION_LEDGERS",
    "ENABLED",
    "SanitizeError",
    "check_ledger",
    "fail",
    "set_enabled",
    "enabled_from_env",
]


class SanitizeError(AssertionError):
    """An armed runtime invariant was violated (always a repo bug)."""


def enabled_from_env() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


#: Armed at import time from the environment; tests flip it with
#: :func:`set_enabled`. Read via attribute lookup (``_san.ENABLED``), never
#: ``from ... import ENABLED``, so runtime toggles are seen everywhere.
ENABLED: bool = enabled_from_env()

#: Full-structure coherence scans only run below this size; above it the
#: sanitizer falls back to O(1) cardinality checks so an armed tier-1 run
#: stays fast even with large caches.
FULL_SCAN_LIMIT = 512


def set_enabled(value: bool) -> bool:
    """Toggle sanitizer checks at runtime; returns the previous state."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


def fail(check: str, detail: str) -> None:
    """Raise a :class:`SanitizeError` for a named check."""
    raise SanitizeError(f"sanitize[{check}]: {detail}")


#: Declarative conservation ledgers: stats-class name -> (total field,
#: exit fields). The invariant is ``total == sum(exits) + live`` where
#: ``live`` is passed by the call site (in-flight units not yet booked to
#: an exit). The static analyzer (LEDGER001) cross-checks every field
#: named here against the class definition, so a renamed counter breaks
#: the build instead of silently voiding the runtime check.
CONSERVATION_LEDGERS = {
    "MissQueueStats": (
        "offered",
        ("drained_fast", "replayed", "spilled", "shed", "dropped"),
    ),
}


def check_ledger(stats: object, check: str, *, live: int = 0) -> None:
    """Assert the declared conservation ledger for *stats* balances.

    Looks up ``type(stats).__name__`` in :data:`CONSERVATION_LEDGERS` and
    verifies ``total == sum(exits) + live``. Raises :class:`SanitizeError`
    (via :func:`fail`) when the ledger is missing or out of balance —
    both are repo bugs, never input errors.
    """
    decl = CONSERVATION_LEDGERS.get(type(stats).__name__)
    if decl is None:
        fail(check, f"no conservation ledger declared for {type(stats).__name__}")
        return
    total_field, exit_fields = decl
    total = getattr(stats, total_field)
    if total != sum(getattr(stats, field) for field in exit_fields) + live:
        parts = " + ".join(
            f"{field}={getattr(stats, field)}" for field in exit_fields
        )
        fail(check, f"{total_field}={total} != {parts} + live={live}")

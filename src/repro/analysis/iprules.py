"""Interprocedural rules: EVT001, DET003, LEDGER001.

These rules run over the whole-program graph built by
:mod:`repro.analysis.graph` instead of one module at a time:

``EVT001``
    No function transitively reachable from an event-loop callback may
    reach a blocking or wall-clock primitive (``time.sleep``, the
    ``time.*`` clocks, sockets, ``subprocess``, ``threading``
    synchronization, ``select``). The netsim event loop is the
    determinism boundary of every experiment; one hidden
    ``time.sleep`` three calls deep voids bit-identical replay. The
    finding message carries the full call chain from the registered
    callback to the offending call.

``DET003``
    Seed provenance: every ``random.Random(seed)`` / ``reseed(x)``
    argument must dataflow back to a function/constructor parameter, a
    config-object field, a module constant, or a literal. It must never
    derive from ``os.urandom``, ``id()``, ``hash()``, entropy modules,
    or iteration over a set/dict (unordered across processes).

``LEDGER001``
    Stats-ledger integrity: every ``int``/``float`` counter field on a
    ``*Stats`` dataclass must have at least one write site somewhere in
    the non-test program (dead counters report zero forever and rot
    dashboards), and every field named in a ``CONSERVATION_LEDGERS``
    declaration (see :mod:`repro.sanitize`) must exist on the class it
    names — a ledger typo otherwise silently weakens the runtime
    conservation check.

Findings are reported through the owning module's context, so
``# repro: allow(CODE)`` waivers work exactly like the per-module
rules.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Optional

from .engine import Finding
from .graph import FunctionInfo, ProgramGraph

# --------------------------------------------------------------------------
# EVT001 — event-loop purity
# --------------------------------------------------------------------------

#: ``time`` functions that block or read a real clock.
_TIME_BLOCKED = frozenset(
    {
        "sleep",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    }
)

#: Modules any call into which blocks or touches the outside world.
_BLOCKED_MODULES = frozenset({"socket", "subprocess", "threading", "select"})

#: Specific blocking ``os`` entry points (``os.urandom`` stays DET001's).
_OS_BLOCKED = frozenset({"system", "popen", "fork", "wait", "waitpid"})


def _blocked_reason(dotted: str) -> Optional[str]:
    """Why a dotted external call is illegal under an event callback."""
    top, _, name = dotted.partition(".")
    if top == "time" and name in _TIME_BLOCKED:
        kind = "blocking" if name == "sleep" else "wall-clock"
        return f"{dotted}() is a {kind} primitive"
    if top in _BLOCKED_MODULES:
        return f"{dotted}() blocks or leaves the simulated substrate"
    if top == "os" and name in _OS_BLOCKED:
        return f"{dotted}() blocks or spawns outside the event loop"
    return None


def rule_evt001(program: ProgramGraph) -> list[Finding]:
    """EVT001: nothing reachable from an event callback blocks."""
    roots = [
        reg.callback for reg in program.registrations if reg.callback is not None
    ]
    registered_at: dict[str, str] = {}
    for reg in program.registrations:
        if reg.callback is not None and reg.callback not in registered_at:
            registrar = program.functions.get(reg.registrar)
            where = registrar.module.ctx.rel_path if registrar else "?"
            registered_at[reg.callback] = f"{where}:{reg.node.lineno}"
    # Multi-source BFS with parent pointers for chain reconstruction.
    parent: dict[str, Optional[str]] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root not in parent and root in program.functions:
            parent[root] = None
            queue.append(root)
    order: list[str] = []
    while queue:
        qual = queue.popleft()
        order.append(qual)
        info = program.functions[qual]
        for edge in info.calls:
            if edge.target not in parent and edge.target in program.functions:
                parent[edge.target] = qual
                queue.append(edge.target)
    findings: list[Finding] = []
    for qual in order:
        info = program.functions[qual]
        ctx = info.module.ctx
        if ctx.is_test:
            continue
        for call in info.external_calls:
            reason = _blocked_reason(call.dotted)
            if reason is None:
                continue
            chain: list[str] = []
            cursor: Optional[str] = qual
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chain.reverse()
            root = chain[0]
            where = registered_at.get(root, "?")
            found = ctx.finding(
                call.node,
                "EVT001",
                f"{reason}, but it is reachable from event-loop callback "
                f"{root} (registered at {where}); call chain: "
                + " -> ".join(chain),
            )
            if found is not None:
                findings.append(found)
    return findings


# --------------------------------------------------------------------------
# DET003 — seed provenance
# --------------------------------------------------------------------------

#: Dotted callees a seed expression must never derive from.
_BANNED_SEED_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "os.getpid",
        "builtins.id",
        "builtins.hash",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

_BANNED_SEED_MODULES = frozenset({"secrets"})

_SETISH_BUILTINS = frozenset({"set", "frozenset", "dict"})

_SETISH_METHODS = frozenset({"keys", "values", "items"})


class _SeedEnv:
    """One function's dataflow facts for seed-provenance checks."""

    __slots__ = ("params", "assigns", "for_iters", "info")

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.params: set[str] = set()
        self.assigns: dict[str, list[ast.expr]] = {}
        self.for_iters: dict[str, ast.expr] = {}
        node = info.node
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            self.params.add(arg.arg)
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)
        if isinstance(node, ast.Lambda):
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                self._note_assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._note_assign([stmt.target], stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._note_for_target(stmt.target, stmt.iter)
            elif isinstance(stmt, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in stmt.generators:
                    self._note_for_target(gen.target, gen.iter)

    def _note_assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self.assigns.setdefault(target.id, []).append(value)
            elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
                for element, item in zip(target.elts, value.elts):
                    if isinstance(element, ast.Name):
                        self.assigns.setdefault(element.id, []).append(item)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.assigns.setdefault(element.id, []).append(value)

    def _note_for_target(self, target: ast.expr, iterable: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.for_iters[target.id] = iterable
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.for_iters[element.id] = iterable


def _is_setish(expr: ast.expr, env: _SeedEnv) -> bool:
    """Does the expression evaluate to a set/dict (unordered iteration)?"""
    if isinstance(expr, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SETISH_BUILTINS:
            return func.id not in env.assigns and func.id not in env.params
        if isinstance(func, ast.Attribute) and func.attr in _SETISH_METHODS:
            return True
    return False


def _callee_dotted(call: ast.Call, env: _SeedEnv) -> Optional[str]:
    """Resolve a seed-expression callee to a dotted import name."""
    mod = env.info.module
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in env.assigns or func.id in env.params:
            return None
        origin = mod.import_names.get(func.id)
        if origin is not None:
            return origin
        if func.id in ("id", "hash"):
            return f"builtins.{func.id}"
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        target_mod = mod.import_modules.get(func.value.id)
        if target_mod is not None:
            return f"{target_mod}.{func.attr}"
    return None


def _seed_violation(
    expr: ast.expr,
    env: _SeedEnv,
    visiting: frozenset[str],
    allow_set_iter: bool = False,
) -> Optional[str]:
    """Reason the expression's provenance is banned, or None if clean."""
    if isinstance(expr, ast.Constant):
        return None
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in visiting or name in env.params:
            return None
        if name in env.assigns:
            for value in env.assigns[name]:
                reason = _seed_violation(
                    value, env, visiting | {name}, allow_set_iter
                )
                if reason is not None:
                    return reason
            return None
        if name in env.for_iters:
            iterable = env.for_iters[name]
            if not allow_set_iter and _is_setish(iterable, env):
                return "iterates a set/dict (unordered across processes)"
            return _seed_violation(iterable, env, visiting | {name}, True)
        const = env.info.module.constants.get(name)
        if const is not None:
            return _seed_violation(const, env, visiting | {name}, allow_set_iter)
        return None
    if isinstance(expr, ast.Attribute):
        # Config-field reads are blessed; only a call buried in the chain
        # (``os.urandom(4).hex``) can poison it.
        return _seed_violation(expr.value, env, visiting, allow_set_iter)
    if isinstance(expr, ast.Call):
        dotted = _callee_dotted(expr, env)
        if dotted is not None:
            top, _, name = dotted.partition(".")
            if dotted in _BANNED_SEED_CALLS or top in _BANNED_SEED_MODULES:
                return f"derives from {dotted}()"
            if top == "time" and name in _TIME_BLOCKED:
                return f"derives from wall clock {dotted}()"
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            # sorted() imposes a total order, neutralizing set/dict
            # iteration order — but not entropy inside the arguments.
            return _seed_violation_children(expr, env, visiting, True)
        if isinstance(func, ast.Name) and func.id in ("iter", "next", "list",
                                                      "tuple", "min", "max"):
            for arg in expr.args:
                if not allow_set_iter and _is_setish(arg, env):
                    return "iterates a set/dict (unordered across processes)"
        return _seed_violation_children(expr, env, visiting, allow_set_iter)
    return _seed_violation_children(expr, env, visiting, allow_set_iter)


def _seed_violation_children(
    expr: ast.expr,
    env: _SeedEnv,
    visiting: frozenset[str],
    allow_set_iter: bool,
) -> Optional[str]:
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            reason = _seed_violation(child, env, visiting, allow_set_iter)
            if reason is not None:
                return reason
    return None


def _walk_own_body(node: ast.AST) -> "list[ast.AST]":
    """Walk a function's own statements, not nested def/lambda bodies.

    Nested functions are their own graph nodes; their seed sites are
    checked when the loop reaches their :class:`FunctionInfo`.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = (
        list(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Lambda)
        else [node.body]
    )
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        out.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return out


def rule_det003(program: ProgramGraph) -> list[Finding]:
    """DET003: RNG seeds must trace to parameters, config, or literals."""
    findings: list[Finding] = []
    for info in program.functions.values():
        ctx = info.module.ctx
        if ctx.is_test:
            continue
        env: Optional[_SeedEnv] = None
        seed_sites: list[tuple[ast.Call, ast.expr, str]] = []
        for call in info.external_calls:
            if call.dotted == "random.Random" and call.node.args:
                seed_sites.append(
                    (call.node, call.node.args[0], "random.Random()")
                )
        for node in _walk_own_body(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "reseed"
                and len(node.args) == 1
            ):
                seed_sites.append((node, node.args[0], "reseed()"))
        for call_node, seed_expr, label in seed_sites:
            if env is None:
                env = _SeedEnv(info)
            reason = _seed_violation(seed_expr, env, frozenset())
            if reason is None:
                continue
            found = ctx.finding(
                call_node,
                "DET003",
                f"seed argument of {label} {reason}; seeds must dataflow "
                "from a constructor parameter, config field, or literal "
                "so replays are bit-identical",
            )
            if found is not None:
                findings.append(found)
    return findings


# --------------------------------------------------------------------------
# LEDGER001 — stats-counter liveness and ledger declarations
# --------------------------------------------------------------------------

_COUNTER_ANNOTATIONS = frozenset({"int", "float"})


def rule_ledger001(program: ProgramGraph) -> list[Finding]:
    """LEDGER001: no dead ``*Stats`` counters, no ledger typos."""
    findings: list[Finding] = []
    stats_classes = {
        qual: cls
        for qual, cls in program.classes.items()
        if cls.name.endswith("Stats")
        and cls.fields
        and not cls.module.ctx.is_test
    }
    if not stats_classes and not program.ledger_decls:
        return findings
    by_name: dict[str, list[str]] = {}
    for qual, cls in stats_classes.items():
        by_name.setdefault(cls.name, []).append(qual)
    # Collect every write site in non-test code: direct attribute stores
    # with a typed receiver credit that class; untyped stores credit every
    # stats class carrying the field name (conservative: never report a
    # counter as dead when an untyped write might feed it).
    written: dict[str, set[str]] = {qual: set() for qual in stats_classes}
    for info in program.functions.values():
        if info.module.ctx.is_test:
            continue
        for write in info.attr_writes:
            if write.receiver_class is not None:
                if write.receiver_class in written:
                    written[write.receiver_class].add(write.attr)
                continue
            for qual, cls in stats_classes.items():
                if write.attr in cls.fields:
                    written[qual].add(write.attr)
    for qual, cls in sorted(stats_classes.items()):
        ctx = cls.module.ctx
        for field_name, (ann, node) in cls.fields.items():
            if ann not in _COUNTER_ANNOTATIONS:
                continue
            if field_name in written[qual]:
                continue
            found = ctx.finding(
                node,
                "LEDGER001",
                f"counter {cls.name}.{field_name} has no write site "
                "anywhere in the program; dead counters report zero "
                "forever — wire it up or delete it",
            )
            if found is not None:
                findings.append(found)
    # Ledger declarations: every named class and field must exist.
    for decl in program.ledger_decls:
        mod = program.modules.get(decl.module)
        if mod is None:
            continue
        ctx = mod.ctx
        quals = by_name.get(decl.class_name, [])
        if not quals:
            found = ctx.finding(
                decl.node,
                "LEDGER001",
                f"conservation ledger names unknown stats class "
                f"{decl.class_name!r}; the runtime check would KeyError "
                "or silently skip",
            )
            if found is not None:
                findings.append(found)
            continue
        cls = program.classes[quals[0]]
        for field_name in decl.fields:
            if field_name in cls.fields:
                continue
            found = ctx.finding(
                decl.node,
                "LEDGER001",
                f"conservation ledger for {decl.class_name} names field "
                f"{field_name!r} which does not exist on the class "
                "(ledger typo — the runtime balance check would break)",
            )
            if found is not None:
                findings.append(found)
    return findings


for _rule in (rule_evt001, rule_det003, rule_ledger001):
    _rule.interprocedural = True  # type: ignore[attr-defined]

INTERPROCEDURAL_RULES = (rule_evt001, rule_det003, rule_ledger001)

"""The rule catalog: DET001, DET002, WIRE001, RES001.

Each rule is a callable ``rule(ctx: ModuleContext) -> list[Finding]``.
Applicability by file kind is decided here (e.g. determinism and wire
rules do not run over test files; reach-in and watch-leak rules do).
"""

from __future__ import annotations

import ast
from typing import Optional

from .engine import Finding, ModuleContext

# --------------------------------------------------------------------------
# DET001 — no unseeded nondeterminism
# --------------------------------------------------------------------------

#: ``random`` module-level functions that draw from the *global* RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "seed",
    }
)

#: Wall-clock reads: real time must never leak into simulated time.
_WALL_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
    }
)

#: Entropy sources allowed only behind an explicit waiver (the crypto
#: entropy boundary: key generation and connection-ID minting).
_ENTROPY_UUID_FUNCS = frozenset({"uuid1", "uuid4"})


class _ImportTracker(ast.NodeVisitor):
    """Map local names to the modules/objects they were imported from."""

    def __init__(self) -> None:
        #: local alias -> top-level module name ("random", "numpy", ...)
        self.modules: dict[str, str] = {}
        #: local name -> "module.attr" for from-imports
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never alias stdlib entropy modules
        top = node.module.split(".")[0]
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{top}.{alias.name}"


def _resolve_module(tracker: _ImportTracker, node: ast.expr) -> Optional[str]:
    """Top-level module a Name receiver refers to, if it is an import."""
    if isinstance(node, ast.Name):
        return tracker.modules.get(node.id)
    return None


def rule_det001(ctx: ModuleContext) -> list[Finding]:
    """DET001: no unseeded nondeterminism outside blessed wrappers."""
    if ctx.is_test:
        return []
    tracker = _ImportTracker()
    tracker.visit(ctx.tree)
    findings: list[Finding] = []

    def emit(node: ast.AST, message: str) -> None:
        found = ctx.finding(node, "DET001", message)
        if found is not None:
            findings.append(found)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            origin = tracker.names.get(func.id)
            if func.id == "hash" and origin is None:
                emit(
                    node,
                    "builtin hash() is randomized per process "
                    "(PYTHONHASHSEED); use a stable digest "
                    "(e.g. hashlib/zlib.crc32) for anything that must "
                    "replay deterministically",
                )
            elif origin is not None:
                top, _, name = origin.partition(".")
                if top == "random" and name in _GLOBAL_RNG_FUNCS:
                    emit(
                        node,
                        f"random.{name}() draws from the unseeded global "
                        "RNG; use a seeded random.Random instance",
                    )
                elif top == "random" and name == "Random" and not node.args:
                    emit(node, "random.Random() without a seed is nondeterministic")
                elif top == "random" and name == "SystemRandom":
                    emit(node, "SystemRandom is OS entropy; never replayable")
                elif top == "time" and name in _WALL_CLOCK_FUNCS:
                    emit(
                        node,
                        f"wall-clock time.{name}() must not leak into "
                        "simulation logic; use the Simulator clock",
                    )
                elif top == "os" and name == "urandom":
                    emit(
                        node,
                        "os.urandom() outside the crypto entropy boundary; "
                        "waive explicitly if this is key material",
                    )
                elif top == "secrets":
                    emit(node, f"secrets.{name} is OS entropy; never replayable")
                elif top == "uuid" and name in _ENTROPY_UUID_FUNCS:
                    emit(node, f"uuid.{name}() is nondeterministic")
            continue
        if not isinstance(func, ast.Attribute):
            continue
        receiver = _resolve_module(tracker, func.value)
        attr = func.attr
        if receiver == "random":
            if attr in _GLOBAL_RNG_FUNCS:
                emit(
                    node,
                    f"random.{attr}() draws from the unseeded global RNG; "
                    "use a seeded random.Random instance",
                )
            elif attr == "Random" and not node.args:
                emit(node, "random.Random() without a seed is nondeterministic")
            elif attr == "SystemRandom":
                emit(node, "SystemRandom is OS entropy; never replayable")
        elif receiver == "time" and attr in _WALL_CLOCK_FUNCS:
            emit(
                node,
                f"wall-clock time.{attr}() must not leak into simulation "
                "logic; use the Simulator clock",
            )
        elif receiver == "os" and attr == "urandom":
            emit(
                node,
                "os.urandom() outside the crypto entropy boundary; waive "
                "explicitly if this is key material",
            )
        elif receiver == "secrets":
            emit(node, f"secrets.{attr} is OS entropy; never replayable")
        elif receiver == "uuid" and attr in _ENTROPY_UUID_FUNCS:
            emit(node, f"uuid.{attr}() is nondeterministic")
        elif receiver == "datetime" and attr in ("now", "utcnow", "today"):
            emit(node, f"datetime.{attr}() reads the wall clock")
        elif (
            isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and _resolve_module(tracker, func.value.value) == "numpy"
        ):
            if attr == "default_rng":
                if not node.args:
                    emit(node, "numpy default_rng() without a seed")
            else:
                emit(
                    node,
                    f"numpy.random.{attr}() uses numpy's global RNG; "
                    "use a seeded Generator",
                )
        elif (
            isinstance(func.value, ast.Attribute)
            and func.value.attr == "datetime"
            and _resolve_module(tracker, func.value.value) == "datetime"
            and attr in ("now", "utcnow", "today")
        ):
            emit(node, f"datetime.datetime.{attr}() reads the wall clock")
    return findings


# --------------------------------------------------------------------------
# DET002 — no cross-module private-attribute reach-ins
# --------------------------------------------------------------------------


def rule_det002(ctx: ModuleContext) -> list[Finding]:
    """DET002: ``x._private`` is only legal where the module owns it."""
    findings: list[Finding] = []
    owned = ctx.owned_privates
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
        ):
            continue
        if attr in owned:
            continue
        found = ctx.finding(
            node,
            "DET002",
            f"reach-in to private attribute {attr!r} of a foreign object; "
            "use (or add) a public accessor on the owning class",
        )
        if found is not None:
            findings.append(found)
    return findings


# --------------------------------------------------------------------------
# WIRE001 — wire-path classes declare slots and round-trip encode/decode
# --------------------------------------------------------------------------

#: Modules whose classes sit on the packet wire path.
WIRE_MODULES = (
    "repro/core/ilp.py",
    "repro/core/packet.py",
    "repro/core/crypto.py",
    "repro/core/psp.py",
    "repro/core/decision_cache.py",
    "repro/core/pipe_terminus.py",
)

_EXEMPT_BASES = frozenset(
    {
        "Exception",
        "Enum",
        "IntEnum",
        "IntFlag",
        "Flag",
        "Protocol",
        "NamedTuple",
        "TypedDict",
    }
)


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _base_name(target) == "dataclass":
            return decorator
    return None


def _has_instance_state(node: ast.ClassDef) -> bool:
    """Does the class create per-instance attributes (``self.x = ...``)?"""
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            return True
    return False


def rule_wire001(ctx: ModuleContext) -> list[Finding]:
    """WIRE001: slots + encode/decode pairing in wire-path modules."""
    rel = ctx.rel_path.replace("\\", "/")
    if not any(rel.endswith(suffix) for suffix in WIRE_MODULES):
        return []
    findings: list[Finding] = []

    def emit(node: ast.AST, message: str) -> None:
        found = ctx.finding(node, "WIRE001", message)
        if found is not None:
            findings.append(found)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {_base_name(base) for base in node.bases}
        if base_names & _EXEMPT_BASES or any(
            name.endswith("Error") for name in base_names
        ):
            continue
        method_names = {
            stmt.name for stmt in node.body if isinstance(stmt, ast.FunctionDef)
        }
        if "encode" in method_names and "decode" not in method_names:
            emit(node, f"class {node.name} has encode() but no decode()")
        if "decode" in method_names and "encode" not in method_names:
            emit(node, f"class {node.name} has decode() but no encode()")
        decorator = _dataclass_decorator(node)
        if decorator is not None:
            slotted = isinstance(decorator, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in decorator.keywords
            )
            if not slotted:
                emit(
                    node,
                    f"wire-path dataclass {node.name} must declare "
                    "slots=True (fixed layout, no stray attributes)",
                )
            continue
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            for stmt in node.body
        )
        if not has_slots and _has_instance_state(node):
            emit(
                node,
                f"wire-path class {node.name} must declare __slots__ "
                "(fixed layout, no stray attributes)",
            )
    return findings


# --------------------------------------------------------------------------
# RES001 — every watch registration has a matching teardown
# --------------------------------------------------------------------------

_WATCH_PAIRS = {
    "watch": "unwatch",
    "watch_prefix": "unwatch_prefix",
    "watch_group": "unwatch_group",
}


def _calls_in(node: ast.AST) -> set[str]:
    out: set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute):
            out.add(inner.func.attr)
    return out


def rule_res001(ctx: ModuleContext) -> list[Finding]:
    """RES001: watch registrations pair with teardowns, per class."""
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        method_names = {
            stmt.name for stmt in node.body if isinstance(stmt, ast.FunctionDef)
        }
        calls = _calls_in(node)
        for register, teardown in _WATCH_PAIRS.items():
            if register not in calls:
                continue
            # The class providing the watch API itself is not a consumer.
            if register in method_names:
                continue
            if teardown in calls:
                continue
            # Locate the first offending call for a precise location.
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == register
                ):
                    found = ctx.finding(
                        inner,
                        "RES001",
                        f"class {node.name} registers a {register}() "
                        f"subscription but never calls {teardown}(); "
                        "watches must not leak",
                    )
                    if found is not None:
                        findings.append(found)
                    break
    return findings


# --------------------------------------------------------------------------
# OBS001 — every begin_span call site has a matching end_span
# --------------------------------------------------------------------------


def rule_obs001(ctx: ModuleContext) -> list[Finding]:
    """OBS001: flight-recorder spans are closed, per class.

    Same ownership model as RES001: a class that calls ``begin_span()``
    somewhere must also call ``end_span()`` somewhere (try/finally and
    error paths included — the textual pairing is the invariant the rule
    can check; the conformance suite checks the dynamic one). The class
    *providing* the span API (it defines a ``begin_span`` method) is not
    a consumer. Unclosed spans poison duration queries and leak the
    trace's structure, so they must not ship.
    """
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        method_names = {
            stmt.name for stmt in node.body if isinstance(stmt, ast.FunctionDef)
        }
        calls = _calls_in(node)
        if "begin_span" not in calls:
            continue
        # The recorder class implementing the span API is not a consumer.
        if "begin_span" in method_names:
            continue
        if "end_span" in calls:
            continue
        # Locate the first offending call for a precise location.
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "begin_span"
            ):
                found = ctx.finding(
                    inner,
                    "OBS001",
                    f"class {node.name} opens a span with begin_span() "
                    "but never calls end_span(); spans must be closed "
                    "on every path",
                )
                if found is not None:
                    findings.append(found)
                break
    return findings


from .iprules import (  # noqa: E402  (rule catalog assembly)
    rule_det003,
    rule_evt001,
    rule_ledger001,
)

#: Per-module rules first, then the whole-program (interprocedural) ones.
ALL_RULES = (
    rule_det001,
    rule_det002,
    rule_wire001,
    rule_res001,
    rule_obs001,
    rule_evt001,
    rule_det003,
    rule_ledger001,
)

RULE_DOCS = {
    "DET001": "no unseeded nondeterminism (global RNG, wall clock, "
    "entropy, builtin hash) outside blessed seeded wrappers",
    "DET002": "no cross-module reach-ins to private attributes",
    "WIRE001": "wire-path classes declare slots and pair encode/decode",
    "RES001": "every watch registration has a matching teardown",
    "OBS001": "every begin_span call site has a matching end_span",
    "EVT001": "[whole-program] nothing transitively reachable from an "
    "event-loop callback may block or read the wall clock",
    "DET003": "[whole-program] RNG seeds must dataflow from parameters, "
    "config fields, or literals — never entropy or set/dict iteration",
    "LEDGER001": "[whole-program] every *Stats counter has a write site "
    "and conservation-ledger declarations name real fields",
}

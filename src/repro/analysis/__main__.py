"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding is reported,
2 on usage errors. Default paths are ``src`` and ``tests`` relative to
the current working directory (the repo root in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import analyze_paths
from .rules import ALL_RULES, RULE_DOCS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="InterEdge determinism & datapath-invariant checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, doc in sorted(RULE_DOCS.items()):
            print(f"{code}  {doc}")
        return 0

    paths = args.paths or [
        p for p in (Path("src"), Path("tests")) if p.is_dir()
    ]
    if not paths:
        print("no paths to scan (run from the repo root or pass paths)", file=sys.stderr)
        return 2

    rules = ALL_RULES
    if args.rules:
        wanted = {code.strip().upper() for code in args.rules.split(",")}
        unknown = wanted - set(RULE_DOCS)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = tuple(
            rule
            for rule in ALL_RULES
            if rule.__name__.removeprefix("rule_").upper() in wanted
        )

    findings = analyze_paths(paths, rules=rules)
    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        print(summary if findings else "clean: 0 findings", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())

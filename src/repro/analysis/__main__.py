"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding is reported,
2 on usage errors. Default paths are ``src`` and ``tests`` relative to
the current working directory (the repo root in CI).

Flags::

    --rules CODES        comma-separated rule codes to run (default: all)
    --json               emit findings as JSON
    --list-rules         print the rule catalog and exit
    --cache PATH         content-hash incremental cache (keeps CI warm)
    --graph-json PATH    dump the whole-program call graph as JSON ('-'
                         for stdout) and exit
    --baseline PATH      findings-baseline file (default:
                         analysis-baseline.json)
    --write-baseline     snapshot current findings into the baseline
    --since-baseline     report only findings not present in the baseline
                         (known debt stays suppressed, new debt blocks)
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from .engine import Finding, analyze_paths, build_program_for_paths, rule_code
from .rules import ALL_RULES, RULE_DOCS

_BASELINE_SCHEMA = 1


def _finding_key(finding: Finding) -> tuple[str, str, str]:
    """Baseline identity: line numbers drift, (path, code, message) don't."""
    return (finding.path, finding.code, finding.message)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts = Counter(_finding_key(f) for f in findings)
    payload = {
        "schema": _BASELINE_SCHEMA,
        "findings": [
            {"path": p, "code": c, "message": m, "count": n}
            for (p, c, m), n in sorted(counts.items())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Optional["Counter[tuple[str, str, str]]"]:
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(raw, dict) or raw.get("schema") != _BASELINE_SCHEMA:
        return None
    counts: Counter[tuple[str, str, str]] = Counter()
    for entry in raw.get("findings", []):
        if not isinstance(entry, dict):
            continue
        key = (
            str(entry.get("path", "")),
            str(entry.get("code", "")),
            str(entry.get("message", "")),
        )
        counts[key] += int(entry.get("count", 1))
    return counts


def since_baseline(
    findings: Sequence[Finding], baseline: "Counter[tuple[str, str, str]]"
) -> list[Finding]:
    """Findings not accounted for by the baseline (multiset subtraction)."""
    budget = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = _finding_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="InterEdge determinism & datapath-invariant checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="PATH",
        help="content-hash incremental findings cache",
    )
    parser.add_argument(
        "--graph-json",
        metavar="PATH",
        help="dump the whole-program call graph as JSON ('-' = stdout) and exit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("analysis-baseline.json"),
        metavar="PATH",
        help="findings baseline file (default: analysis-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--since-baseline",
        action="store_true",
        help="report only findings not present in the baseline",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, doc in sorted(RULE_DOCS.items()):
            print(f"{code}  {doc}")
        return 0

    paths = args.paths or [
        p for p in (Path("src"), Path("tests")) if p.is_dir()
    ]
    if not paths:
        print("no paths to scan (run from the repo root or pass paths)", file=sys.stderr)
        return 2

    if args.graph_json is not None:
        program = build_program_for_paths(paths)
        payload = json.dumps(program.to_json_dict(), indent=2, sort_keys=True)
        if args.graph_json == "-":
            print(payload)
        else:
            Path(args.graph_json).write_text(payload + "\n", encoding="utf-8")
            print(f"graph written to {args.graph_json}", file=sys.stderr)
        return 0

    rules = ALL_RULES
    if args.rules:
        wanted = {code.strip().upper() for code in args.rules.split(",")}
        unknown = wanted - set(RULE_DOCS)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = tuple(rule for rule in ALL_RULES if rule_code(rule) in wanted)

    findings = analyze_paths(paths, rules=rules, cache_path=args.cache)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"baseline written: {len(findings)} finding(s) -> {args.baseline}",
            file=sys.stderr,
        )
        return 0
    if args.since_baseline:
        baseline = load_baseline(args.baseline)
        if baseline is None:
            print(
                f"no readable baseline at {args.baseline}; "
                "run --write-baseline first",
                file=sys.stderr,
            )
            return 2
        findings = since_baseline(findings, baseline)

    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"{len(findings)} finding(s)"
        print(summary if findings else "clean: 0 findings", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Repo-specific static analysis: determinism & datapath invariants.

The InterEdge reproduction depends on invariants no generic linter checks:
bit-deterministic fault replay, byte-identical batch vs. per-packet
forwarding, and per-epoch nonce discipline in the PSP-style per-hop
crypto. This package turns those conventions into machine-checked rules,
runnable as ``python -m repro.analysis``:

============  ==========================================================
Rule          What it enforces
============  ==========================================================
``DET001``    No unseeded nondeterminism: module-level ``random.*``
              (global RNG), unseeded ``random.Random()`` /
              ``SystemRandom``, wall-clock reads (``time.time`` and
              friends), entropy sources (``os.urandom``, ``secrets``,
              ``uuid4``) outside the blessed entropy boundary, builtin
              ``hash()`` (randomized per process via PYTHONHASHSEED —
              the root of dict-order nondeterminism), and unseeded
              ``numpy`` RNGs. Simulations must replay bit-identically
              from their seeds.
``DET002``    No cross-module reach-ins to private (``_``-prefixed)
              attributes. An attribute may be touched through a receiver
              other than ``self``/``cls`` only in the module that owns
              it (assigns it on ``self``, declares it in ``__slots__``
              or a class body).
``WIRE001``   Every stateful class in the wire-path modules (``ilp``,
              ``packet``, ``crypto``, ``psp``, ``decision_cache``,
              ``pipe_terminus``) declares ``__slots__`` (dataclasses:
              ``slots=True``), and any ``encode`` method has a matching
              ``decode`` (round-trip discipline).
``RES001``    Every watch registration (``watch`` / ``watch_prefix`` /
              ``watch_group``) in a class has a matching teardown call
              in the same class — watches must not leak.
``OBS001``    Every ``begin_span`` call site has a matching ``end_span``
              in the same scope — spans must not dangle.
``EVT001``    *Whole-program.* No function transitively reachable from
              an event-loop callback (``schedule`` / ``post`` /
              ``Timer`` / ``PeriodicTask`` / ``watch*`` registrations,
              pipe transmit handlers) may reach a blocking or wall-clock
              primitive (``time.sleep``, ``time.time``, sockets,
              ``subprocess``, ``threading`` sync). Findings carry the
              full call chain from the registered callback.
``DET003``    *Whole-program.* Every ``random.Random(seed)`` /
              ``.reseed(x)`` argument must dataflow back to a
              constructor parameter, config field, or literal — never
              ``os.urandom``, ``id()``, ``hash()``, wall clocks, or
              set/dict iteration order.
``LEDGER001`` *Whole-program.* Every counter field on a ``*Stats``
              dataclass has at least one write site somewhere in the
              program, and every field named by a
              ``CONSERVATION_LEDGERS`` declaration exists on its class.
============  ==========================================================

The whole-program rules run on a project-wide symbol table and call
graph (:mod:`repro.analysis.graph`): module-qualified resolution of
functions and methods, conservative receiver-type inference from
annotations and dataclass fields, and callback-registration edges
treated as call edges. Resolution caveats are documented in
``docs/API.md``.

A finding can be waived inline with ``# repro: allow(CODE) reason`` on
the offending line or the line above; waivers are deliberate, reviewed
exceptions (e.g. ``ILPHeader`` is dict-backed for its wire memo).

Repeated runs stay fast through a content-hash incremental cache
(``--cache PATH``): per-file findings are keyed on each file's SHA-256
and the whole-program pass on the digest of every file hash, so only
edited files are re-parsed and the interprocedural pass only re-runs
when anything changed.

The static rules are paired with a *sanitizer mode*
(:mod:`repro.sanitize`): ``REPRO_SANITIZE=1`` arms debug-build runtime
checks of the same invariants at the terminus and resilience layers.
"""

from __future__ import annotations

from .engine import (
    AnalysisCache,
    Finding,
    ModuleContext,
    analyze_file,
    analyze_paths,
    build_program_for_paths,
)
from .graph import ProgramGraph, build_program
from .rules import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES",
    "RULE_DOCS",
    "AnalysisCache",
    "Finding",
    "ModuleContext",
    "ProgramGraph",
    "analyze_file",
    "analyze_paths",
    "build_program",
    "build_program_for_paths",
]

"""Repo-specific static analysis: determinism & datapath invariants.

The InterEdge reproduction depends on invariants no generic linter checks:
bit-deterministic fault replay, byte-identical batch vs. per-packet
forwarding, and per-epoch nonce discipline in the PSP-style per-hop
crypto. This package turns those conventions into machine-checked rules,
runnable as ``python -m repro.analysis``:

============  ==========================================================
Rule          What it enforces
============  ==========================================================
``DET001``    No unseeded nondeterminism: module-level ``random.*``
              (global RNG), unseeded ``random.Random()`` /
              ``SystemRandom``, wall-clock reads (``time.time`` and
              friends), entropy sources (``os.urandom``, ``secrets``,
              ``uuid4``) outside the blessed entropy boundary, builtin
              ``hash()`` (randomized per process via PYTHONHASHSEED —
              the root of dict-order nondeterminism), and unseeded
              ``numpy`` RNGs. Simulations must replay bit-identically
              from their seeds.
``DET002``    No cross-module reach-ins to private (``_``-prefixed)
              attributes. An attribute may be touched through a receiver
              other than ``self``/``cls`` only in the module that owns
              it (assigns it on ``self``, declares it in ``__slots__``
              or a class body).
``WIRE001``   Every stateful class in the wire-path modules (``ilp``,
              ``packet``, ``crypto``, ``psp``, ``decision_cache``,
              ``pipe_terminus``) declares ``__slots__`` (dataclasses:
              ``slots=True``), and any ``encode`` method has a matching
              ``decode`` (round-trip discipline).
``RES001``    Every watch registration (``watch`` / ``watch_prefix`` /
              ``watch_group``) in a class has a matching teardown call
              in the same class — watches must not leak.
============  ==========================================================

A finding can be waived inline with ``# repro: allow(CODE) reason`` on
the offending line or the line above; waivers are deliberate, reviewed
exceptions (e.g. ``ILPHeader`` is dict-backed for its wire memo).

The static rules are paired with a *sanitizer mode*
(:mod:`repro.sanitize`): ``REPRO_SANITIZE=1`` arms debug-build runtime
checks of the same invariants at the terminus and resilience layers.
"""

from __future__ import annotations

from .engine import Finding, ModuleContext, analyze_file, analyze_paths
from .rules import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES",
    "RULE_DOCS",
    "Finding",
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
]
